//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! subset of criterion 0.5 its benches use is re-implemented here:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`
//! and `Bencher::iter`. Measurement is adaptive wall-clock timing (mean ±
//! std over timed batches) printed to stdout — honest numbers without the
//! bootstrap statistics, HTML reports or baseline comparison of the real
//! crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: a function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Per-iteration mean in nanoseconds, filled by [`Bencher::iter`].
    mean_ns: f64,
    /// Std-dev of batch means in nanoseconds.
    std_ns: f64,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: a few warm-up calls, then timed batches
    /// until the measurement budget is spent.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..2 {
            black_box(routine());
        }
        // Size batches so one batch costs roughly a tenth of the budget.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let per_batch =
            ((self.budget.as_nanos() / 10).max(1) / once.as_nanos().max(1)).clamp(1, 10_000) as u64;

        let mut batch_means = Vec::new();
        let mut total_iters = 0u64;
        let started = Instant::now();
        while started.elapsed() < self.budget || batch_means.len() < 3 {
            let batch = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            batch_means.push(batch.elapsed().as_secs_f64() * 1e9 / per_batch as f64);
            total_iters += per_batch;
            if batch_means.len() >= 200 {
                break;
            }
        }
        let mean = batch_means.iter().sum::<f64>() / batch_means.len() as f64;
        let var = batch_means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>()
            / batch_means.len() as f64;
        self.mean_ns = mean;
        self.std_ns = var.sqrt();
        self.iters = total_iters;
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample-count knob; this stand-in maps it onto the
    /// per-benchmark time budget (more samples, more time).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.budget = Duration::from_millis(20).saturating_mul(samples.clamp(1, 100) as u32);
        self
    }

    /// Benchmarks `routine` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { mean_ns: 0.0, std_ns: 0.0, iters: 0, budget: self.budget };
        routine(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Benchmarks a parameterless routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { mean_ns: 0.0, std_ns: 0.0, iters: 0, budget: self.budget };
        routine(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    fn report(&mut self, label: &str, bencher: &Bencher) {
        let line = format!(
            "{}/{}: {:.3} µs ± {:.3} µs ({} iterations)",
            self.name,
            label,
            bencher.mean_ns / 1e3,
            bencher.std_ns / 1e3,
            bencher.iters
        );
        println!("{line}");
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            label: label.to_string(),
            mean_ns: bencher.mean_ns,
            std_ns: bencher.std_ns,
        });
    }

    /// Ends the group (kept for API compatibility; results are already
    /// recorded).
    pub fn finish(self) {}
}

/// One recorded measurement, accessible via [`Criterion::results`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name the benchmark ran under.
    pub group: String,
    /// Benchmark label within the group.
    pub label: String,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation of batch means in nanoseconds.
    pub std_ns: f64,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Every measurement recorded so far (in declaration order).
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group {name} --");
        BenchmarkGroup { criterion: self, name, budget: Duration::from_millis(200) }
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 16), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn records_results_for_each_benchmark() {
        let mut c = Criterion::default();
        spin(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.mean_ns >= 0.0));
        assert_eq!(c.results[1].label, "sum/16");
    }

    criterion_group!(group_macro_compiles, spin);

    #[test]
    fn group_macro_produces_runner() {
        let mut c = Criterion::default();
        group_macro_compiles(&mut c);
        assert!(!c.results.is_empty());
    }
}
