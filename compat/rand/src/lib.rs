//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! subset of `rand` 0.8 it actually uses is re-implemented here: explicitly
//! seeded generators (`StdRng::seed_from_u64`), `Rng::gen` and
//! `Rng::gen_range` over primitive integer and float ranges. The API shape
//! follows `rand` 0.8 so swapping the real crate back in is a manifest-only
//! change; the generated streams are *not* the same as upstream's (the
//! workspace only relies on determinism, never on matching upstream
//! output).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing a generator from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full/standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (the stand-in for sampling from
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard the open upper bound against rounding.
                if v < self.end { v } else { <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator (xoshiro256**). Upstream's
    /// `StdRng` is a ChaCha stream; only determinism is relied upon, so a
    /// fast non-cryptographic generator is sufficient here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut z: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, as recommended by the xoshiro authors.
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut v = z;
                v = (v ^ (v >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                v = (v ^ (v >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                v ^ (v >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator; identical engine to [`StdRng`] in this
    /// stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(42);
                move |_| r.gen::<u64>()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(42);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(43);
                move |_| r.gen::<u64>()
            })
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn int_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..300 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_unit_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
