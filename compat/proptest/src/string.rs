//! String generation from a small regex subset.
//!
//! Real proptest treats `&str` strategies as regexes; this stand-in
//! supports the constructs the workspace's patterns use: literals, `.`,
//! character classes (`[a-z0-9_]`, including negation), groups with
//! alternation (`(ab|cd)`), and the quantifiers `?`, `*`, `+`, `{m}`,
//! `{m,n}`. Unbounded quantifiers are capped at 8 repetitions.

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    /// Sequence of alternatives; generation picks one branch.
    Alt(Vec<Vec<Node>>),
    Literal(char),
    /// Candidate characters of a class (already expanded).
    Class(Vec<char>),
    /// Any printable ASCII character.
    Dot,
    Repeat(Box<Node>, u32, u32),
}

/// Generates a string matching `pattern`. Panics on syntax this subset
/// does not understand, which surfaces unsupported patterns loudly in
/// tests rather than generating silently wrong data.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_alternation(&chars, &mut pos);
    assert!(pos == chars.len(), "unsupported regex tail in {pattern:?} at byte {pos}");
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Node {
    let mut branches = vec![Vec::new()];
    while *pos < chars.len() && chars[*pos] != ')' {
        if chars[*pos] == '|' {
            *pos += 1;
            branches.push(Vec::new());
            continue;
        }
        let atom = parse_atom(chars, pos);
        let atom = parse_quantifier(chars, pos, atom);
        branches.last_mut().expect("non-empty").push(atom);
    }
    Node::Alt(branches)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alternation(chars, pos);
            assert!(*pos < chars.len() && chars[*pos] == ')', "unterminated group in regex");
            *pos += 1;
            inner
        }
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '.' => {
            *pos += 1;
            Node::Dot
        }
        '\\' => {
            *pos += 1;
            assert!(*pos < chars.len(), "dangling escape in regex");
            let c = chars[*pos];
            *pos += 1;
            match c {
                'd' => Node::Class(('0'..='9').collect()),
                'w' => {
                    let mut set: Vec<char> = ('a'..='z').collect();
                    set.extend('A'..='Z');
                    set.extend('0'..='9');
                    set.push('_');
                    Node::Class(set)
                }
                other => Node::Literal(other),
            }
        }
        c => {
            *pos += 1;
            Node::Literal(c)
        }
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Node {
    let negated = *pos < chars.len() && chars[*pos] == '^';
    if negated {
        *pos += 1;
    }
    let mut set = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = chars[*pos];
        *pos += 1;
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let hi = chars[*pos + 1];
            *pos += 2;
            assert!(lo <= hi, "inverted class range in regex");
            set.extend(lo..=hi);
        } else {
            set.push(lo);
        }
    }
    assert!(*pos < chars.len(), "unterminated character class in regex");
    *pos += 1;
    if negated {
        let candidates: Vec<char> = (' '..='~').filter(|c| !set.contains(c)).collect();
        assert!(!candidates.is_empty(), "negated class excludes all printable ASCII");
        Node::Class(candidates)
    } else {
        assert!(!set.is_empty(), "empty character class in regex");
        Node::Class(set)
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
        }
        '{' => {
            *pos += 1;
            let mut digits = String::new();
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                digits.push(chars[*pos]);
                *pos += 1;
            }
            let lo: u32 = digits.parse().expect("repetition count");
            let hi = if *pos < chars.len() && chars[*pos] == ',' {
                *pos += 1;
                let mut digits = String::new();
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    digits.push(chars[*pos]);
                    *pos += 1;
                }
                if digits.is_empty() {
                    lo + UNBOUNDED_CAP
                } else {
                    digits.parse().expect("repetition bound")
                }
            } else {
                lo
            };
            assert!(*pos < chars.len() && chars[*pos] == '}', "unterminated repetition in regex");
            *pos += 1;
            assert!(lo <= hi, "inverted repetition bounds in regex");
            Node::Repeat(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let branch = &branches[rng.below(branches.len())];
            for n in branch {
                emit(n, rng, out);
            }
        }
        Node::Literal(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.below(set.len())]),
        Node::Dot => {
            let printable: u8 = b' ' + rng.below(95) as u8;
            out.push(printable as char);
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.usize_inclusive(*lo as usize, *hi as usize);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_one(pattern: &str, case: u32) -> String {
        let mut rng = TestRng::for_case("string_tests", case);
        generate_matching(pattern, &mut rng)
    }

    #[test]
    fn literal_passes_through() {
        assert_eq!(gen_one("abc", 0), "abc");
    }

    #[test]
    fn class_and_bounded_repeat() {
        for case in 0..50 {
            let s = gen_one("[a-z]{1,8}", case);
            assert!(!s.is_empty() && s.len() <= 8, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn optional_group_with_separator() {
        for case in 0..50 {
            let s = gen_one("[a-z]{1,8}(/[a-z]{1,8})?", case);
            let parts: Vec<&str> = s.split('/').collect();
            assert!(parts.len() <= 2, "{s:?}");
            for p in parts {
                assert!(!p.is_empty() && p.len() <= 8, "{s:?}");
                assert!(p.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn alternation_picks_each_branch() {
        let mut saw = [false, false];
        for case in 0..40 {
            match gen_one("(ab|cd)", case).as_str() {
                "ab" => saw[0] = true,
                "cd" => saw[1] = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }
}
