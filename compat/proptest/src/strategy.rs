//! Value-generation strategies (no shrinking).

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Object-safe so
/// `prop_oneof!` can mix concrete strategy types behind `Box<dyn Strategy>`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into `f`, which returns the strategy
    /// used to generate the final value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f` (drawing replacements, bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1024 consecutive samples", self.whence);
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Strategy for &'static str {
    type Value = String;

    /// String literals are regex generators, as in real proptest.
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric spread; real proptest also emits
        // non-finite specials, which the workspace's tests never rely on.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy for the full domain of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
