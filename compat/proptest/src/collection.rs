//! Collection strategies (`vec`, `btree_map`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// Admissible lengths for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.usize_inclusive(self.lo, self.hi)
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates a `Vec` whose length lies in `size`, mirroring
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy for `BTreeMap<K, V>`.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        // Duplicate keys collapse, so the map may come out smaller than
        // `len` — same behaviour as real proptest.
        (0..len).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
    }
}

/// Generates a `BTreeMap` with up to `size` entries, mirroring
/// `proptest::collection::btree_map`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size: size.into() }
}
