//! Case loop driving a `proptest!`-declared test.

use crate::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// Runs `case` until `config.cases` successes, a failure, or the reject
/// budget is exhausted. Each case draws its inputs from a deterministic
/// RNG derived from `(test_name, case_index)`, so reruns reproduce the
/// same sequence.
pub fn run<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut successes: u32 = 0;
    let mut rejects: u32 = 0;
    let mut index: u32 = 0;
    while successes < config.cases {
        let mut rng = TestRng::for_case(test_name, index);
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejects}); last: {why}"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{test_name}: case #{index} failed: {message}")
            }
        }
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut count = 0;
        run(ProptestConfig::with_cases(17), "counting", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn rejects_draw_replacement_cases() {
        let mut attempts = 0;
        run(ProptestConfig::with_cases(5), "rejecting", |rng| {
            attempts += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::reject("even"))
            } else {
                Ok(())
            }
        });
        assert!(attempts >= 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run(ProptestConfig::with_cases(3), "failing", |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn case_streams_are_deterministic() {
        let mut first = Vec::new();
        run(ProptestConfig::with_cases(6), "determinism", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        run(ProptestConfig::with_cases(6), "determinism", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
