//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! subset of proptest 1.x it uses is re-implemented here: the `proptest!`
//! macro, `prop_assert*`/`prop_assume`/`prop_oneof` macros, range / tuple /
//! `Just` / mapped / collection / regex-string strategies and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test seed, so failures reproduce; there is **no shrinking** — a
//! failing case reports its inputs (via `Debug` where available) and case
//! number instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Runner configuration. Only the subset the workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`-filtered) cases tolerated before
    /// the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects: 4096 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!`; try another one.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// Builds the rejection variant.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG handed to strategies while generating a case.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives the generator for `(test name, case index)`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name gives a stable per-test stream that
        // survives adding or reordering sibling tests.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound)
    }

    /// Uniform draw from `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..=hi)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen_range(0.0..1.0)
    }

    /// Access to the underlying generator for range sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values compare equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values compare unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (the runner draws a replacement).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u32..100, v in proptest::collection::vec(0u8..=255, 1..9)) {
///         prop_assert!(v.len() < 9);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                let __case = || -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
    )*};
}
