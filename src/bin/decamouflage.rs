//! `decamouflage` — command-line front end for the detection framework.
//!
//! ```text
//! decamouflage check <image> --target WxH [--thresholds FILE] [--metrics-out FILE]
//! decamouflage scan <dir> --target WxH [--thresholds FILE] [--chunk-size N]
//!                   [--shard k/N] [--checkpoint FILE] [--resume] [--metrics-out FILE]
//! decamouflage merge <checkpoint>... [-o FILE] [--metrics-out FILE]
//! decamouflage craft <original> <target-image> -o <attack-out>
//! decamouflage calibrate --benign DIR --attack DIR --target WxH -o thresholds.txt
//! decamouflage stats [--target WxH] [--count N] [--format prometheus|json] [-o FILE]
//! decamouflage serve --target WxH [--addr HOST:PORT] [--thresholds FILE] [--degrade MODE]
//!                    [--handlers N] [--queue-limit N] [--deadline-ms N] [--drain-ms N]
//!                    [--max-body-bytes N] [--metrics-out FILE]
//! ```
//!
//! Images are PGM/PPM, 24-bit BMP, PNG or baseline JPEG (sniffed by magic
//! bytes on read, chosen by extension on write). `check` exits
//! with status 2 when the image is flagged as an attack, 0 when benign —
//! scriptable as a pre-ingestion filter. `scan` triages a whole directory
//! (the paper's offline data-poisoning use case) and exits 2 if anything
//! was flagged. Directories stream through the bounded-memory
//! [`DirectorySource`] pipeline: at most `--chunk-size` decoded images
//! (default 64) are resident at once, so arbitrarily large corpora scan in
//! constant memory.
//!
//! Large corpora also shard: `--shard k/N` scans only the k-th of N
//! hash-partitions of the directory (membership is a pure function of
//! each file's name, so shards are stable across machines and listing
//! orders), `--checkpoint FILE` persists progress at every chunk
//! boundary, and `--resume` picks a killed scan up from its checkpoint —
//! refusing if the directory changed underneath it. `merge` combines the
//! finished shard checkpoints into one corpus-wide report with merged
//! telemetry, byte-identical to what a single unsharded scan would have
//! produced.
//!
//! `--metrics-out FILE` enables telemetry for the run and writes the
//! final metric state to `FILE` on exit — Prometheus text exposition by
//! default, JSON when the path ends in `.json`. `stats` exercises the
//! full pipeline on a synthetic corpus and emits the same exposition,
//! handy for wiring dashboards before real traffic exists.

use decamouflage::detection::calibrate::calibrate_whitebox;
use decamouflage::detection::ensemble::{DegradePolicy, Ensemble};
use decamouflage::detection::persist::ThresholdSet;
use decamouflage::detection::stream::{BufferPool, DirectorySource, ImageSource, StreamConfig};
use decamouflage::detection::{
    scan_shard, CorpusFingerprint, FilteringDetector, MethodId, MetricKind, ScalingDetector,
    ScanCheckpoint, ScanReport, ScoreFault, ShardSpec, SteganalysisDetector, Threshold,
};
use decamouflage::imaging::codec::{
    decode_auto, encode_jpeg, encode_png, write_bmp_file, write_pnm_file,
};
use decamouflage::imaging::scale::{ScaleAlgorithm, Scaler};
use decamouflage::imaging::{Image, Size};
use decamouflage::serve::flags::{parse_bounded_ms, parse_bounded_usize};
use decamouflage::serve::{DetectionService, Server, ServerConfig};
use decamouflage::telemetry::{to_json, to_prometheus_text, Telemetry};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("craft") => cmd_craft(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  decamouflage check <image> --target WxH [--thresholds FILE] [--degrade MODE] [--metrics-out FILE]\n  \
         decamouflage scan <dir> --target WxH [--thresholds FILE] [--degrade MODE] [--chunk-size N]\n    \
         [--shard k/N] [--checkpoint FILE] [--resume] [--metrics-out FILE]\n  \
         decamouflage merge <checkpoint>... [-o FILE] [--metrics-out FILE]\n  \
         decamouflage craft <original> <target-image> -o <attack-out>\n  \
         decamouflage calibrate --benign DIR --attack DIR --target WxH -o FILE\n  \
         decamouflage stats [--target WxH] [--count N] [--format prometheus|json] [-o FILE]\n  \
         decamouflage serve --target WxH [--addr HOST:PORT] [--thresholds FILE] [--degrade MODE]\n    \
         [--handlers N] [--queue-limit N] [--deadline-ms N] [--drain-ms N]\n    \
         [--max-body-bytes N] [--metrics-out FILE]\n\n\
         Images: .pgm/.ppm/.pnm, .bmp, .png or .jpg/.jpeg — read by magic bytes,\n  \
         written by extension. `check`/`scan` exit 0 = benign, 2 = attack(s) found.\n\
         --degrade: what to do when an ensemble voter cannot score an image —\n  \
         strict (default: report an error), majority (majority of the remaining voters),\n  \
         fail-closed (flag the image as an attack).\n\
         --chunk-size: images decoded per scoring chunk during scan (default 64) —\n  \
         peak memory is bounded by one chunk regardless of directory size.\n\
         --shard k/N: scan only the k-th of N stable hash-partitions of the directory;\n  \
         --checkpoint FILE persists progress every chunk, --resume continues from it.\n\
         merge: combine finished shard checkpoints into one corpus-wide report\n  \
         (stdout or -o FILE; --metrics-out writes the shards' merged telemetry).\n\
         --metrics-out: record telemetry during the run and write it to FILE on exit\n  \
         (Prometheus text; JSON when FILE ends in .json).\n\
         stats: run the pipeline on a synthetic corpus and emit its telemetry.\n\
         serve: HTTP detection service (POST /check, POST /scan, GET /metrics, GET /healthz)\n  \
         with bounded admission (503 + Retry-After past --queue-limit), per-request\n  \
         deadlines (--deadline-ms, 504 on expiry) and graceful SIGTERM drain (--drain-ms)."
    );
}

/// Strictly parsed command arguments: positionals in order, `--flag
/// value` pairs, and boolean switches. Anything starting with `-` that a
/// command did not declare is an error — a misspelt flag aborts instead
/// of silently riding along as a positional.
struct ParsedArgs {
    positionals: Vec<String>,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl ParsedArgs {
    fn value(&self, flag: &str) -> Option<&str> {
        self.values.iter().find(|(name, _)| name == flag).map(|(_, value)| value.as_str())
    }

    /// The value of either spelling of a flag (`-o` / `--out`).
    fn either(&self, a: &str, b: &str) -> Result<Option<&str>, String> {
        match (self.value(a), self.value(b)) {
            (Some(_), Some(_)) => Err(format!("{a} and {b} are the same flag, given twice")),
            (first, second) => Ok(first.or(second)),
        }
    }

    fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|name| name == flag)
    }
}

fn parse_args(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<ParsedArgs, String> {
    let mut parsed =
        ParsedArgs { positionals: Vec::new(), values: Vec::new(), switches: Vec::new() };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.len() > 1 && arg.starts_with('-') {
            if value_flags.contains(&arg.as_str()) {
                if parsed.value(arg).is_some() {
                    return Err(format!("flag {arg} given more than once"));
                }
                let value = iter.next().ok_or_else(|| format!("flag {arg} needs a value"))?.clone();
                parsed.values.push((arg.clone(), value));
            } else if switch_flags.contains(&arg.as_str()) {
                if parsed.switch(arg) {
                    return Err(format!("flag {arg} given more than once"));
                }
                parsed.switches.push(arg.clone());
            } else {
                return Err(format!("unknown flag {arg:?} for this command"));
            }
        } else {
            parsed.positionals.push(arg.clone());
        }
    }
    Ok(parsed)
}

/// Installs (idempotently) and returns the process-global telemetry
/// handle, enabled. Must run before the ensemble/engine is built so
/// their construction picks the enabled handle up.
fn enable_metrics() -> Telemetry {
    let _ = decamouflage::telemetry::install_global(Telemetry::enabled());
    decamouflage::telemetry::global()
}

/// Writes a metric snapshot to `path`: JSON when the extension is
/// `.json`, Prometheus text exposition otherwise.
fn write_snapshot(
    snapshot: &decamouflage::telemetry::RegistrySnapshot,
    path: &str,
) -> Result<(), String> {
    let output = if path.to_ascii_lowercase().ends_with(".json") {
        to_json(snapshot)
    } else {
        to_prometheus_text(snapshot)
    };
    std::fs::write(path, output).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Writes the final metric state of a live handle to `path`.
fn write_metrics(telemetry: &Telemetry, path: &str) -> Result<(), String> {
    let snapshot = telemetry.snapshot().ok_or("telemetry is not enabled")?;
    write_snapshot(&snapshot, path)
}

fn read_image(path: &str) -> Result<Image, String> {
    // Decode by magic bytes, not extension — a mislabelled file decodes
    // with whatever codec actually claims it.
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    decode_auto(&bytes).map(|(_, image)| image).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_image(img: &Image, path: &str) -> Result<(), String> {
    let lower = path.to_ascii_lowercase();
    let result = if lower.ends_with(".bmp") {
        write_bmp_file(img, path)
    } else if lower.ends_with(".png") {
        std::fs::write(path, encode_png(img)).map_err(Into::into)
    } else if lower.ends_with(".jpg") || lower.ends_with(".jpeg") {
        std::fs::write(path, encode_jpeg(img, 90)).map_err(Into::into)
    } else {
        write_pnm_file(img, path)
    };
    result.map_err(|e| format!("cannot write {path}: {e}"))
}

fn parse_size(s: &str) -> Result<Size, String> {
    let (w, h) = s.split_once(['x', 'X']).ok_or_else(|| format!("expected WxH, got {s:?}"))?;
    let w: usize = w.parse().map_err(|_| format!("bad width in {s:?}"))?;
    let h: usize = h.parse().map_err(|_| format!("bad height in {s:?}"))?;
    if w == 0 || h == 0 {
        return Err(format!("target size {s:?} must be non-zero"));
    }
    Ok(Size::new(w, h))
}

/// Default thresholds used by `check` when no calibration file is given:
/// intentionally conservative generic values; calibrating on in-domain
/// data is always preferable.
fn default_thresholds() -> ThresholdSet {
    let mut set = ThresholdSet::new();
    set.insert(
        MethodId::ScalingMse,
        Threshold::new(400.0, decamouflage::detection::Direction::AboveIsAttack),
    );
    set.insert(
        MethodId::FilteringSsim,
        Threshold::new(0.55, decamouflage::detection::Direction::BelowIsAttack),
    );
    set.insert(MethodId::Csp, SteganalysisDetector::universal_threshold());
    set
}

fn parse_degrade(parsed: &ParsedArgs) -> Result<DegradePolicy, String> {
    match parsed.value("--degrade") {
        None | Some("strict") => Ok(DegradePolicy::Strict),
        Some("majority") => Ok(DegradePolicy::MajorityOfAvailable),
        Some("fail-closed") => Ok(DegradePolicy::FailClosed),
        Some(other) => {
            Err(format!("unknown --degrade mode {other:?} (strict, majority, fail-closed)"))
        }
    }
}

fn load_thresholds(parsed: &ParsedArgs) -> Result<ThresholdSet, String> {
    match parsed.value("--thresholds") {
        Some(path) => ThresholdSet::load(path).map_err(|e| e.to_string()),
        None => Ok(default_thresholds()),
    }
}

fn build_ensemble(
    target: Size,
    thresholds: &ThresholdSet,
    policy: DegradePolicy,
) -> Result<Ensemble, String> {
    let need = |id: MethodId| {
        thresholds
            .get(id)
            .ok_or_else(|| format!("thresholds file is missing an entry for {:?}", id.name()))
    };
    Ok(Ensemble::new()
        .with_degrade_policy(policy)
        .with_member(
            ScalingDetector::new(target, ScaleAlgorithm::Bilinear, MetricKind::Mse),
            need(MethodId::ScalingMse)?,
        )
        .with_member(FilteringDetector::new(MetricKind::Ssim), need(MethodId::FilteringSsim)?)
        .with_member(SteganalysisDetector::for_target(target), need(MethodId::Csp)?))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let parsed =
        parse_args(args, &["--target", "--thresholds", "--degrade", "--metrics-out"], &[])?;
    let [image_path] = parsed.positionals.as_slice() else {
        return Err("check needs exactly one image path".into());
    };
    let target = parse_size(parsed.value("--target").ok_or("check needs --target WxH")?)?;
    let thresholds = load_thresholds(&parsed)?;
    // Telemetry must be live before the ensemble is built — construction
    // captures the process-global handle.
    let metrics_out = parsed.value("--metrics-out");
    let telemetry = if metrics_out.is_some() { enable_metrics() } else { Telemetry::disabled() };
    let image = {
        let _decode = telemetry.span("decam_engine_stage_seconds", &[("stage", "decode")]);
        read_image(image_path)?
    };
    let ensemble = build_ensemble(target, &thresholds, parse_degrade(&parsed)?)?;
    let decision = ensemble.decide(&image).map_err(|e| e.to_string())?;
    for (member, vote) in &decision.votes {
        println!("{member}: {}", if *vote { "ATTACK" } else { "benign" });
    }
    for (member, reason) in &decision.unavailable {
        println!("{member}: unavailable ({reason})");
    }
    if let Some(path) = metrics_out {
        write_metrics(&telemetry, path)?;
    }
    if decision.is_attack {
        println!("{image_path}: ATTACK (majority vote)");
        Ok(ExitCode::from(2))
    } else {
        println!("{image_path}: benign");
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_craft(args: &[String]) -> Result<ExitCode, String> {
    use decamouflage::attack::{craft_attack, AttackConfig};
    let parsed = parse_args(args, &["-o", "--out"], &[])?;
    let [original_path, target_path] = parsed.positionals.as_slice() else {
        return Err("craft needs <original> and <target-image>".into());
    };
    let out = parsed.either("-o", "--out")?.ok_or("craft needs -o <attack-out>")?;

    let original = read_image(original_path)?;
    let target = read_image(target_path)?;
    let scaler = Scaler::new(original.size(), target.size(), ScaleAlgorithm::Bilinear)
        .map_err(|e| e.to_string())?;
    let crafted = craft_attack(&original, &target, &scaler, &AttackConfig::default())
        .map_err(|e| e.to_string())?;
    write_image(&crafted.image, out)?;
    println!(
        "wrote {out}: deviation from target (L-inf) {:.2}, perturbed {:.1}% of pixels",
        crafted.stats.target_deviation_linf,
        crafted.stats.perturbed_fraction * 100.0
    );
    Ok(ExitCode::SUCCESS)
}

/// Eagerly drains a [`DirectorySource`] into a `Vec` — the one place the
/// CLI still materialises a whole directory (calibration needs every image
/// for the threshold search anyway). Listing, extension filtering, sorting
/// and decoding all live in the shared source.
fn read_dir_images(dir: &str) -> Result<Vec<Image>, String> {
    let mut source = DirectorySource::open(dir).map_err(|e| e.to_string())?;
    let mut pool = BufferPool::new(0);
    let mut images = Vec::with_capacity(source.len_hint().unwrap_or(0));
    while let Some(item) = source.next_image(&mut pool) {
        match item {
            Ok(image) => images.push(image),
            Err(err) => {
                // Surface the decode failure alone, matching the old
                // fail-fast reader ("cannot read <path>: <cause>").
                let message = match err.cause {
                    ScoreFault::Unreadable { message } => message,
                    other => other.to_string(),
                };
                return Err(message);
            }
        }
    }
    Ok(images)
}

fn cmd_calibrate(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_args(args, &["--benign", "--attack", "--target", "-o", "--out"], &[])?;
    if let Some(stray) = parsed.positionals.first() {
        return Err(format!("calibrate takes no positional argument, got {stray:?}"));
    }
    let benign_dir = parsed.value("--benign").ok_or("calibrate needs --benign DIR")?;
    let attack_dir = parsed.value("--attack").ok_or("calibrate needs --attack DIR")?;
    let target = parse_size(parsed.value("--target").ok_or("calibrate needs --target WxH")?)?;
    let out = parsed.either("-o", "--out")?.ok_or("calibrate needs -o FILE")?;

    let benign = read_dir_images(benign_dir)?;
    let attacks = read_dir_images(attack_dir)?;
    println!("calibrating on {} benign + {} attack images ...", benign.len(), attacks.len());

    let scaling = ScalingDetector::new(target, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);
    let scaling_cal = calibrate_whitebox(&scaling, &benign, &attacks).map_err(|e| e.to_string())?;
    let filtering_cal =
        calibrate_whitebox(&filtering, &benign, &attacks).map_err(|e| e.to_string())?;

    let mut set = ThresholdSet::new();
    set.insert(MethodId::ScalingMse, scaling_cal.threshold);
    set.insert(MethodId::FilteringSsim, filtering_cal.threshold);
    set.insert(MethodId::Csp, SteganalysisDetector::universal_threshold());
    set.save(Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out} (scaling train acc {:.1}%, filtering train acc {:.1}%)",
        scaling_cal.train_accuracy * 100.0,
        filtering_cal.train_accuracy * 100.0
    );
    Ok(ExitCode::SUCCESS)
}

/// Batch triage of a directory: the paper's offline data-poisoning
/// deployment. Prints one line per image and a summary; exits 2 when any
/// image was flagged.
///
/// The directory streams through [`DirectorySource`] into
/// [`scan_shard`]: files decode lazily in chunks of `--chunk-size`
/// (default 64), each chunk fans out over the worker pool, and decoded
/// buffers recycle — peak memory is one chunk plus the buffer pool
/// regardless of how many images the directory holds. With `--shard k/N`
/// only the k-th stable hash-partition of the file names is scanned
/// (skipped files are never decoded); `--checkpoint FILE` persists
/// progress atomically at every chunk boundary and `--resume` continues
/// from it. The engine scores the same three methods as `check`'s
/// ensemble and the verdict is the same majority vote; on resume the
/// summary covers the whole shard, freshly printed lines only the newly
/// scanned images.
fn cmd_scan(args: &[String]) -> Result<ExitCode, String> {
    use decamouflage::detection::engine::DetectionEngine;
    use decamouflage::detection::MethodSet;

    let parsed = parse_args(
        args,
        &[
            "--target",
            "--thresholds",
            "--degrade",
            "--chunk-size",
            "--metrics-out",
            "--shard",
            "--checkpoint",
        ],
        &["--resume"],
    )?;
    let [dir] = parsed.positionals.as_slice() else {
        return Err("scan needs exactly one directory path".into());
    };
    let target = parse_size(parsed.value("--target").ok_or("scan needs --target WxH")?)?;
    let thresholds = load_thresholds(&parsed)?;
    let chunk_size = match parsed.value("--chunk-size") {
        Some(raw) => parse_bounded_usize("--chunk-size", raw, 1, 1 << 20)?,
        None => 64,
    };
    let shard = match parsed.value("--shard") {
        Some(raw) => ShardSpec::parse(raw).map_err(|e| format!("--shard: {e}"))?,
        None => ShardSpec::full(),
    };
    let checkpoint_path = parsed.value("--checkpoint").map(str::to_string);
    let resume = parsed.switch("--resume");
    if resume && checkpoint_path.is_none() {
        return Err("scan --resume needs --checkpoint FILE".into());
    }
    let policy = parse_degrade(&parsed)?;
    // Telemetry must be live before the engine and source are built —
    // construction captures the process-global handle.
    let metrics_out = parsed.value("--metrics-out");
    let telemetry = if metrics_out.is_some() { enable_metrics() } else { Telemetry::disabled() };

    // The same three members as `check`'s default ensemble; the engine's
    // shared-intermediate scorer computes them in one pass per image.
    let ids = [MethodId::ScalingMse, MethodId::FilteringSsim, MethodId::Csp];
    let entries: Vec<(MethodId, Threshold)> =
        ids.iter()
            .map(|&id| {
                thresholds.get(id).map(|t| (id, t)).ok_or_else(|| {
                    format!("thresholds file is missing an entry for {:?}", id.name())
                })
            })
            .collect::<Result<_, _>>()?;
    let engine = DetectionEngine::new(target).with_methods(MethodSet::of(&ids));

    // Shard membership and the corpus fingerprint are both functions of
    // the sorted file-name list, so every shard of N agrees on them.
    let mut source = DirectorySource::open(dir).map_err(|e| e.to_string())?;
    let all_paths = source.paths().to_vec();
    let fingerprint = CorpusFingerprint::of_keys(source.shard_keys());
    let kept = source.restrict_to_shard(shard);
    let checkpoint = match (&checkpoint_path, resume) {
        (Some(path), true) => {
            let loaded = ScanCheckpoint::load(path).map_err(|e| e.to_string())?;
            loaded
                .validate_resume(shard, fingerprint, engine.methods(), &kept)
                .map_err(|e| e.to_string())?;
            loaded
        }
        _ => ScanCheckpoint::new(shard, fingerprint, engine.methods()),
    };
    source.skip(checkpoint.done());
    let config = StreamConfig::default().with_chunk_size(chunk_size);

    let final_checkpoint = scan_shard(
        &engine,
        &mut source,
        &kept,
        &config,
        checkpoint,
        |ckpt| match &checkpoint_path {
            Some(path) => ckpt.save(path),
            None => Ok(()),
        },
        |global, result| {
            let shown = all_paths[global].display();
            match result {
                Ok(scores) => {
                    let votes =
                        entries.iter().filter(|(id, t)| t.is_attack(scores.get(*id))).count();
                    if 2 * votes > entries.len() {
                        println!("ATTACK      {shown}");
                    } else {
                        println!("benign      {shown}");
                    }
                }
                Err(err) => match &err.cause {
                    // The file never decoded.
                    ScoreFault::Unreadable { message } => {
                        println!("unreadable  {shown}: {message}");
                    }
                    // No codec claims the bytes — a wrong file type, not
                    // a suspicious image, so it never feeds fail-closed.
                    ScoreFault::UnsupportedFormat { message } => {
                        println!("unsupported {shown}: {message}");
                    }
                    // The file loaded but could not be scored; the degrade
                    // policy decides whether that is suspicious in itself.
                    _ if matches!(policy, DegradePolicy::FailClosed) => {
                        println!("ATTACK      {shown}");
                    }
                    _ => {
                        println!("quarantined {shown}: {err}");
                    }
                },
            }
        },
    )
    .map_err(|e| e.to_string())?;

    // The summary covers the whole shard — including rows a previous
    // (resumed) process completed — so it comes from the checkpoint, not
    // from this process's print counters.
    let mut flagged = 0usize;
    let mut unreadable = 0usize;
    let mut quarantined = 0usize;
    for row in 0..final_checkpoint.scored_indices().len() {
        let scores = final_checkpoint.score_vector_at(row);
        let votes = entries.iter().filter(|(id, t)| t.is_attack(scores.get(*id))).count();
        if 2 * votes > entries.len() {
            flagged += 1;
        }
    }
    for record in final_checkpoint.quarantined() {
        // Decode-level failures (corrupt file, wrong file type) never
        // feed fail-closed — they are not suspicious scoring.
        if matches!(record.kind(), "unreadable" | "unsupported-format") {
            unreadable += 1;
        } else if matches!(policy, DegradePolicy::FailClosed) {
            flagged += 1;
        } else {
            quarantined += 1;
        }
    }
    println!(
        "scanned {} images: {flagged} flagged, {} accepted, \
         {quarantined} quarantined, {unreadable} unreadable",
        final_checkpoint.done(),
        final_checkpoint.done() - flagged - quarantined - unreadable
    );
    if let Some(out) = metrics_out {
        write_metrics(&telemetry, out)?;
    }
    Ok(if flagged > 0 { ExitCode::from(2) } else { ExitCode::SUCCESS })
}

/// Combines finished shard checkpoints into one corpus-wide report: the
/// canonical checkpoint-format text (stdout or `-o FILE`), a summary on
/// stderr, and optionally the shards' merged telemetry. Refuses
/// checkpoints from different corpora, incomplete shards, or overlapping
/// rows.
fn cmd_merge(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_args(args, &["-o", "--out", "--metrics-out"], &[])?;
    if parsed.positionals.is_empty() {
        return Err("merge needs at least one checkpoint file".into());
    }
    let checkpoints: Vec<ScanCheckpoint> = parsed
        .positionals
        .iter()
        .map(|path| ScanCheckpoint::load(path).map_err(|e| format!("{path}: {e}")))
        .collect::<Result<_, _>>()?;
    let report = ScanReport::merge(&checkpoints).map_err(|e| e.to_string())?;
    eprintln!(
        "merged {} checkpoint(s): {} images, {} scored, {} quarantined",
        checkpoints.len(),
        report.corpus_len(),
        report.scored_indices().len(),
        report.quarantined().len()
    );
    let text = report.to_text().map_err(|e| e.to_string())?;
    match parsed.either("-o", "--out")? {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    if let Some(path) = parsed.value("--metrics-out") {
        write_snapshot(report.metrics(), path)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Exercises the full detection pipeline — engine stages, quarantine,
/// worker pool, ensemble votes, monitor counters — on a deterministic
/// synthetic corpus and emits the resulting telemetry. The output is a
/// complete, stable exposition of every metric family the pipeline can
/// produce, so dashboards and scrape configs can be validated before any
/// real traffic exists.
fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    use decamouflage::detection::engine::DetectionEngine;
    use decamouflage::detection::monitor::DetectionMonitor;
    use decamouflage::detection::Direction;

    let parsed = parse_args(args, &["--target", "--count", "--format", "-o", "--out"], &[])?;
    if let Some(stray) = parsed.positionals.first() {
        return Err(format!("stats takes no positional argument, got {stray:?}"));
    }
    let target = match parsed.value("--target") {
        Some(raw) => parse_size(raw)?,
        None => Size::square(16),
    };
    let count = match parsed.value("--count") {
        Some(raw) => parse_bounded_usize("--count", raw, 1, 1 << 20)?,
        None => 4,
    };
    let out = parsed.either("-o", "--out")?;
    let format = match parsed.value("--format") {
        Some(f @ ("prometheus" | "json")) => f,
        Some(other) => return Err(format!("unknown --format {other:?} (prometheus, json)")),
        // With no explicit format the output file's extension decides.
        None if out.is_some_and(|p| p.to_ascii_lowercase().ends_with(".json")) => "json",
        None => "prometheus",
    };

    let telemetry = enable_metrics();
    let side = 4 * target.width.max(target.height).max(8);
    let benign = |i: u64| {
        Image::from_fn_gray(side, side, move |x, y| {
            (120.0 + 60.0 * ((x as f64 + i as f64) * 0.07).sin() + 40.0 * (y as f64 * 0.05).cos())
                .round()
        })
    };
    let attack = |i: u64| {
        Image::from_fn_gray(side, side, move |x, y| {
            ((x * 13 + y * 7 + i as usize * 3) % 251) as f64
        })
    };

    // Engine: a parallel resilient batch (stage/method latencies, pool
    // counters) plus one undersized input through the quarantine path.
    let engine = DetectionEngine::new(target);
    let outcome = engine.score_corpus_resilient(benign, attack, count, 2);
    let counts = outcome.counts();
    let _ = engine.score_resilient(&Image::from_fn_gray(2, 2, |_, _| 10.0));

    // Ensemble: every decision records votes and verdict counters.
    let ensemble = build_ensemble(target, &default_thresholds(), DegradePolicy::Strict)?;
    for i in 0..count as u64 {
        ensemble.decide(&benign(i)).map_err(|e| e.to_string())?;
        ensemble.decide(&attack(i)).map_err(|e| e.to_string())?;
    }

    // Monitor: screening counters and rolling-window gauges.
    let detector = ScalingDetector::new(target, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let mut monitor = DetectionMonitor::new(
        detector,
        Threshold::new(400.0, Direction::AboveIsAttack),
        100.0,
        50.0,
        count.max(4),
        3.0,
    )
    .map_err(|e| e.to_string())?;
    for i in 0..count as u64 {
        monitor.screen(&benign(i)).map_err(|e| e.to_string())?;
    }

    eprintln!(
        "exercised {} engine slots ({} scored, {} quarantined), {} ensemble decisions, {} screens",
        2 * count + 1,
        counts.scored,
        counts.quarantined + 1,
        2 * count,
        count
    );
    let output = match format {
        "json" => telemetry.json(),
        _ => telemetry.prometheus_text(),
    }
    .ok_or("telemetry is not enabled")?;
    match out {
        Some(path) => {
            std::fs::write(path, output).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{output}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// Runs the HTTP detection service until SIGTERM (or Ctrl-C via the
/// orchestrator), then drains gracefully. Exits 0 only when every
/// in-flight request finished inside the drain deadline.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use decamouflage::serve::shutdown_signal;
    use std::io::Write as _;

    let parsed = parse_args(
        args,
        &[
            "--addr",
            "--target",
            "--thresholds",
            "--degrade",
            "--handlers",
            "--queue-limit",
            "--deadline-ms",
            "--drain-ms",
            "--max-body-bytes",
            "--metrics-out",
        ],
        &[],
    )?;
    if let Some(stray) = parsed.positionals.first() {
        return Err(format!("serve takes no positional argument, got {stray:?}"));
    }
    let target = parse_size(parsed.value("--target").ok_or("serve needs --target WxH")?)?;
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: parsed.value("--addr").unwrap_or("127.0.0.1:8321").to_string(),
        handlers: match parsed.value("--handlers") {
            Some(raw) => parse_bounded_usize("--handlers", raw, 1, 1024)?,
            None => defaults.handlers,
        },
        queue_limit: match parsed.value("--queue-limit") {
            Some(raw) => parse_bounded_usize("--queue-limit", raw, 0, 1 << 16)?,
            None => defaults.queue_limit,
        },
        deadline: match parsed.value("--deadline-ms") {
            Some(raw) => parse_bounded_ms("--deadline-ms", raw, 10, 600_000)?,
            None => defaults.deadline,
        },
        drain_deadline: match parsed.value("--drain-ms") {
            Some(raw) => parse_bounded_ms("--drain-ms", raw, 10, 600_000)?,
            None => defaults.drain_deadline,
        },
        max_body_bytes: match parsed.value("--max-body-bytes") {
            Some(raw) => parse_bounded_usize("--max-body-bytes", raw, 1024, 1 << 30)?,
            None => defaults.max_body_bytes,
        },
        ..defaults
    };
    if config.drain_deadline < config.deadline {
        return Err(format!(
            "--drain-ms ({:?}) must be at least --deadline-ms ({:?}) so in-flight \
             requests can finish during the drain",
            config.drain_deadline, config.deadline
        ));
    }

    // The service records into the process-global registry and serves it
    // back on GET /metrics, so telemetry is always live here.
    let telemetry = enable_metrics();
    let thresholds = load_thresholds(&parsed)?;
    let service = DetectionService::new(target, &thresholds, parse_degrade(&parsed)?)?;
    let metrics_out = parsed.value("--metrics-out");

    shutdown_signal::install();
    let server = Server::bind(config, service).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The smoke harness parses this line for the ephemeral port; keep the
    // format stable and flush it before blocking in the accept loop.
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();

    let report = server.run().map_err(|e| e.to_string())?;
    if let Some(path) = metrics_out {
        write_metrics(&telemetry, path)?;
    }
    if report.drained {
        eprintln!("drained clean");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("drain deadline expired with {} request(s) in flight", report.in_flight_at_exit);
        Ok(ExitCode::FAILURE)
    }
}
