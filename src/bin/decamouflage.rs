//! `decamouflage` — command-line front end for the detection framework.
//!
//! ```text
//! decamouflage check <image> --target WxH [--thresholds FILE] [--metrics-out FILE]
//! decamouflage scan <dir> --target WxH [--thresholds FILE] [--chunk-size N] [--metrics-out FILE]
//! decamouflage craft <original> <target-image> -o <attack-out>
//! decamouflage calibrate --benign DIR --attack DIR --target WxH -o thresholds.txt
//! decamouflage stats [--target WxH] [--count N] [--format prometheus|json] [-o FILE]
//! ```
//!
//! Images are PGM/PPM or 24-bit BMP (chosen by extension). `check` exits
//! with status 2 when the image is flagged as an attack, 0 when benign —
//! scriptable as a pre-ingestion filter. `scan` triages a whole directory
//! (the paper's offline data-poisoning use case) and exits 2 if anything
//! was flagged. Directories stream through the bounded-memory
//! [`DirectorySource`] pipeline: at most `--chunk-size` decoded images
//! (default 64) are resident at once, so arbitrarily large corpora scan in
//! constant memory.
//!
//! `--metrics-out FILE` enables telemetry for the run and writes the
//! final metric state to `FILE` on exit — Prometheus text exposition by
//! default, JSON when the path ends in `.json`. `stats` exercises the
//! full pipeline on a synthetic corpus and emits the same exposition,
//! handy for wiring dashboards before real traffic exists.

use decamouflage::detection::calibrate::calibrate_whitebox;
use decamouflage::detection::ensemble::{DegradePolicy, Ensemble};
use decamouflage::detection::persist::ThresholdSet;
use decamouflage::detection::stream::{BufferPool, DirectorySource, ImageSource, StreamConfig};
use decamouflage::detection::{
    FilteringDetector, MethodId, MetricKind, ScalingDetector, ScoreFault, SteganalysisDetector,
    Threshold,
};
use decamouflage::imaging::codec::{read_bmp_file, read_pnm_file, write_bmp_file, write_pnm_file};
use decamouflage::imaging::scale::{ScaleAlgorithm, Scaler};
use decamouflage::imaging::{Image, Size};
use decamouflage::telemetry::Telemetry;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("craft") => cmd_craft(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  decamouflage check <image> --target WxH [--thresholds FILE] [--degrade MODE] [--metrics-out FILE]\n  \
         decamouflage scan <dir> --target WxH [--thresholds FILE] [--degrade MODE] [--chunk-size N] [--metrics-out FILE]\n  \
         decamouflage craft <original> <target-image> -o <attack-out>\n  \
         decamouflage calibrate --benign DIR --attack DIR --target WxH -o FILE\n  \
         decamouflage stats [--target WxH] [--count N] [--format prometheus|json] [-o FILE]\n\n\
         Images: .pgm/.ppm/.pnm or .bmp. `check`/`scan` exit 0 = benign, 2 = attack(s) found.\n\
         --degrade: what to do when an ensemble voter cannot score an image —\n  \
         strict (default: report an error), majority (majority of the remaining voters),\n  \
         fail-closed (flag the image as an attack).\n\
         --chunk-size: images decoded per scoring chunk during scan (default 64) —\n  \
         peak memory is bounded by one chunk regardless of directory size.\n\
         --metrics-out: record telemetry during the run and write it to FILE on exit\n  \
         (Prometheus text; JSON when FILE ends in .json).\n\
         stats: run the pipeline on a synthetic corpus and emit its telemetry."
    );
}

/// Installs (idempotently) and returns the process-global telemetry
/// handle, enabled. Must run before the ensemble/engine is built so
/// their construction picks the enabled handle up.
fn enable_metrics() -> Telemetry {
    let _ = decamouflage::telemetry::install_global(Telemetry::enabled());
    decamouflage::telemetry::global()
}

/// Writes the final metric state to `path`: JSON when the extension is
/// `.json`, Prometheus text exposition otherwise.
fn write_metrics(telemetry: &Telemetry, path: &str) -> Result<(), String> {
    let output = if path.to_ascii_lowercase().ends_with(".json") {
        telemetry.json()
    } else {
        telemetry.prometheus_text()
    };
    let output = output.ok_or("telemetry is not enabled")?;
    std::fs::write(path, output).map_err(|e| format!("cannot write {path}: {e}"))
}

fn read_image(path: &str) -> Result<Image, String> {
    let result = if path.to_ascii_lowercase().ends_with(".bmp") {
        read_bmp_file(path)
    } else {
        read_pnm_file(path)
    };
    result.map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_image(img: &Image, path: &str) -> Result<(), String> {
    let result = if path.to_ascii_lowercase().ends_with(".bmp") {
        write_bmp_file(img, path)
    } else {
        write_pnm_file(img, path)
    };
    result.map_err(|e| format!("cannot write {path}: {e}"))
}

fn parse_size(s: &str) -> Result<Size, String> {
    let (w, h) = s.split_once(['x', 'X']).ok_or_else(|| format!("expected WxH, got {s:?}"))?;
    let w: usize = w.parse().map_err(|_| format!("bad width in {s:?}"))?;
    let h: usize = h.parse().map_err(|_| format!("bad height in {s:?}"))?;
    if w == 0 || h == 0 {
        return Err(format!("target size {s:?} must be non-zero"));
    }
    Ok(Size::new(w, h))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Default thresholds used by `check` when no calibration file is given:
/// intentionally conservative generic values; calibrating on in-domain
/// data is always preferable.
fn default_thresholds() -> ThresholdSet {
    let mut set = ThresholdSet::new();
    set.insert(
        MethodId::ScalingMse,
        Threshold::new(400.0, decamouflage::detection::Direction::AboveIsAttack),
    );
    set.insert(
        MethodId::FilteringSsim,
        Threshold::new(0.55, decamouflage::detection::Direction::BelowIsAttack),
    );
    set.insert(MethodId::Csp, SteganalysisDetector::universal_threshold());
    set
}

fn parse_degrade(args: &[String]) -> Result<DegradePolicy, String> {
    match flag_value(args, "--degrade") {
        None | Some("strict") => Ok(DegradePolicy::Strict),
        Some("majority") => Ok(DegradePolicy::MajorityOfAvailable),
        Some("fail-closed") => Ok(DegradePolicy::FailClosed),
        Some(other) => {
            Err(format!("unknown --degrade mode {other:?} (strict, majority, fail-closed)"))
        }
    }
}

fn build_ensemble(
    target: Size,
    thresholds: &ThresholdSet,
    policy: DegradePolicy,
) -> Result<Ensemble, String> {
    let need = |id: MethodId| {
        thresholds
            .get(id)
            .ok_or_else(|| format!("thresholds file is missing an entry for {:?}", id.name()))
    };
    Ok(Ensemble::new()
        .with_degrade_policy(policy)
        .with_member(
            ScalingDetector::new(target, ScaleAlgorithm::Bilinear, MetricKind::Mse),
            need(MethodId::ScalingMse)?,
        )
        .with_member(FilteringDetector::new(MetricKind::Ssim), need(MethodId::FilteringSsim)?)
        .with_member(SteganalysisDetector::for_target(target), need(MethodId::Csp)?))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let image_path = args
        .iter()
        .find(|a| {
            !a.starts_with('-')
                && Some(a.as_str()) != flag_value(args, "--target")
                && Some(a.as_str()) != flag_value(args, "--thresholds")
                && Some(a.as_str()) != flag_value(args, "--degrade")
                && Some(a.as_str()) != flag_value(args, "--metrics-out")
        })
        .ok_or("check needs an image path")?;
    let target = parse_size(flag_value(args, "--target").ok_or("check needs --target WxH")?)?;
    let thresholds = match flag_value(args, "--thresholds") {
        Some(path) => ThresholdSet::load(path).map_err(|e| e.to_string())?,
        None => default_thresholds(),
    };
    // Telemetry must be live before the ensemble is built — construction
    // captures the process-global handle.
    let metrics_out = flag_value(args, "--metrics-out");
    let telemetry = if metrics_out.is_some() { enable_metrics() } else { Telemetry::disabled() };
    let image = {
        let _decode = telemetry.span("decam_engine_stage_seconds", &[("stage", "decode")]);
        read_image(image_path)?
    };
    let ensemble = build_ensemble(target, &thresholds, parse_degrade(args)?)?;
    let decision = ensemble.decide(&image).map_err(|e| e.to_string())?;
    for (member, vote) in &decision.votes {
        println!("{member}: {}", if *vote { "ATTACK" } else { "benign" });
    }
    for (member, reason) in &decision.unavailable {
        println!("{member}: unavailable ({reason})");
    }
    if let Some(path) = metrics_out {
        write_metrics(&telemetry, path)?;
    }
    if decision.is_attack {
        println!("{image_path}: ATTACK (majority vote)");
        Ok(ExitCode::from(2))
    } else {
        println!("{image_path}: benign");
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_craft(args: &[String]) -> Result<ExitCode, String> {
    use decamouflage::attack::{craft_attack, AttackConfig};
    let positional: Vec<&String> = {
        let out_idx = args.iter().position(|a| a == "-o" || a == "--out");
        args.iter()
            .enumerate()
            .filter(|(i, a)| !a.starts_with('-') && out_idx.map(|oi| *i != oi + 1).unwrap_or(true))
            .map(|(_, a)| a)
            .collect()
    };
    let [original_path, target_path] = positional.as_slice() else {
        return Err("craft needs <original> and <target-image>".into());
    };
    let out = flag_value(args, "-o")
        .or_else(|| flag_value(args, "--out"))
        .ok_or("craft needs -o <attack-out>")?;

    let original = read_image(original_path)?;
    let target = read_image(target_path)?;
    let scaler = Scaler::new(original.size(), target.size(), ScaleAlgorithm::Bilinear)
        .map_err(|e| e.to_string())?;
    let crafted = craft_attack(&original, &target, &scaler, &AttackConfig::default())
        .map_err(|e| e.to_string())?;
    write_image(&crafted.image, out)?;
    println!(
        "wrote {out}: deviation from target (L-inf) {:.2}, perturbed {:.1}% of pixels",
        crafted.stats.target_deviation_linf,
        crafted.stats.perturbed_fraction * 100.0
    );
    Ok(ExitCode::SUCCESS)
}

/// Eagerly drains a [`DirectorySource`] into a `Vec` — the one place the
/// CLI still materialises a whole directory (calibration needs every image
/// for the threshold search anyway). Listing, extension filtering, sorting
/// and decoding all live in the shared source.
fn read_dir_images(dir: &str) -> Result<Vec<Image>, String> {
    let mut source = DirectorySource::open(dir).map_err(|e| e.to_string())?;
    let mut pool = BufferPool::new(0);
    let mut images = Vec::with_capacity(source.len_hint().unwrap_or(0));
    while let Some(item) = source.next_image(&mut pool) {
        match item {
            Ok(image) => images.push(image),
            Err(err) => {
                // Surface the decode failure alone, matching the old
                // fail-fast reader ("cannot read <path>: <cause>").
                let message = match err.cause {
                    ScoreFault::Unreadable { message } => message,
                    other => other.to_string(),
                };
                return Err(message);
            }
        }
    }
    Ok(images)
}

fn cmd_calibrate(args: &[String]) -> Result<ExitCode, String> {
    let benign_dir = flag_value(args, "--benign").ok_or("calibrate needs --benign DIR")?;
    let attack_dir = flag_value(args, "--attack").ok_or("calibrate needs --attack DIR")?;
    let target = parse_size(flag_value(args, "--target").ok_or("calibrate needs --target WxH")?)?;
    let out = flag_value(args, "-o")
        .or_else(|| flag_value(args, "--out"))
        .ok_or("calibrate needs -o FILE")?;

    let benign = read_dir_images(benign_dir)?;
    let attacks = read_dir_images(attack_dir)?;
    println!("calibrating on {} benign + {} attack images ...", benign.len(), attacks.len());

    let scaling = ScalingDetector::new(target, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);
    let scaling_cal = calibrate_whitebox(&scaling, &benign, &attacks).map_err(|e| e.to_string())?;
    let filtering_cal =
        calibrate_whitebox(&filtering, &benign, &attacks).map_err(|e| e.to_string())?;

    let mut set = ThresholdSet::new();
    set.insert(MethodId::ScalingMse, scaling_cal.threshold);
    set.insert(MethodId::FilteringSsim, filtering_cal.threshold);
    set.insert(MethodId::Csp, SteganalysisDetector::universal_threshold());
    set.save(Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out} (scaling train acc {:.1}%, filtering train acc {:.1}%)",
        scaling_cal.train_accuracy * 100.0,
        filtering_cal.train_accuracy * 100.0
    );
    Ok(ExitCode::SUCCESS)
}

/// Batch triage of a directory: the paper's offline data-poisoning
/// deployment. Prints one line per image and a summary; exits 2 when any
/// image was flagged.
///
/// The directory streams through [`DirectorySource`] into
/// [`DetectionEngine::score_stream`](decamouflage::detection::engine::DetectionEngine::score_stream):
/// files decode lazily in chunks of `--chunk-size` (default 64), each
/// chunk fans out over the worker pool, and decoded buffers recycle —
/// peak memory is one chunk plus the buffer pool regardless of how many
/// images the directory holds. The engine scores the same three methods
/// as `check`'s ensemble and the verdict is the same majority vote.
fn cmd_scan(args: &[String]) -> Result<ExitCode, String> {
    use decamouflage::detection::engine::DetectionEngine;
    use decamouflage::detection::MethodSet;

    let dir = args
        .iter()
        .find(|a| {
            !a.starts_with('-')
                && Some(a.as_str()) != flag_value(args, "--target")
                && Some(a.as_str()) != flag_value(args, "--thresholds")
                && Some(a.as_str()) != flag_value(args, "--degrade")
                && Some(a.as_str()) != flag_value(args, "--metrics-out")
                && Some(a.as_str()) != flag_value(args, "--chunk-size")
        })
        .ok_or("scan needs a directory path")?;
    let target = parse_size(flag_value(args, "--target").ok_or("scan needs --target WxH")?)?;
    let thresholds = match flag_value(args, "--thresholds") {
        Some(path) => ThresholdSet::load(path).map_err(|e| e.to_string())?,
        None => default_thresholds(),
    };
    let chunk_size: usize = match flag_value(args, "--chunk-size") {
        Some(raw) => match raw.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --chunk-size value {raw:?} (must be >= 1)")),
        },
        None => 64,
    };
    let policy = parse_degrade(args)?;
    // Telemetry must be live before the engine and source are built —
    // construction captures the process-global handle.
    let metrics_out = flag_value(args, "--metrics-out");
    let telemetry = if metrics_out.is_some() { enable_metrics() } else { Telemetry::disabled() };

    // The same three members as `check`'s default ensemble; the engine's
    // shared-intermediate scorer computes them in one pass per image.
    let ids = [MethodId::ScalingMse, MethodId::FilteringSsim, MethodId::Csp];
    let entries: Vec<(MethodId, Threshold)> =
        ids.iter()
            .map(|&id| {
                thresholds.get(id).map(|t| (id, t)).ok_or_else(|| {
                    format!("thresholds file is missing an entry for {:?}", id.name())
                })
            })
            .collect::<Result<_, _>>()?;
    let engine = DetectionEngine::new(target).with_methods(MethodSet::of(&ids));

    let mut source = DirectorySource::open(dir).map_err(|e| e.to_string())?;
    let paths = source.paths().to_vec();
    let config = StreamConfig::default().with_chunk_size(chunk_size);

    let mut flagged = 0usize;
    let mut unreadable = 0usize;
    let mut quarantined = 0usize;
    engine.score_stream(&mut source, &config, |index, result| {
        let shown = paths[index].display();
        match result {
            Ok(scores) => {
                let votes = entries.iter().filter(|(id, t)| t.is_attack(scores.get(*id))).count();
                if 2 * votes > entries.len() {
                    flagged += 1;
                    println!("ATTACK      {shown}");
                } else {
                    println!("benign      {shown}");
                }
            }
            Err(err) => match err.cause {
                // The file never decoded.
                ScoreFault::Unreadable { message } => {
                    unreadable += 1;
                    println!("unreadable  {shown}: {message}");
                }
                // The file loaded but could not be scored; the degrade
                // policy decides whether that is suspicious in itself.
                _ if matches!(policy, DegradePolicy::FailClosed) => {
                    flagged += 1;
                    println!("ATTACK      {shown}");
                }
                _ => {
                    quarantined += 1;
                    println!("quarantined {shown}: {err}");
                }
            },
        }
    });
    println!(
        "scanned {} images: {flagged} flagged, {} accepted, \
         {quarantined} quarantined, {unreadable} unreadable",
        paths.len(),
        paths.len() - flagged - quarantined - unreadable
    );
    if let Some(out) = metrics_out {
        write_metrics(&telemetry, out)?;
    }
    Ok(if flagged > 0 { ExitCode::from(2) } else { ExitCode::SUCCESS })
}

/// Exercises the full detection pipeline — engine stages, quarantine,
/// worker pool, ensemble votes, monitor counters — on a deterministic
/// synthetic corpus and emits the resulting telemetry. The output is a
/// complete, stable exposition of every metric family the pipeline can
/// produce, so dashboards and scrape configs can be validated before any
/// real traffic exists.
fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    use decamouflage::detection::engine::DetectionEngine;
    use decamouflage::detection::monitor::DetectionMonitor;
    use decamouflage::detection::Direction;

    let target = match flag_value(args, "--target") {
        Some(raw) => parse_size(raw)?,
        None => Size::square(16),
    };
    let count: usize = match flag_value(args, "--count") {
        Some(raw) => raw.parse().map_err(|_| format!("bad --count value {raw:?}"))?,
        None => 4,
    };
    if count == 0 {
        return Err("--count must be >= 1".into());
    }
    let out = flag_value(args, "-o").or_else(|| flag_value(args, "--out"));
    let format = match flag_value(args, "--format") {
        Some(f @ ("prometheus" | "json")) => f,
        Some(other) => return Err(format!("unknown --format {other:?} (prometheus, json)")),
        // With no explicit format the output file's extension decides.
        None if out.is_some_and(|p| p.to_ascii_lowercase().ends_with(".json")) => "json",
        None => "prometheus",
    };

    let telemetry = enable_metrics();
    let side = 4 * target.width.max(target.height).max(8);
    let benign = |i: u64| {
        Image::from_fn_gray(side, side, move |x, y| {
            (120.0 + 60.0 * ((x as f64 + i as f64) * 0.07).sin() + 40.0 * (y as f64 * 0.05).cos())
                .round()
        })
    };
    let attack = |i: u64| {
        Image::from_fn_gray(side, side, move |x, y| {
            ((x * 13 + y * 7 + i as usize * 3) % 251) as f64
        })
    };

    // Engine: a parallel resilient batch (stage/method latencies, pool
    // counters) plus one undersized input through the quarantine path.
    let engine = DetectionEngine::new(target);
    let outcome = engine.score_corpus_resilient(benign, attack, count, 2);
    let counts = outcome.counts();
    let _ = engine.score_resilient(&Image::from_fn_gray(2, 2, |_, _| 10.0));

    // Ensemble: every decision records votes and verdict counters.
    let ensemble = build_ensemble(target, &default_thresholds(), DegradePolicy::Strict)?;
    for i in 0..count as u64 {
        ensemble.decide(&benign(i)).map_err(|e| e.to_string())?;
        ensemble.decide(&attack(i)).map_err(|e| e.to_string())?;
    }

    // Monitor: screening counters and rolling-window gauges.
    let detector = ScalingDetector::new(target, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let mut monitor = DetectionMonitor::new(
        detector,
        Threshold::new(400.0, Direction::AboveIsAttack),
        100.0,
        50.0,
        count.max(4),
        3.0,
    )
    .map_err(|e| e.to_string())?;
    for i in 0..count as u64 {
        monitor.screen(&benign(i)).map_err(|e| e.to_string())?;
    }

    eprintln!(
        "exercised {} engine slots ({} scored, {} quarantined), {} ensemble decisions, {} screens",
        2 * count + 1,
        counts.scored,
        counts.quarantined + 1,
        2 * count,
        count
    );
    let output = match format {
        "json" => telemetry.json(),
        _ => telemetry.prometheus_text(),
    }
    .ok_or("telemetry is not enabled")?;
    match out {
        Some(path) => {
            std::fs::write(path, output).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{output}"),
    }
    Ok(ExitCode::SUCCESS)
}
