//! # Decamouflage
//!
//! A from-scratch Rust reproduction of *"Decamouflage: A Framework to
//! Detect Image-Scaling Attacks on Convolutional Neural Networks"*
//! (Kim et al., DSN 2021).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`imaging`] — image buffers, OpenCV-compatible scalers, rank filters,
//!   codecs, drawing,
//! * [`spectral`] — FFT, centred spectra, connected components, CSP,
//! * [`metrics`] — MSE, SSIM, PSNR, colour histograms, statistics,
//! * [`attack`] — the Xiao et al. image-scaling attack (QP crafting,
//!   verification, adaptive variants),
//! * [`datasets`] — seeded synthetic corpora standing in for the paper's
//!   datasets,
//! * [`detection`] — the Decamouflage framework itself: three detectors,
//!   threshold calibration, majority-vote ensemble, evaluation pipeline,
//! * [`telemetry`] — dependency-free metrics: counters, gauges, latency
//!   histograms, RAII stage timers, deterministic Prometheus/JSON export,
//! * [`serve`] — detection-as-a-service: an overload-safe,
//!   deadline-bounded HTTP server over the engine.
//!
//! # Quickstart
//!
//! ```
//! use decamouflage::detection::{Detector, MetricKind, ScalingDetector, SteganalysisDetector};
//! use decamouflage::imaging::{Image, Size, scale::ScaleAlgorithm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A detector that round-trips through the CNN input size.
//! let detector = ScalingDetector::new(
//!     Size::square(16),
//!     ScaleAlgorithm::Bilinear,
//!     MetricKind::Mse,
//! );
//! let image = Image::from_fn_gray(64, 64, |x, y| ((x + y) % 200) as f64 + 20.0);
//! let score = detector.score(&image)?;
//! assert!(score.is_finite());
//!
//! // The steganalysis detector needs no calibration at all.
//! let stego = SteganalysisDetector::new();
//! let csp = stego.score(&image)?;
//! assert!(csp >= 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios (attack crafting, online
//! detection, data-poisoning triage, adaptive attacks) and the
//! `decamouflage-bench` crate for the per-table reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use decamouflage_attack as attack;
pub use decamouflage_core as detection;
pub use decamouflage_datasets as datasets;
pub use decamouflage_imaging as imaging;
pub use decamouflage_metrics as metrics;
pub use decamouflage_serve as serve;
pub use decamouflage_spectral as spectral;
pub use decamouflage_telemetry as telemetry;
