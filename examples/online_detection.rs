//! Online (run-time) detection in front of an inference service — the
//! paper's black-box deployment mode.
//!
//! The service never sees the attacker's algorithm. Thresholds come from
//! benign-only percentile calibration (1% tail), the steganalysis method
//! needs no calibration at all, and every incoming request is screened
//! before it reaches the model. Per-image latency is reported, mirroring
//! the paper's run-time overhead table.
//!
//! ```text
//! cargo run --release --example online_detection
//! ```

use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::ensemble::Ensemble;
use decamouflage::detection::threshold::percentile_blackbox;
use decamouflage::detection::{
    Detector, Direction, FilteringDetector, MetricKind, ScalingDetector, SteganalysisDetector,
};
use decamouflage::imaging::scale::ScaleAlgorithm;
use std::time::Instant;

const CALIBRATION: u64 = 32; // benign traffic sample used for percentiles
const TRAFFIC: u64 = 30; // live requests to screen

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::tiny();
    let target_size = profile.target_size;
    // The attacker targets nearest-neighbour scaling; the service neither
    // knows nor cares — its detectors use its own bilinear round trip.
    let attacker = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Nearest);

    let scaling = ScalingDetector::new(target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);
    let steganalysis = SteganalysisDetector::for_target(target_size);

    // --- Black-box calibration: benign traffic only ---------------------
    let mut scaling_scores = Vec::new();
    let mut filtering_scores = Vec::new();
    for i in 0..CALIBRATION {
        let img = attacker.benign(5000 + i);
        scaling_scores.push(scaling.score(&img)?);
        filtering_scores.push(filtering.score(&img)?);
    }
    let scaling_threshold = percentile_blackbox(&scaling_scores, 1.0, Direction::AboveIsAttack)?;
    let filtering_threshold =
        percentile_blackbox(&filtering_scores, 1.0, Direction::BelowIsAttack)?;
    println!(
        "black-box thresholds: scaling MSE >= {:.1}, filtering SSIM <= {:.3}, CSP >= 2",
        scaling_threshold.value(),
        filtering_threshold.value()
    );

    let ensemble = Ensemble::new()
        .with_member(scaling, scaling_threshold)
        .with_member(filtering, filtering_threshold)
        .with_member(steganalysis, SteganalysisDetector::universal_threshold());

    // --- Screen live traffic -------------------------------------------
    let mut blocked = 0u32;
    let mut passed = 0u32;
    let mut wrong = 0u32;
    let mut total_ms = 0.0;
    for i in 0..TRAFFIC {
        let is_attack = i % 3 == 0; // a third of the traffic is hostile
        let request = if is_attack { attacker.attack_image(i)? } else { attacker.benign(i) };
        let start = Instant::now();
        let verdict = ensemble.is_attack(&request)?;
        total_ms += start.elapsed().as_secs_f64() * 1000.0;
        if verdict == is_attack {
            if verdict {
                blocked += 1;
            } else {
                passed += 1;
            }
        } else {
            wrong += 1;
        }
    }

    println!(
        "screened {TRAFFIC} requests: {blocked} attacks blocked, {passed} benign passed, \
         {wrong} misclassified; mean latency {:.2} ms/request",
        total_ms / TRAFFIC as f64
    );
    assert!(wrong <= 2, "online screening degraded: {wrong} errors");
    println!("ok: online screening holds up without knowing the attack algorithm");
    Ok(())
}
