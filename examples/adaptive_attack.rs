//! Adaptive attacks against the ensemble — the paper's §6 discussion.
//!
//! Two evasion strategies are tried against a calibrated Decamouflage
//! ensemble:
//!
//! 1. **Jitter camouflage** — noise on the pixels the scaler ignores, to
//!    blur the periodic CSP peaks. The downscaled output is untouched, but
//!    the spatial detectors see a *larger* residual: the methods cover for
//!    each other.
//! 2. **Partial-strength attacks** — blending the target towards the benign
//!    downscale to shrink the perturbation. Detectability falls only as the
//!    attack stops reaching its target, i.e. as it stops being an attack.
//!
//! ```text
//! cargo run --release --example adaptive_attack
//! ```

use decamouflage::attack::adaptive::{blend_target, jitter_camouflage};
use decamouflage::attack::{craft_attack, verify_attack, AttackConfig, VerifyConfig};
use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::ensemble::Ensemble;
use decamouflage::detection::threshold::search_whitebox;
use decamouflage::detection::{
    Detector, Direction, FilteringDetector, MetricKind, ScalingDetector, SteganalysisDetector,
};
use decamouflage::imaging::scale::ScaleAlgorithm;

const SAMPLES: u64 = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::tiny();
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let target_size = profile.target_size;

    // Calibrate a white-box ensemble on a hold-out slice.
    let scaling = ScalingDetector::new(target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);
    let steganalysis = SteganalysisDetector::for_target(target_size);
    let mut b_s = Vec::new();
    let mut b_f = Vec::new();
    let mut a_s = Vec::new();
    let mut a_f = Vec::new();
    for i in 0..SAMPLES {
        let clean = generator.benign(900 + i);
        let attack = generator.attack_image(900 + i)?;
        b_s.push(scaling.score(&clean)?);
        b_f.push(filtering.score(&clean)?);
        a_s.push(scaling.score(&attack)?);
        a_f.push(filtering.score(&attack)?);
    }
    let ensemble = Ensemble::new()
        .with_member(scaling, search_whitebox(&b_s, &a_s, Direction::AboveIsAttack)?.threshold)
        .with_member(filtering, search_whitebox(&b_f, &a_f, Direction::BelowIsAttack)?.threshold)
        .with_member(steganalysis, SteganalysisDetector::universal_threshold());

    // --- Strategy 1: jitter camouflage ----------------------------------
    println!("jitter camouflage (noise amplitude -> detection rate):");
    for strength in [0.0, 8.0, 20.0] {
        let mut caught = 0u64;
        for i in 0..SAMPLES {
            let crafted = generator.attack_image(i)?;
            let evasive = jitter_camouflage(&crafted, &generator.scaler(i), strength, i)?;
            caught += u64::from(ensemble.is_attack(&evasive)?);
        }
        println!("  strength {strength:>4}: {caught}/{SAMPLES} still detected");
    }

    // --- Strategy 2: partial-strength attacks ---------------------------
    println!("partial-strength attacks (blend alpha -> detection rate, attack still works?):");
    for alpha in [1.0, 0.6, 0.3] {
        let mut caught = 0u64;
        let mut still_effective = 0u64;
        for i in 0..SAMPLES {
            let original = generator.benign(i);
            let full_target = generator.target(i);
            let scaler = generator.scaler(i);
            let weak_target = blend_target(&original, &full_target, &scaler, alpha)?;
            let crafted = craft_attack(&original, &weak_target, &scaler, &AttackConfig::default())?;
            caught += u64::from(ensemble.is_attack(&crafted.image)?);
            // Does the weakened image still deliver the *original* target?
            let v = verify_attack(
                &original,
                &crafted.image,
                &full_target,
                &scaler,
                &VerifyConfig::default(),
            )?;
            still_effective += u64::from(v.scales_to_target);
        }
        println!(
            "  alpha {alpha:>3}: {caught}/{SAMPLES} detected, {still_effective}/{SAMPLES} still \
             deliver the full target"
        );
    }

    println!(
        "conclusion: evading one method strengthens another; weakening the attack far enough \
         to slip through also destroys its payload — the paper's defense-in-depth argument."
    );
    Ok(())
}
