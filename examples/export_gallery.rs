//! Export a small gallery of attack images for visual inspection — the
//! repro's version of the paper's Figure 1 ("sheep that becomes a wolf").
//!
//! Writes BMP files (openable in any viewer) for each sample: the benign
//! original, the visually identical attack image, the attacker's target,
//! and what the CNN actually sees after downscaling.
//!
//! ```text
//! cargo run --release --example export_gallery [output-dir]
//! ```

use decamouflage::datasets::export::export_samples;
use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::imaging::scale::ScaleAlgorithm;
use decamouflage::metrics::{mse, psnr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "target/attack-gallery".to_string());
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);

    let samples = export_samples(&generator, &dir, 4)?;
    println!("wrote {} samples to {dir}/:", samples.len());
    for (i, sample) in samples.iter().enumerate() {
        let original = generator.benign(i as u64);
        let attack = generator.attack_image(i as u64)?;
        println!(
            "  {:>12} vs {:>12}: PSNR {:5.1} dB (looks identical), attack-vs-original MSE {:7.1}",
            sample
                .original
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            sample.attack.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
            psnr(&original, &attack)?,
            mse(&original, &attack)?,
        );
    }
    println!(
        "open `NNNN_original.bmp` next to `NNNN_attack.bmp` (indistinguishable) and then \
         `NNNN_attack_downscaled.bmp` next to `NNNN_target.bmp` (the hidden payload)."
    );
    Ok(())
}
