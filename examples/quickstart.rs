//! Quickstart: craft an image-scaling attack, then catch it with all three
//! Decamouflage detection methods and the majority-vote ensemble.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use decamouflage::attack::{craft_attack, verify_attack, AttackConfig, VerifyConfig};
use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::ensemble::Ensemble;
use decamouflage::detection::{
    Detector, Direction, FilteringDetector, MetricKind, ScalingDetector, SteganalysisDetector,
    Threshold,
};
use decamouflage::imaging::scale::ScaleAlgorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A benign "photo" and an adversarial target, from the seeded
    //    synthetic dataset (stand-in for real photographs).
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    let original = generator.benign(7);
    let target = generator.target(7);
    let scaler = generator.scaler(7);
    println!("original {} -> CNN input {}", original.size(), scaler.dst_size());

    // 2. Craft the attack: visually the original, but downscales to the
    //    target (Xiao et al.'s camouflage attack).
    let crafted = craft_attack(&original, &target, &scaler, &AttackConfig::default())?;
    let verification =
        verify_attack(&original, &crafted.image, &target, &scaler, &VerifyConfig::default())?;
    println!(
        "attack crafted: deviation from target (L-inf) = {:.2}, perturbed {:.1}% of pixels, \
         successful = {}",
        crafted.stats.target_deviation_linf,
        crafted.stats.perturbed_fraction * 100.0,
        verification.is_successful()
    );

    // 3. Run the three detection methods on both images.
    let target_size = scaler.dst_size();
    let scaling = ScalingDetector::new(target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);
    let steganalysis = SteganalysisDetector::for_target(target_size);

    for (name, image) in [("benign", &original), ("attack", &crafted.image)] {
        println!(
            "{name}: scaling MSE = {:8.1}   filtering SSIM = {:.3}   CSP = {}",
            scaling.score(image)?,
            filtering.score(image)?,
            steganalysis.score(image)?
        );
    }

    // 4. Assemble the full Decamouflage system. In deployment the first two
    //    thresholds come from calibration (white-box search or black-box
    //    percentiles); here we use values that any calibration run on the
    //    tiny profile produces. The CSP threshold is universal.
    let ensemble = Ensemble::new()
        .with_member(scaling, Threshold::new(200.0, Direction::AboveIsAttack))
        .with_member(filtering, Threshold::new(0.55, Direction::BelowIsAttack))
        .with_member(steganalysis, SteganalysisDetector::universal_threshold());

    let benign_verdict = ensemble.decide(&original)?;
    let attack_verdict = ensemble.decide(&crafted.image)?;
    println!("ensemble on benign: attack = {}", benign_verdict.is_attack);
    for (member, vote) in &attack_verdict.votes {
        println!("  attack vote {member}: {vote}");
    }
    println!("ensemble on attack: attack = {}", attack_verdict.is_attack);

    assert!(!benign_verdict.is_attack, "benign image must pass");
    assert!(attack_verdict.is_attack, "attack image must be caught");
    println!("ok: Decamouflage caught the attack and passed the benign image");
    Ok(())
}
