//! Full deployment lifecycle: calibrate offline, persist thresholds to a
//! file, reload them in a fresh "process", screen traffic with drift
//! monitoring.
//!
//! ```text
//! cargo run --release --example calibrate_and_persist
//! ```

use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::calibrate::calibrate_whitebox;
use decamouflage::detection::monitor::DetectionMonitor;
use decamouflage::detection::persist::ThresholdSet;
use decamouflage::detection::{
    FilteringDetector, MethodId, MetricKind, ScalingDetector, SteganalysisDetector,
};
use decamouflage::imaging::scale::ScaleAlgorithm;
use decamouflage::imaging::Image;
use decamouflage::metrics::OnlineStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::tiny();
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let target_size = profile.target_size;

    // ---- Offline: calibrate and persist --------------------------------
    let benign: Vec<Image> = (0..16u64).map(|i| generator.benign(300 + i)).collect();
    let attacks: Vec<Image> =
        (0..16u64).map(|i| generator.attack_image(300 + i)).collect::<Result<_, _>>()?;

    let scaling = ScalingDetector::new(target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);

    let scaling_cal = calibrate_whitebox(&scaling, &benign, &attacks)?;
    let filtering_cal = calibrate_whitebox(&filtering, &benign, &attacks)?;

    let mut set = ThresholdSet::new();
    set.insert(MethodId::ScalingMse, scaling_cal.threshold);
    set.insert(MethodId::FilteringSsim, filtering_cal.threshold);
    set.insert(MethodId::Csp, SteganalysisDetector::universal_threshold());

    let path = std::env::temp_dir().join("decamouflage-thresholds.txt");
    set.save(&path)?;
    println!("calibrated and saved {} thresholds to {}", set.len(), path.display());
    println!("{}", set.to_text());

    // ---- Online: reload in a fresh context ------------------------------
    let restored = ThresholdSet::load(&path)?;
    assert_eq!(restored, set);
    let threshold =
        restored.get(MethodId::ScalingMse).expect("threshold file contains the scaling detector");

    // Calibration statistics feed the drift monitor.
    let stats: OnlineStats = scaling_cal.benign_scores.iter().copied().collect();
    let mut monitor = DetectionMonitor::new(
        ScalingDetector::new(target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse),
        threshold,
        stats.mean(),
        stats.population_std_dev(),
        8,   // rolling window
        4.0, // alert at 4 sigmas
    )?;

    let mut blocked = 0;
    let mut drift_alerts = 0;
    for i in 0..24u64 {
        let request = if i % 4 == 0 { generator.attack_image(i)? } else { generator.benign(i) };
        let verdict = monitor.screen(&request)?;
        blocked += u32::from(verdict.is_attack);
        drift_alerts += u32::from(verdict.drift_alert);
    }
    let m = monitor.stats();
    println!(
        "screened {} requests: {blocked} blocked, window mean {:.1} (calibration mean {:.1}), \
         {drift_alerts} drift alerts",
        m.screened,
        m.window_mean,
        stats.mean()
    );
    assert_eq!(blocked, 6, "all six attacks should be blocked");
    assert_eq!(drift_alerts, 0, "in-distribution traffic must not alert");
    std::fs::remove_file(&path).ok();
    println!("ok: calibrate -> persist -> reload -> monitor lifecycle works");
    Ok(())
}
