//! Offline data-poisoning triage — the paper's §2.2 backdoor scenario.
//!
//! A data aggregator collects training images from third parties. An
//! attacker submits poisoned images that *look* like legitimate samples but
//! downscale to trigger-stamped images of the victim class, planting a
//! backdoor in any CNN trained on the batch. Decamouflage runs offline over
//! the submission queue and quarantines the poison before training.
//!
//! ```text
//! cargo run --release --example backdoor_poisoning
//! ```

use decamouflage::datasets::backdoor::{craft_poison_sample, Trigger};
use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::ensemble::Ensemble;
use decamouflage::detection::threshold::search_whitebox;
use decamouflage::detection::{
    Detector, Direction, FilteringDetector, MetricKind, ScalingDetector, SteganalysisDetector,
};
use decamouflage::imaging::scale::ScaleAlgorithm;
use decamouflage::imaging::Image;

const HOLDOUT: u64 = 24; // in-house clean images used for calibration
const QUEUE: u64 = 40; // third-party submissions to triage
const POISON_EVERY: u64 = 4; // every 4th submission is poisoned

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::tiny();
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let target_size = profile.target_size;
    let trigger = Trigger::default();

    let scaling = ScalingDetector::new(target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);
    let steganalysis = SteganalysisDetector::for_target(target_size);

    // --- Calibration on the hold-out set -------------------------------
    // The aggregator owns a small clean hold-out set and can craft attack
    // samples against its own pipeline (white-box calibration).
    let mut benign_scaling = Vec::new();
    let mut benign_filtering = Vec::new();
    let mut attack_scaling = Vec::new();
    let mut attack_filtering = Vec::new();
    for i in 0..HOLDOUT {
        let clean = generator.benign(1000 + i);
        let poisoned = craft_poison_sample(&generator, &trigger, 1000 + i)?.image;
        benign_scaling.push(scaling.score(&clean)?);
        benign_filtering.push(filtering.score(&clean)?);
        attack_scaling.push(scaling.score(&poisoned)?);
        attack_filtering.push(filtering.score(&poisoned)?);
    }
    let scaling_threshold =
        search_whitebox(&benign_scaling, &attack_scaling, Direction::AboveIsAttack)?.threshold;
    let filtering_threshold =
        search_whitebox(&benign_filtering, &attack_filtering, Direction::BelowIsAttack)?.threshold;
    println!(
        "calibrated: scaling MSE_T = {:.1}, filtering SSIM_T = {:.3}, CSP_T = 2 (universal)",
        scaling_threshold.value(),
        filtering_threshold.value()
    );

    let ensemble = Ensemble::new()
        .with_member(scaling, scaling_threshold)
        .with_member(filtering, filtering_threshold)
        .with_member(steganalysis, SteganalysisDetector::universal_threshold());

    // --- Triage the submission queue ------------------------------------
    let mut quarantined = 0u64;
    let mut missed_poison = 0u64;
    let mut false_alarms = 0u64;
    let mut accepted = Vec::<Image>::new();
    for i in 0..QUEUE {
        let is_poison = i % POISON_EVERY == 0;
        let submission = if is_poison {
            let crafted = craft_poison_sample(&generator, &trigger, i)?;
            // Camouflage: the perturbation is confined to the sparse set
            // of pixels the scaler samples (the curator sees scattered
            // specks at worst, not the trigger; on the tiny 64-px demo
            // profile those specks are proportionally larger than on
            // real-size images)...
            assert!(
                crafted.stats.perturbed_fraction < 0.35,
                "perturbation not sparse: {:.2}",
                crafted.stats.perturbed_fraction
            );
            // ...but a model trained on the downscaled image sees the
            // trigger clearly.
            let model_view = generator.scaler(i).apply(&crafted.image)?;
            assert!(trigger.is_present(&model_view), "payload missing");
            crafted.image
        } else {
            generator.benign(i)
        };
        let flagged = ensemble.is_attack(&submission)?;
        match (is_poison, flagged) {
            (true, true) => quarantined += 1,
            (true, false) => missed_poison += 1,
            (false, true) => false_alarms += 1,
            (false, false) => accepted.push(submission),
        }
    }

    let poison_total = QUEUE.div_ceil(POISON_EVERY);
    println!(
        "queue of {QUEUE}: {poison_total} poisoned submissions -> {quarantined} quarantined, \
         {missed_poison} missed; {false_alarms} false alarms; {} clean images accepted",
        accepted.len()
    );
    assert_eq!(missed_poison, 0, "a missed poison image would plant the backdoor");
    println!("ok: training set is clean, the backdoor was never planted");
    Ok(())
}
