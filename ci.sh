#!/usr/bin/env sh
# Local CI gate: build, full test suite, lints, formatting.
set -eu

cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== feature matrix: no-default-features / default / simd =="
# The `simd` feature is a pure throughput knob with a bit-identity contract;
# every configuration must build and pass the same suite.
cargo build --workspace --no-default-features
cargo test -q --workspace --no-default-features
cargo build --release --workspace --features simd
cargo test -q --workspace --features simd

echo "== cargo test fault_injection =="
cargo test -p decamouflage-core --test fault_injection

echo "== cargo test telemetry =="
cargo test -p decamouflage-telemetry
cargo test -p decamouflage-core --test telemetry --test threads_warning

echo "== metrics smoke: scan --metrics-out round-trips the parser =="
cargo test --test cli -- stats_emits_a_parseable_prometheus_exposition \
    scan_metrics_out_round_trips_through_the_parser

echo "== bounded-memory smoke: scan --chunk-size 1 over 64 images matches eager =="
cargo test --test cli -- scan_chunk_size_one_matches_default_chunking
cargo test -p decamouflage-core --test stream_equivalence

echo "== shard smoke: sharded + resumed + merged scan is bit-identical to unsharded =="
# CLI end to end: a 64-image corpus scanned as 1 shard and as 3 shards (one
# killed mid-scan and --resume'd) must merge to byte-identical reports; plus
# the library-level property test over shard counts x kill points x chunk sizes.
cargo test --test cli -- sharded_resumed_merged_scan_matches_the_unsharded_report \
    resume_refuses_a_checkpoint_from_a_different_corpus \
    unknown_flags_are_rejected_by_every_command
cargo test -p decamouflage-core --test shard_merge_equivalence

echo "== service smoke: serve under mixed traffic + SIGTERM drain =="
# The real binary on an ephemeral port: concurrent valid/malformed/oversized
# requests, shed/4xx/5xx accounting asserted in /metrics, then SIGTERM and a
# clean drained exit inside the drain deadline. Parser fuzz + in-process
# server e2e ride along from the serve crate's own suite.
cargo test --test service_smoke
cargo test -p decamouflage-serve --test http_parser_props --test server_e2e

echo "== codec totality: hostile-input property suites + mixed-dir smoke =="
# The decoders are the trust boundary: truncations, bit flips, spliced
# garbage and magic-prefixed noise must return typed errors, never panic.
# The CLI smoke streams a mixed BMP/PNM/PNG/JPEG directory with corrupt
# files riding along — they quarantine their own slots, nothing crashes —
# and the container-equivalence test pins BMP-vs-PNG scores bit-identical.
cargo test -p decamouflage-imaging --test codec_props
cargo test --test codec_equivalence
cargo test --test cli -- scan_streams_a_mixed_format_directory_and_quarantines_the_corrupt_file

echo "== planar equivalence: golden engine scores + interleaved<->planar round-trips =="
# The planar-layout contract: engine ScoreVectors bit-identical to the
# interleaved seed fixture (tests/golden_scores_v1.txt), exact round-trip
# properties over from_interleaved/to_interleaved and from_planes/into_planes,
# and borrow-only luma. Runs inside `cargo test --workspace` too; pinned here
# so a fixture regression fails loudly under its own heading.
cargo test --test planar_equivalence
cargo test --release --test planar_equivalence --features simd

echo "== codec bench: decode-stage latency per format -> BENCH_codecs.json =="
# Streams a per-format synthetic corpus through DirectorySource and reads
# decam_engine_stage_seconds{stage="decode"}; doubles as an encode->decode
# smoke at corpus scale (non-zero exit on any decode failure).
cargo run --release -p decamouflage-bench --bin codecs -- 48 3 -o BENCH_codecs.json

echo "== codec latency gate: png/jpeg decode budgets from BENCH_codecs.json =="
# Regression gate over the numbers just written: budgets sit ~2x above the
# recorded planar baseline (png ~780 us, jpeg ~775 us at 128x128/48 images)
# so shared-runner noise passes but an accidental O(n) regression in the
# defilter/IDCT/plane-scatter path does not.
PNG_BUDGET_US=1500 JPEG_BUDGET_US=1500 awk '
    /"png"/  { if ($0 ~ /decode_us_per_image/) { split($0, a, /[:,]/); png  = a[3] } }
    /"jpeg"/ { if ($0 ~ /decode_us_per_image/) { split($0, a, /[:,]/); jpeg = a[3] } }
    END {
        png_budget  = ENVIRON["PNG_BUDGET_US"]  + 0
        jpeg_budget = ENVIRON["JPEG_BUDGET_US"] + 0
        if (png == "" || jpeg == "") { print "codec gate: missing png/jpeg entries in BENCH_codecs.json"; exit 1 }
        printf "png  %8.1f us/image (budget %d)\n", png,  png_budget
        printf "jpeg %8.1f us/image (budget %d)\n", jpeg, jpeg_budget
        bad = 0
        if (png  + 0 > png_budget)  { print "FAIL: png decode over budget";  bad = 1 }
        if (jpeg + 0 > jpeg_budget) { print "FAIL: jpeg decode over budget"; bad = 1 }
        exit bad
    }' BENCH_codecs.json

echo "== service load: overload contract + BENCH_service.json =="
# Storm an undersized server (2 handlers + queue 2) with 2x+ its capacity of
# mixed traffic: zero requests may stall past deadline+grace, the in-flight
# gauge must return to 0 after the drain, and the latency quantiles
# (p50/p99/p999) land in BENCH_service.json. Exit code is the verdict.
cargo run --release -p decamouflage-bench --bin loadgen -- -o BENCH_service.json

echo "== perf smoke: detector gates + SSIM stage share =="
# Best-of-N latency gates from the bench harness (engine < 1500 us/image,
# batch <= 1.05x, streaming <= 1.02x, telemetry <= 1.02x) in smoke mode, then
# the stage profiler asserting SSIM consumes < 50% of scoring wall-clock.
BENCH_SMOKE=1 cargo bench -p decamouflage-bench --bench detectors --features simd
cargo run --release -p decamouflage-bench --bin stage_profile --features simd

echo "== cargo clippy =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
