#!/usr/bin/env sh
# Local CI gate: build, full test suite, lints, formatting.
set -eu

cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo test fault_injection =="
cargo test -p decamouflage-core --test fault_injection

echo "== cargo test telemetry =="
cargo test -p decamouflage-telemetry
cargo test -p decamouflage-core --test telemetry --test threads_warning

echo "== metrics smoke: scan --metrics-out round-trips the parser =="
cargo test --test cli -- stats_emits_a_parseable_prometheus_exposition \
    scan_metrics_out_round_trips_through_the_parser

echo "== bounded-memory smoke: scan --chunk-size 1 over 64 images matches eager =="
cargo test --test cli -- scan_chunk_size_one_matches_default_chunking
cargo test -p decamouflage-core --test stream_equivalence

echo "== cargo clippy =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
