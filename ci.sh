#!/usr/bin/env sh
# Local CI gate: build, full test suite, lints, formatting.
set -eu

cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo test fault_injection =="
cargo test -p decamouflage-core --test fault_injection

echo "== cargo clippy =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
