//! Fixed-width histograms, used to reproduce the paper's distribution
//! figures (Figures 8–12, 15, 16) as printable series.

use crate::MetricError;

/// One histogram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

impl HistogramBin {
    /// Midpoint of the bin.
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A fixed-width histogram over a closed range.
///
/// # Example
///
/// ```
/// use decamouflage_metrics::Histogram;
///
/// # fn main() -> Result<(), decamouflage_metrics::MetricError> {
/// let h = Histogram::from_samples(&[0.0, 0.2, 0.4, 0.9, 1.0], 5, Some((0.0, 1.0)))?;
/// assert_eq!(h.bins().len(), 5);
/// assert_eq!(h.total(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal-width bins.
    ///
    /// When `range` is `None` the sample min/max define the range (widened
    /// infinitesimally for a degenerate single-value set).
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for zero bins, an empty
    /// sample set, NaN samples or an inverted explicit range.
    pub fn from_samples(
        samples: &[f64],
        bins: usize,
        range: Option<(f64, f64)>,
    ) -> Result<Self, MetricError> {
        if bins == 0 {
            return Err(MetricError::InvalidParameter { message: "zero histogram bins".into() });
        }
        if samples.is_empty() {
            return Err(MetricError::InvalidParameter { message: "empty sample set".into() });
        }
        if samples.iter().any(|v| v.is_nan()) {
            return Err(MetricError::InvalidParameter { message: "NaN sample".into() });
        }
        let (lo, mut hi) = range.unwrap_or_else(|| {
            (
                samples.iter().copied().fold(f64::INFINITY, f64::min),
                samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        });
        if lo > hi {
            return Err(MetricError::InvalidParameter {
                message: format!("inverted range [{lo}, {hi}]"),
            });
        }
        if lo == hi {
            // Degenerate range: widen so every sample falls into bin 0.
            hi = lo + 1.0;
        }
        let mut counts = vec![0usize; bins];
        let width = (hi - lo) / bins as f64;
        for &v in samples {
            if v < lo || v > hi {
                continue; // out-of-range samples are dropped
            }
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Ok(Self { lo, hi, counts })
    }

    /// The bins in ascending order.
    pub fn bins(&self) -> Vec<HistogramBin> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| HistogramBin {
                lo: self.lo + i as f64 * width,
                hi: self.lo + (i + 1) as f64 * width,
                count,
            })
            .collect()
    }

    /// Total number of binned samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The histogram range `(lo, hi)`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Renders a fixed-width ASCII bar chart, one bin per line — how the
    /// repro harness prints the paper's distribution figures.
    pub fn render_ascii(&self, bar_width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for bin in self.bins() {
            let bar_len = bin.count * bar_width / max;
            out.push_str(&format!(
                "{:>12.4} .. {:>12.4} | {:<width$} {}\n",
                bin.lo,
                bin.hi,
                "#".repeat(bar_len),
                bin.count,
                width = bar_width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let h = Histogram::from_samples(&[0.1, 0.1, 0.5, 0.9], 2, Some((0.0, 1.0))).unwrap();
        let bins = h.bins();
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[1].count, 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        let h = Histogram::from_samples(&[1.0], 4, Some((0.0, 1.0))).unwrap();
        assert_eq!(h.bins()[3].count, 1);
    }

    #[test]
    fn out_of_range_samples_dropped() {
        let h = Histogram::from_samples(&[-5.0, 0.5, 99.0], 2, Some((0.0, 1.0))).unwrap();
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn auto_range_covers_min_max() {
        let h = Histogram::from_samples(&[2.0, 8.0, 5.0], 3, None).unwrap();
        assert_eq!(h.range(), (2.0, 8.0));
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn degenerate_single_value_set() {
        let h = Histogram::from_samples(&[4.0, 4.0], 3, None).unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.bins()[0].count, 2);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Histogram::from_samples(&[], 3, None).is_err());
        assert!(Histogram::from_samples(&[1.0], 0, None).is_err());
        assert!(Histogram::from_samples(&[f64::NAN], 3, None).is_err());
        assert!(Histogram::from_samples(&[1.0], 3, Some((5.0, 2.0))).is_err());
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::from_samples(&[0.5], 2, Some((0.0, 1.0))).unwrap();
        let bins = h.bins();
        assert_eq!(bins[0].center(), 0.25);
        assert_eq!(bins[1].center(), 0.75);
    }

    #[test]
    fn ascii_render_contains_counts() {
        let h = Histogram::from_samples(&[0.1, 0.6, 0.7], 2, Some((0.0, 1.0))).unwrap();
        let s = h.render_ascii(10);
        assert!(s.lines().count() == 2);
        assert!(s.contains('#'));
    }
}
