//! Pixel-wise error metrics: MSE (Equation 5 of the paper), MAE, maximum
//! absolute difference and PSNR (Equation 8, Appendix A).

use crate::error::check_same_shape;
use crate::MetricError;
use decamouflage_imaging::Image;

/// Sums `f(a_sample, b_sample)` over every sample in pixel-major order —
/// r0, g0, b0, r1, … — exactly the order the old interleaved buffer was
/// reduced in, so planar storage cannot perturb the floating-point result.
fn sum_pixel_major(a: &Image, b: &Image, f: impl Fn(f64, f64) -> f64) -> f64 {
    if a.channel_count() == 1 {
        return a.plane(0).iter().zip(b.plane(0)).map(|(&x, &y)| f(x, y)).sum();
    }
    let (ar, ag, ab) = (a.plane(0), a.plane(1), a.plane(2));
    let (br, bg, bb) = (b.plane(0), b.plane(1), b.plane(2));
    let mut sum = 0.0;
    for i in 0..a.plane_len() {
        sum += f(ar[i], br[i]);
        sum += f(ag[i], bg[i]);
        sum += f(ab[i], bb[i]);
    }
    sum
}

/// Mean squared error between two images of identical shape.
///
/// This is the paper's Equation 5: the average of squared sample
/// differences over all pixels and channels.
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] when the shapes differ.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::{Channels, Image};
/// use decamouflage_metrics::mse;
///
/// # fn main() -> Result<(), decamouflage_metrics::MetricError> {
/// let a = Image::filled(2, 2, Channels::Gray, 10.0);
/// let b = Image::filled(2, 2, Channels::Gray, 13.0);
/// assert_eq!(mse(&a, &b)?, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn mse(a: &Image, b: &Image) -> Result<f64, MetricError> {
    check_same_shape(a, b)?;
    let sum = sum_pixel_major(a, b, |x, y| (x - y) * (x - y));
    Ok(sum / (a.plane_len() * a.channel_count()) as f64)
}

/// Mean absolute error between two images of identical shape.
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] when the shapes differ.
pub fn mae(a: &Image, b: &Image) -> Result<f64, MetricError> {
    check_same_shape(a, b)?;
    let sum = sum_pixel_major(a, b, |x, y| (x - y).abs());
    Ok(sum / (a.plane_len() * a.channel_count()) as f64)
}

/// Largest absolute sample difference (`L∞` distance) between two images.
///
/// The attack's success constraint `‖scale(O + Δ) − T‖∞ <= ε` is checked
/// with exactly this metric.
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] when the shapes differ.
pub fn max_abs_diff(a: &Image, b: &Image) -> Result<f64, MetricError> {
    check_same_shape(a, b)?;
    // A max fold is order-independent, so plane-major traversal is exact.
    let mut peak = 0.0f64;
    for (pa, pb) in a.planes().iter().zip(b.planes()) {
        for (x, y) in pa.iter().zip(pb) {
            peak = peak.max((x - y).abs());
        }
    }
    Ok(peak)
}

/// Peak signal-to-noise ratio in decibels, with `L = 256` intensity levels
/// (Equation 8). Identical images yield `f64::INFINITY`.
///
/// The paper's Appendix A shows PSNR fails to separate benign from attack
/// images; it is provided to reproduce that negative result.
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] when the shapes differ.
pub fn psnr(a: &Image, b: &Image) -> Result<f64, MetricError> {
    let err = mse(a, b)?;
    if err == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * ((255.0f64 * 255.0) / err).log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::Channels;

    fn img(values: &[f64]) -> Image {
        Image::from_gray_plane(values.len(), 1, values.to_vec()).unwrap()
    }

    #[test]
    fn mse_of_identical_images_is_zero() {
        let a = Image::from_fn_gray(5, 5, |x, y| (x * y) as f64);
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = img(&[0.0, 0.0, 0.0, 0.0]);
        let b = img(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mse(&a, &b).unwrap(), (1.0 + 4.0 + 9.0 + 16.0) / 4.0);
    }

    #[test]
    fn mse_is_symmetric() {
        let a = img(&[1.0, 5.0, 9.0]);
        let b = img(&[2.0, 3.0, 4.0]);
        assert_eq!(mse(&a, &b).unwrap(), mse(&b, &a).unwrap());
    }

    #[test]
    fn mse_rejects_shape_mismatch() {
        let a = Image::zeros(2, 2, Channels::Gray);
        let b = Image::zeros(2, 3, Channels::Gray);
        assert!(mse(&a, &b).is_err());
    }

    #[test]
    fn mae_known_value() {
        let a = img(&[0.0, 0.0]);
        let b = img(&[3.0, -5.0]);
        assert_eq!(mae(&a, &b).unwrap(), 4.0);
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        let a = img(&[0.0, 0.0, 0.0]);
        let b = img(&[1.0, -7.0, 2.0]);
        assert_eq!(max_abs_diff(&a, &b).unwrap(), 7.0);
    }

    #[test]
    fn max_abs_diff_of_identical_is_zero() {
        let a = img(&[4.0, 2.0]);
        assert_eq!(max_abs_diff(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let a = img(&[10.0, 20.0]);
        assert_eq!(psnr(&a, &a).unwrap(), f64::INFINITY);
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 255² -> PSNR = 0 dB.
        let a = img(&[0.0]);
        let b = img(&[255.0]);
        assert!((psnr(&a, &b).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn psnr_decreases_as_error_grows() {
        let a = img(&[100.0, 100.0, 100.0]);
        let close = img(&[101.0, 100.0, 100.0]);
        let far = img(&[150.0, 60.0, 20.0]);
        assert!(psnr(&a, &close).unwrap() > psnr(&a, &far).unwrap());
    }

    #[test]
    fn metrics_cover_all_channels() {
        let a = Image::from_fn_rgb(2, 1, |_, _| [0.0, 0.0, 0.0]);
        let b = Image::from_fn_rgb(2, 1, |_, _| [3.0, 0.0, 0.0]);
        // Only one of three channels differs: MSE = 9 / 3.
        assert_eq!(mse(&a, &b).unwrap(), 3.0);
    }
}
