use std::fmt;

/// Error type for metric computations.
#[derive(Debug)]
#[non_exhaustive]
pub enum MetricError {
    /// The two images being compared do not have the same shape.
    ShapeMismatch {
        /// Left image shape `(width, height, channels)`.
        left: (usize, usize, usize),
        /// Right image shape.
        right: (usize, usize, usize),
    },
    /// A metric parameter was invalid (window larger than the image,
    /// zero-sized window, empty sample set, …).
    InvalidParameter {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { left, right } => write!(
                f,
                "image shapes differ: {}x{}x{} vs {}x{}x{}",
                left.0, left.1, left.2, right.0, right.1, right.2
            ),
            Self::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl std::error::Error for MetricError {}

pub(crate) fn check_same_shape(
    a: &decamouflage_imaging::Image,
    b: &decamouflage_imaging::Image,
) -> Result<(), MetricError> {
    if a.shape() != b.shape() {
        return Err(MetricError::ShapeMismatch { left: a.shape(), right: b.shape() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::{Channels, Image};

    #[test]
    fn display_messages() {
        let e = MetricError::ShapeMismatch { left: (1, 2, 3), right: (4, 5, 6) };
        assert!(e.to_string().contains("1x2x3"));
        let e = MetricError::InvalidParameter { message: "window 0".into() };
        assert!(e.to_string().contains("window 0"));
    }

    #[test]
    fn check_same_shape_accepts_and_rejects() {
        let a = Image::zeros(2, 2, Channels::Gray);
        let b = Image::zeros(2, 2, Channels::Gray);
        let c = Image::zeros(2, 2, Channels::Rgb);
        assert!(check_same_shape(&a, &b).is_ok());
        assert!(check_same_shape(&a, &c).is_err());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricError>();
    }
}
