//! Summary statistics used by threshold calibration: running mean/stddev,
//! percentiles and five-number summaries.

use crate::MetricError;

/// Welford online accumulator for mean and standard deviation.
///
/// # Example
///
/// ```
/// use decamouflage_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations so far.
    pub const fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`/ n`); 0 when fewer than 2 observations.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`/ (n - 1)`); 0 when fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

/// Linear-interpolation percentile of a sample set, `p` in `[0, 100]`.
///
/// Matches NumPy's default (`linear`) interpolation: the percentile of the
/// sorted samples at fractional rank `p/100 * (n - 1)`.
///
/// # Errors
///
/// Returns [`MetricError::InvalidParameter`] for an empty sample set, a
/// `p` outside `[0, 100]`, or NaN samples.
///
/// # Example
///
/// ```
/// use decamouflage_metrics::percentile;
///
/// # fn main() -> Result<(), decamouflage_metrics::MetricError> {
/// let samples = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&samples, 0.0)?, 1.0);
/// assert_eq!(percentile(&samples, 50.0)?, 2.5);
/// assert_eq!(percentile(&samples, 100.0)?, 4.0);
/// # Ok(())
/// # }
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Result<f64, MetricError> {
    if samples.is_empty() {
        return Err(MetricError::InvalidParameter { message: "empty sample set".into() });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(MetricError::InvalidParameter {
            message: format!("percentile {p} outside [0, 100]"),
        });
    }
    if samples.iter().any(|v| v.is_nan()) {
        return Err(MetricError::InvalidParameter { message: "NaN sample".into() });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Five-number-plus summary of a sample set, as printed in the paper's
/// distribution figures and black-box tables.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl SampleSummary {
    /// Summarises a sample set.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for empty or NaN-bearing
    /// input.
    pub fn from_samples(samples: &[f64]) -> Result<Self, MetricError> {
        if samples.is_empty() {
            return Err(MetricError::InvalidParameter { message: "empty sample set".into() });
        }
        let stats: OnlineStats = samples.iter().copied().collect();
        Ok(Self {
            count: samples.len(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: stats.mean(),
            std_dev: stats.population_std_dev(),
            median: percentile(samples, 50.0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn online_stats_single_value() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_std_dev(), 0.0);
    }

    #[test]
    fn online_stats_matches_direct_computation() {
        let data = [1.5, -2.0, 7.25, 0.0, 3.5, 3.5];
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert!(
            (s.sample_variance() - var * data.len() as f64 / (data.len() - 1) as f64).abs() < 1e-12
        );
    }

    #[test]
    fn percentile_edges_and_interpolation() {
        let data = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 30.0);
        assert_eq!(percentile(&data, 50.0).unwrap(), 20.0);
        assert_eq!(percentile(&data, 25.0).unwrap(), 15.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let data = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&data, 50.0).unwrap(), 3.0);
    }

    #[test]
    fn percentile_rejects_bad_input() {
        assert!(percentile(&[], 50.0).is_err());
        assert!(percentile(&[1.0], -0.1).is_err());
        assert!(percentile(&[1.0], 100.1).is_err());
        assert!(percentile(&[f64::NAN], 50.0).is_err());
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 13.0).unwrap(), 7.0);
    }

    #[test]
    fn summary_known_values() {
        let s = SampleSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_empty() {
        assert!(SampleSummary::from_samples(&[]).is_err());
    }
}
