//! Colour histograms and histogram-intersection similarity.
//!
//! Xiao et al. proposed colour-histogram comparison as a mitigation for the
//! image-scaling attack; the Decamouflage paper (§3.1) reports — and this
//! reproduction confirms with the `ablate-colorhist` experiment — that it
//! does **not** separate benign from attack images. It is implemented here
//! to regenerate that negative result.

use crate::error::check_same_shape;
use crate::MetricError;
use decamouflage_imaging::Image;

/// A per-channel, fixed-bin colour histogram normalised to sum 1 per
/// channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorHistogram {
    bins: usize,
    /// `channels x bins` normalised frequencies.
    data: Vec<Vec<f64>>,
}

impl ColorHistogram {
    /// Number of bins per channel.
    pub const fn bins(&self) -> usize {
        self.bins
    }

    /// Number of channels (1 for grayscale, 3 for RGB).
    pub fn channel_count(&self) -> usize {
        self.data.len()
    }

    /// Normalised frequencies of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: usize) -> &[f64] {
        &self.data[channel]
    }
}

/// Computes the per-channel colour histogram of an image with `bins` bins
/// over the `[0, 255]` sample range (samples are clamped into range first).
///
/// # Errors
///
/// Returns [`MetricError::InvalidParameter`] when `bins` is zero.
pub fn color_histogram(img: &Image, bins: usize) -> Result<ColorHistogram, MetricError> {
    if bins == 0 {
        return Err(MetricError::InvalidParameter { message: "zero histogram bins".into() });
    }
    let channels = img.channel_count();
    let mut data = vec![vec![0.0f64; bins]; channels];
    let pixel_count = (img.width() * img.height()) as f64;
    for y in 0..img.height() {
        for x in 0..img.width() {
            for (c, hist) in data.iter_mut().enumerate() {
                let v = img.get(x, y, c).clamp(0.0, 255.0);
                let idx = ((v / 256.0) * bins as f64) as usize;
                hist[idx.min(bins - 1)] += 1.0;
            }
        }
    }
    for hist in data.iter_mut() {
        for v in hist.iter_mut() {
            *v /= pixel_count;
        }
    }
    Ok(ColorHistogram { bins, data })
}

/// Histogram-intersection similarity between two images, in `[0, 1]`
/// (1 = identical colour distributions). Computed per channel and averaged.
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] for different channel layouts and
/// [`MetricError::InvalidParameter`] for zero bins.
pub fn histogram_intersection(a: &Image, b: &Image, bins: usize) -> Result<f64, MetricError> {
    check_same_shape(a, b)?;
    let ha = color_histogram(a, bins)?;
    let hb = color_histogram(b, bins)?;
    let mut total = 0.0;
    for c in 0..ha.channel_count() {
        let inter: f64 = ha.channel(c).iter().zip(hb.channel(c)).map(|(x, y)| x.min(*y)).sum();
        total += inter;
    }
    Ok(total / ha.channel_count() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::Channels;

    #[test]
    fn histogram_sums_to_one_per_channel() {
        let img = Image::from_fn_rgb(8, 8, |x, y| {
            [(x * 32) as f64, (y * 32) as f64, ((x + y) * 16) as f64]
        });
        let h = color_histogram(&img, 16).unwrap();
        for c in 0..3 {
            let sum: f64 = h.channel(c).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert_eq!(h.bins(), 16);
        assert_eq!(h.channel_count(), 3);
    }

    #[test]
    fn constant_image_fills_one_bin() {
        let img = Image::filled(4, 4, Channels::Gray, 128.0);
        let h = color_histogram(&img, 8).unwrap();
        // 128 / 256 * 8 = bin 4.
        assert_eq!(h.channel(0)[4], 1.0);
    }

    #[test]
    fn out_of_range_samples_are_clamped() {
        let img = Image::from_gray_plane(2, 1, vec![-10.0, 300.0]).unwrap();
        let h = color_histogram(&img, 4).unwrap();
        assert_eq!(h.channel(0)[0], 0.5);
        assert_eq!(h.channel(0)[3], 0.5);
    }

    #[test]
    fn zero_bins_rejected() {
        let img = Image::zeros(2, 2, Channels::Gray);
        assert!(color_histogram(&img, 0).is_err());
        assert!(histogram_intersection(&img, &img, 0).is_err());
    }

    #[test]
    fn intersection_of_identical_images_is_one() {
        let img = Image::from_fn_gray(8, 8, |x, y| ((x * y * 7) % 256) as f64);
        let s = histogram_intersection(&img, &img, 32).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_of_disjoint_distributions_is_zero() {
        let dark = Image::filled(4, 4, Channels::Gray, 10.0);
        let bright = Image::filled(4, 4, Channels::Gray, 250.0);
        let s = histogram_intersection(&dark, &bright, 8).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = Image::from_fn_gray(8, 8, |x, _| (x * 30 % 256) as f64);
        let b = Image::from_fn_gray(8, 8, |_, y| (y * 25 % 256) as f64);
        let ab = histogram_intersection(&a, &b, 16).unwrap();
        let ba = histogram_intersection(&b, &a, 16).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn permuted_image_has_identical_histogram() {
        // The key weakness of the colour-histogram metric: rearranging
        // pixels (which an attack effectively does) leaves it unchanged.
        let a = Image::from_fn_gray(4, 4, |x, y| (y * 4 + x) as f64 * 16.0);
        let b = Image::from_fn_gray(4, 4, |x, y| (15 - (y * 4 + x)) as f64 * 16.0);
        let s = histogram_intersection(&a, &b, 16).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Image::zeros(2, 2, Channels::Gray);
        let b = Image::zeros(2, 2, Channels::Rgb);
        assert!(histogram_intersection(&a, &b, 8).is_err());
    }
}
