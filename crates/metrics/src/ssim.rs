//! Structural similarity (SSIM) index — Wang et al. 2004, the paper's
//! Equation 6.

use crate::error::check_same_shape;
use crate::MetricError;
use decamouflage_imaging::filter::{
    convolve_planes_with_scratch, gaussian_kernel, ConvScratch, Kernel1D, PlaneSource,
};
use decamouflage_imaging::Image;

/// Per-thread buffers for the fused SSIM sweeps: convolution scratch plus
/// the five blurred-plane outputs (µa, µb, σa-side, σb-side, σab-side).
struct SsimScratch {
    conv: ConvScratch,
    planes: [Vec<f64>; 5],
}

thread_local! {
    /// Shared buffers for [`ssim_map`] and [`SsimReference`] scoring.
    static SSIM_SCRATCH: std::cell::RefCell<SsimScratch> =
        std::cell::RefCell::new(SsimScratch { conv: ConvScratch::new(), planes: Default::default() });
}

/// The per-pixel SSIM formula over the five flat blurred planes, invoking
/// `emit(pixel_value)` in flat pixel order — the same y-major / x-major /
/// channel-inner traversal (flat index order) as the staged map + mean, so
/// every accumulation is bit-identical to the historical implementation.
///
/// Single-channel callers should prefer [`ssim_formula_flat`], which runs
/// the same arithmetic through the vectorizable
/// [`decamouflage_imaging::simd::ssim_combine`] primitive.
#[allow(clippy::too_many_arguments)]
fn ssim_formula(
    mu_a: &[f64],
    mu_b: &[f64],
    a_sq: &[f64],
    b_sq: &[f64],
    ab: &[f64],
    ch: usize,
    c1: f64,
    c2: f64,
    mut emit: impl FnMut(f64),
) {
    let channels = ch as f64;
    for ((((ma_px, mb_px), sa_px), sb_px), sab_px) in mu_a
        .chunks_exact(ch)
        .zip(mu_b.chunks_exact(ch))
        .zip(a_sq.chunks_exact(ch))
        .zip(b_sq.chunks_exact(ch))
        .zip(ab.chunks_exact(ch))
    {
        let mut acc = 0.0;
        for c in 0..ch {
            let ma = ma_px[c];
            let mb = mb_px[c];
            let va = sa_px[c] - ma * ma;
            let vb = sb_px[c] - mb * mb;
            let cov = sab_px[c] - ma * mb;
            let numerator = (2.0 * ma * mb + c1) * (2.0 * cov + c2);
            let denominator = (ma * ma + mb * mb + c1) * (va + vb + c2);
            acc += numerator / denominator;
        }
        emit(acc / channels);
    }
}

/// Single-channel [`ssim_formula`] writing one value per pixel into `dst`
/// (resized to fit) via the flat [`ssim_combine`] pass. Bit-identical to
/// the closure form: the primitive replays the per-channel loop's exact
/// operation sequence, including the accumulator seed and channel average.
///
/// [`ssim_combine`]: decamouflage_imaging::simd::ssim_combine
#[allow(clippy::too_many_arguments)]
fn ssim_formula_flat(
    dst: &mut Vec<f64>,
    mu_a: &[f64],
    mu_b: &[f64],
    a_sq: &[f64],
    b_sq: &[f64],
    ab: &[f64],
    c1: f64,
    c2: f64,
) {
    dst.clear();
    dst.resize(mu_a.len(), 0.0);
    decamouflage_imaging::simd::ssim_combine(dst, mu_a, mu_b, a_sq, b_sq, ab, c1, c2);
}

/// SSIM parameters. Defaults follow the reference implementation used by
/// the paper's artefacts: an 11x11 Gaussian window with `sigma = 1.5`,
/// stabilisers `c1 = (0.01 L)²`, `c2 = (0.03 L)²` and dynamic range
/// `L = 255`.
#[derive(Debug, Clone, PartialEq)]
pub struct SsimConfig {
    /// Gaussian window standard deviation.
    pub sigma: f64,
    /// Gaussian window radius in pixels (window side = `2 radius + 1`).
    pub radius: usize,
    /// Luminance stabiliser weight `K1` in `c1 = (K1 L)²`.
    pub k1: f64,
    /// Contrast stabiliser weight `K2` in `c2 = (K2 L)²`.
    pub k2: f64,
    /// Dynamic range of the samples (255 for 8-bit imagery).
    pub dynamic_range: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        Self { sigma: 1.5, radius: 5, k1: 0.01, k2: 0.03, dynamic_range: 255.0 }
    }
}

impl SsimConfig {
    fn c1(&self) -> f64 {
        let v = self.k1 * self.dynamic_range;
        v * v
    }

    fn c2(&self) -> f64 {
        let v = self.k2 * self.dynamic_range;
        v * v
    }

    fn validate(&self) -> Result<(), MetricError> {
        if !(self.sigma > 0.0 && self.sigma.is_finite()) {
            return Err(MetricError::InvalidParameter {
                message: format!("ssim sigma must be positive, got {}", self.sigma),
            });
        }
        if self.dynamic_range <= 0.0 {
            return Err(MetricError::InvalidParameter {
                message: format!("dynamic range must be positive, got {}", self.dynamic_range),
            });
        }
        Ok(())
    }
}

/// Mean SSIM index between two images of identical shape, in `[-1, 1]`
/// (1 = identical). Multi-channel images average the per-channel scores.
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] for shape disagreement and
/// [`MetricError::InvalidParameter`] for unusable configuration values.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::Image;
/// use decamouflage_metrics::{ssim, SsimConfig};
///
/// # fn main() -> Result<(), decamouflage_metrics::MetricError> {
/// let a = Image::from_fn_gray(32, 32, |x, y| ((x + y) * 4) as f64);
/// let noisy = a.map(|v| (v + 25.0).min(255.0));
/// let score = ssim(&a, &noisy, &SsimConfig::default())?;
/// assert!(score < 1.0 && score > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn ssim(a: &Image, b: &Image, config: &SsimConfig) -> Result<f64, MetricError> {
    let map = ssim_map(a, b, config)?;
    Ok(map.mean_sample())
}

/// Per-pixel SSIM map (averaged over channels for RGB inputs).
///
/// # Errors
///
/// Same conditions as [`ssim`].
pub fn ssim_map(a: &Image, b: &Image, config: &SsimConfig) -> Result<Image, MetricError> {
    check_same_shape(a, b)?;
    config.validate()?;
    let kernel = gaussian_kernel(config.sigma, Some(config.radius))
        .map_err(|e| MetricError::InvalidParameter { message: e.to_string() })?;

    let mut map = Image::zeros(a.width(), a.height(), decamouflage_imaging::Channels::Gray);
    SSIM_SCRATCH.with(|scratch| {
        let SsimScratch { conv, planes } = &mut *scratch.borrow_mut();
        let [mu_a, mu_b, a_sq, b_sq, ab] = planes;
        convolve_planes_with_scratch(
            &[
                PlaneSource::Image(a),
                PlaneSource::Image(b),
                PlaneSource::Product(a, a),
                PlaneSource::Product(b, b),
                PlaneSource::Product(a, b),
            ],
            &kernel,
            &kernel,
            conv,
            &mut [mu_a, mu_b, a_sq, b_sq, ab],
        )
        .expect("separable convolution cannot fail");
        if a.channel_count() == 1 {
            decamouflage_imaging::simd::ssim_combine(
                map.as_mut_slice(),
                mu_a,
                mu_b,
                a_sq,
                b_sq,
                ab,
                config.c1(),
                config.c2(),
            );
        } else {
            let out = map.as_mut_slice().iter_mut();
            let mut out = out;
            ssim_formula(
                mu_a,
                mu_b,
                a_sq,
                b_sq,
                ab,
                a.channel_count(),
                config.c1(),
                config.c2(),
                |v| {
                    *out.next().expect("map has one slot per pixel") = v;
                },
            );
        }
    });
    Ok(map)
}

/// Precomputed reference-side SSIM statistics.
///
/// Comparing one reference image against several candidates (the detection
/// engine scores the same input against its round-tripped *and* its
/// rank-filtered variant) recomputes `blur(a)` and `blur(a²)` on every
/// call of [`ssim`]. `SsimReference` computes them once; each
/// [`SsimReference::score_against`] then needs only the three
/// candidate-side blurs.
///
/// Scores are **bit-identical** to [`ssim`]: the blurs run through
/// [`decamouflage_imaging::filter::convolve_separable_with_scratch`]
/// (exact-equality contract with
/// [`decamouflage_imaging::filter::convolve_separable`]) and the
/// per-pixel SSIM formula and final mean
/// accumulate in the same order as [`ssim_map`] + `mean_sample`.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::Image;
/// use decamouflage_metrics::{ssim, SsimConfig, SsimReference};
///
/// # fn main() -> Result<(), decamouflage_metrics::MetricError> {
/// let a = Image::from_fn_gray(24, 24, |x, y| ((x + y) * 5) as f64);
/// let b = a.map(|v| (v + 10.0).min(255.0));
/// let reference = SsimReference::new(&a, &SsimConfig::default())?;
/// assert_eq!(reference.score_against(&b)?, ssim(&a, &b, &SsimConfig::default())?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SsimReference {
    a: Image,
    /// Blurred reference plane µa, flat row-major interleaved samples.
    mu_a: Vec<f64>,
    /// Blurred squared reference plane (σa side), same layout.
    a_sq: Vec<f64>,
    kernel: Kernel1D,
    config: SsimConfig,
}

impl SsimReference {
    /// Precomputes the reference-side window statistics of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for unusable configuration
    /// values.
    pub fn new(a: &Image, config: &SsimConfig) -> Result<Self, MetricError> {
        config.validate()?;
        let kernel = gaussian_kernel(config.sigma, Some(config.radius))
            .map_err(|e| MetricError::InvalidParameter { message: e.to_string() })?;
        let mut mu_a = Vec::new();
        let mut a_sq = Vec::new();
        SSIM_SCRATCH.with(|scratch| {
            let conv = &mut scratch.borrow_mut().conv;
            convolve_planes_with_scratch(
                &[PlaneSource::Image(a), PlaneSource::Product(a, a)],
                &kernel,
                &kernel,
                conv,
                &mut [&mut mu_a, &mut a_sq],
            )
            .expect("separable convolution cannot fail");
        });
        Ok(Self { a: a.clone(), mu_a, a_sq, kernel, config: config.clone() })
    }

    /// The reference image.
    pub fn image(&self) -> &Image {
        &self.a
    }

    /// The configuration the statistics were built with.
    pub fn config(&self) -> &SsimConfig {
        &self.config
    }

    /// Mean SSIM of `b` against the reference; equals
    /// `ssim(reference, b, config)` bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::ShapeMismatch`] when `b` has a different
    /// shape than the reference.
    pub fn score_against(&self, b: &Image) -> Result<f64, MetricError> {
        check_same_shape(&self.a, b)?;
        // Same traversal as `ssim_map` followed by `mean_sample`: per-pixel
        // map values accumulate in y-major (flat) order, so the final sum
        // matches the staged computation bit for bit.
        let mut total = 0.0;
        SSIM_SCRATCH.with(|scratch| {
            let SsimScratch { conv, planes } = &mut *scratch.borrow_mut();
            let [mu_b, b_sq, ab, combined, _] = planes;
            convolve_planes_with_scratch(
                &[
                    PlaneSource::Image(b),
                    PlaneSource::Product(b, b),
                    PlaneSource::Product(&self.a, b),
                ],
                &self.kernel,
                &self.kernel,
                conv,
                &mut [mu_b, b_sq, ab],
            )
            .expect("separable convolution cannot fail");
            if self.a.channel_count() == 1 {
                // Materialise the per-pixel values flat, then reduce in the
                // same ascending order the closure form added them.
                ssim_formula_flat(
                    combined,
                    &self.mu_a,
                    mu_b,
                    &self.a_sq,
                    b_sq,
                    ab,
                    self.config.c1(),
                    self.config.c2(),
                );
                for &v in combined.iter() {
                    total += v;
                }
            } else {
                ssim_formula(
                    &self.mu_a,
                    mu_b,
                    &self.a_sq,
                    b_sq,
                    ab,
                    self.a.channel_count(),
                    self.config.c1(),
                    self.config.c2(),
                    |v| total += v,
                );
            }
        });
        Ok(total / (self.a.width() * self.a.height()) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::Channels;

    fn texture(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            128.0 + 80.0 * ((x as f64) * 0.3).sin() + 40.0 * ((y as f64) * 0.2).cos()
        })
    }

    #[test]
    fn identical_images_score_one() {
        let a = texture(24);
        let s = ssim(&a, &a, &SsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "SSIM of identical images = {s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = texture(24);
        let b = a.map(|v| 255.0 - v);
        let cfg = SsimConfig::default();
        let ab = ssim(&a, &b, &cfg).unwrap();
        let ba = ssim(&b, &a, &cfg).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn ssim_bounded() {
        let a = texture(24);
        for other in [
            a.map(|v| 255.0 - v),
            Image::filled(24, 24, Channels::Gray, 0.0),
            Image::from_fn_gray(24, 24, |x, y| ((x * 7919 + y * 104729) % 256) as f64),
        ] {
            let s = ssim(&a, &other, &SsimConfig::default()).unwrap();
            assert!((-1.0..=1.0).contains(&s), "SSIM out of range: {s}");
        }
    }

    #[test]
    fn inverted_image_scores_much_lower_than_noisy_copy() {
        let a = texture(32);
        let cfg = SsimConfig::default();
        let slightly_noisy = a.map(|v| (v + 6.0).min(255.0));
        let inverted = a.map(|v| 255.0 - v);
        let near = ssim(&a, &slightly_noisy, &cfg).unwrap();
        let far = ssim(&a, &inverted, &cfg).unwrap();
        assert!(near > 0.9, "near = {near}");
        assert!(far < near - 0.5, "near = {near}, far = {far}");
    }

    #[test]
    fn constant_shift_penalised_only_by_luminance_term() {
        let a = Image::filled(16, 16, Channels::Gray, 100.0);
        let b = Image::filled(16, 16, Channels::Gray, 130.0);
        let s = ssim(&a, &b, &SsimConfig::default()).unwrap();
        // Structure and contrast identical; only luminance differs.
        let c1 = (0.01f64 * 255.0).powi(2);
        let expected = (2.0 * 100.0 * 130.0 + c1) / (100.0f64.powi(2) + 130.0f64.powi(2) + c1);
        assert!((s - expected).abs() < 1e-9, "s = {s}, expected = {expected}");
    }

    #[test]
    fn map_has_image_shape_and_valid_entries() {
        let a = texture(20);
        let b = a.map(|v| (v * 0.9).min(255.0));
        let map = ssim_map(&a, &b, &SsimConfig::default()).unwrap();
        assert_eq!(map.width(), 20);
        assert_eq!(map.height(), 20);
        for &v in map.as_slice() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn rgb_images_average_channels() {
        let a = Image::from_fn_rgb(16, 16, |x, y| {
            [(x * 16) as f64, (y * 16) as f64, ((x + y) * 8) as f64]
        });
        let s = ssim(&a, &a, &SsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Image::zeros(8, 8, Channels::Gray);
        let b = Image::zeros(8, 9, Channels::Gray);
        assert!(ssim(&a, &b, &SsimConfig::default()).is_err());
    }

    #[test]
    fn rejects_bad_config() {
        let a = Image::zeros(8, 8, Channels::Gray);
        let mut cfg = SsimConfig::default();
        cfg.sigma = 0.0;
        assert!(ssim(&a, &a, &cfg).is_err());
        let mut cfg = SsimConfig::default();
        cfg.dynamic_range = -1.0;
        assert!(ssim(&a, &a, &cfg).is_err());
    }

    #[test]
    fn reference_scoring_is_bit_identical_to_ssim() {
        let gray = texture(24);
        let rgb = Image::from_fn_rgb(17, 13, |x, y| {
            [(x * 16) as f64, (y * 16) as f64, ((x + y) * 8) as f64]
        });
        let mut small_window = SsimConfig::default();
        small_window.sigma = 0.8;
        small_window.radius = 2;
        for cfg in [SsimConfig::default(), small_window] {
            for a in [&gray, &rgb] {
                let reference = SsimReference::new(a, &cfg).unwrap();
                let candidates =
                    [a.clone(), a.map(|v| (v + 11.0).min(255.0)), a.map(|v| 255.0 - v)];
                for b in &candidates {
                    assert_eq!(
                        reference.score_against(b).unwrap(),
                        ssim(a, b, &cfg).unwrap(),
                        "{}ch {}x{}",
                        a.channel_count(),
                        a.width(),
                        a.height()
                    );
                }
            }
        }
    }

    #[test]
    fn reference_rejects_shape_mismatch_and_bad_config() {
        let a = Image::zeros(8, 8, Channels::Gray);
        let b = Image::zeros(8, 9, Channels::Gray);
        let reference = SsimReference::new(&a, &SsimConfig::default()).unwrap();
        assert!(reference.score_against(&b).is_err());
        assert_eq!(reference.image().width(), 8);
        assert_eq!(reference.config().radius, 5);
        let mut cfg = SsimConfig::default();
        cfg.sigma = -1.0;
        assert!(SsimReference::new(&a, &cfg).is_err());
    }

    #[test]
    fn default_config_matches_reference_constants() {
        let cfg = SsimConfig::default();
        assert_eq!(cfg.sigma, 1.5);
        assert_eq!(cfg.radius, 5);
        assert!((cfg.c1() - 6.5025).abs() < 1e-9);
        assert!((cfg.c2() - 58.5225).abs() < 1e-9);
    }
}
