//! Structural similarity (SSIM) index — Wang et al. 2004, the paper's
//! Equation 6.

use crate::error::check_same_shape;
use crate::MetricError;
use decamouflage_imaging::filter::{
    convolve_planes_with_scratch, gaussian_kernel, ConvScratch, Kernel1D, PlaneSource,
};
use decamouflage_imaging::Image;

/// Per-thread buffers for the fused SSIM sweeps: convolution scratch plus
/// the blurred-plane outputs — one buffer per (statistic, channel) pair,
/// grown on demand (five statistics: µa, µb, σa-side, σb-side, σab-side).
struct SsimScratch {
    conv: ConvScratch,
    planes: Vec<Vec<f64>>,
}

thread_local! {
    /// Shared buffers for [`ssim_map`] and [`SsimReference`] scoring.
    static SSIM_SCRATCH: std::cell::RefCell<SsimScratch> =
        std::cell::RefCell::new(SsimScratch { conv: ConvScratch::new(), planes: Vec::new() });
}

/// The per-pixel SSIM formula over per-channel blurred planes, invoking
/// `emit(pixel_value)` in flat pixel order. Each statistic is a slice of
/// `ch` plane slices; the inner loop walks channels in ascending order per
/// pixel — the same per-sample, channel-inner accumulation order as the
/// historical interleaved implementation, so every sum is bit-identical.
///
/// Single-channel callers should prefer [`ssim_formula_flat`], which runs
/// the same arithmetic through the vectorizable
/// [`decamouflage_imaging::simd::ssim_combine`] primitive.
#[allow(clippy::too_many_arguments)]
fn ssim_formula(
    mu_a: &[&[f64]],
    mu_b: &[&[f64]],
    a_sq: &[&[f64]],
    b_sq: &[&[f64]],
    ab: &[&[f64]],
    c1: f64,
    c2: f64,
    mut emit: impl FnMut(f64),
) {
    let ch = mu_a.len();
    let channels = ch as f64;
    for i in 0..mu_a[0].len() {
        let mut acc = 0.0;
        for c in 0..ch {
            let ma = mu_a[c][i];
            let mb = mu_b[c][i];
            let va = a_sq[c][i] - ma * ma;
            let vb = b_sq[c][i] - mb * mb;
            let cov = ab[c][i] - ma * mb;
            let numerator = (2.0 * ma * mb + c1) * (2.0 * cov + c2);
            let denominator = (ma * ma + mb * mb + c1) * (va + vb + c2);
            acc += numerator / denominator;
        }
        emit(acc / channels);
    }
}

/// Single-channel [`ssim_formula`] writing one value per pixel into `dst`
/// (resized to fit) via the flat [`ssim_combine`] pass. Bit-identical to
/// the closure form: the primitive replays the per-channel loop's exact
/// operation sequence, including the accumulator seed and channel average.
///
/// [`ssim_combine`]: decamouflage_imaging::simd::ssim_combine
#[allow(clippy::too_many_arguments)]
fn ssim_formula_flat(
    dst: &mut Vec<f64>,
    mu_a: &[f64],
    mu_b: &[f64],
    a_sq: &[f64],
    b_sq: &[f64],
    ab: &[f64],
    c1: f64,
    c2: f64,
) {
    dst.clear();
    dst.resize(mu_a.len(), 0.0);
    decamouflage_imaging::simd::ssim_combine(dst, mu_a, mu_b, a_sq, b_sq, ab, c1, c2);
}

/// SSIM parameters. Defaults follow the reference implementation used by
/// the paper's artefacts: an 11x11 Gaussian window with `sigma = 1.5`,
/// stabilisers `c1 = (0.01 L)²`, `c2 = (0.03 L)²` and dynamic range
/// `L = 255`.
#[derive(Debug, Clone, PartialEq)]
pub struct SsimConfig {
    /// Gaussian window standard deviation.
    pub sigma: f64,
    /// Gaussian window radius in pixels (window side = `2 radius + 1`).
    pub radius: usize,
    /// Luminance stabiliser weight `K1` in `c1 = (K1 L)²`.
    pub k1: f64,
    /// Contrast stabiliser weight `K2` in `c2 = (K2 L)²`.
    pub k2: f64,
    /// Dynamic range of the samples (255 for 8-bit imagery).
    pub dynamic_range: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        Self { sigma: 1.5, radius: 5, k1: 0.01, k2: 0.03, dynamic_range: 255.0 }
    }
}

impl SsimConfig {
    fn c1(&self) -> f64 {
        let v = self.k1 * self.dynamic_range;
        v * v
    }

    fn c2(&self) -> f64 {
        let v = self.k2 * self.dynamic_range;
        v * v
    }

    fn validate(&self) -> Result<(), MetricError> {
        if !(self.sigma > 0.0 && self.sigma.is_finite()) {
            return Err(MetricError::InvalidParameter {
                message: format!("ssim sigma must be positive, got {}", self.sigma),
            });
        }
        if self.dynamic_range <= 0.0 {
            return Err(MetricError::InvalidParameter {
                message: format!("dynamic range must be positive, got {}", self.dynamic_range),
            });
        }
        Ok(())
    }
}

/// Mean SSIM index between two images of identical shape, in `[-1, 1]`
/// (1 = identical). Multi-channel images average the per-channel scores.
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] for shape disagreement and
/// [`MetricError::InvalidParameter`] for unusable configuration values.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::Image;
/// use decamouflage_metrics::{ssim, SsimConfig};
///
/// # fn main() -> Result<(), decamouflage_metrics::MetricError> {
/// let a = Image::from_fn_gray(32, 32, |x, y| ((x + y) * 4) as f64);
/// let noisy = a.map(|v| (v + 25.0).min(255.0));
/// let score = ssim(&a, &noisy, &SsimConfig::default())?;
/// assert!(score < 1.0 && score > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn ssim(a: &Image, b: &Image, config: &SsimConfig) -> Result<f64, MetricError> {
    let map = ssim_map(a, b, config)?;
    Ok(map.mean_sample())
}

/// Per-pixel SSIM map (averaged over channels for RGB inputs).
///
/// # Errors
///
/// Same conditions as [`ssim`].
pub fn ssim_map(a: &Image, b: &Image, config: &SsimConfig) -> Result<Image, MetricError> {
    check_same_shape(a, b)?;
    config.validate()?;
    let kernel = gaussian_kernel(config.sigma, Some(config.radius))
        .map_err(|e| MetricError::InvalidParameter { message: e.to_string() })?;

    let ch = a.channel_count();
    let mut map = Image::zeros(a.width(), a.height(), decamouflage_imaging::Channels::Gray);
    SSIM_SCRATCH.with(|scratch| {
        let SsimScratch { conv, planes } = &mut *scratch.borrow_mut();
        if planes.len() < 5 * ch {
            planes.resize_with(5 * ch, Vec::new);
        }
        // Sources in statistic-major order: outs[s * ch + c] holds statistic
        // `s` of channel `c`.
        let mut sources = Vec::with_capacity(5 * ch);
        for c in 0..ch {
            sources.push(PlaneSource::Plane(a.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Plane(b.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Product(a.plane(c), a.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Product(b.plane(c), b.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Product(a.plane(c), b.plane(c)));
        }
        {
            let mut outs: Vec<&mut Vec<f64>> = planes.iter_mut().take(5 * ch).collect();
            convolve_planes_with_scratch(
                &sources,
                a.width(),
                a.height(),
                &kernel,
                &kernel,
                conv,
                &mut outs,
            )
            .expect("separable convolution cannot fail");
        }
        if ch == 1 {
            decamouflage_imaging::simd::ssim_combine(
                map.plane_mut(0),
                &planes[0],
                &planes[1],
                &planes[2],
                &planes[3],
                &planes[4],
                config.c1(),
                config.c2(),
            );
        } else {
            let stat =
                |s: usize| (0..ch).map(|c| planes[s * ch + c].as_slice()).collect::<Vec<_>>();
            let (mu_a, mu_b, a_sq, b_sq, ab) = (stat(0), stat(1), stat(2), stat(3), stat(4));
            let mut out = map.plane_mut(0).iter_mut();
            ssim_formula(&mu_a, &mu_b, &a_sq, &b_sq, &ab, config.c1(), config.c2(), |v| {
                *out.next().expect("map has one slot per pixel") = v;
            });
        }
    });
    Ok(map)
}

/// Precomputed reference-side SSIM statistics.
///
/// Comparing one reference image against several candidates (the detection
/// engine scores the same input against its round-tripped *and* its
/// rank-filtered variant) recomputes `blur(a)` and `blur(a²)` on every
/// call of [`ssim`]. `SsimReference` computes them once; each
/// [`SsimReference::score_against`] then needs only the three
/// candidate-side blurs.
///
/// Scores are **bit-identical** to [`ssim`]: the blurs run through
/// [`decamouflage_imaging::filter::convolve_separable_with_scratch`]
/// (exact-equality contract with
/// [`decamouflage_imaging::filter::convolve_separable`]) and the
/// per-pixel SSIM formula and final mean
/// accumulate in the same order as [`ssim_map`] + `mean_sample`.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::Image;
/// use decamouflage_metrics::{ssim, SsimConfig, SsimReference};
///
/// # fn main() -> Result<(), decamouflage_metrics::MetricError> {
/// let a = Image::from_fn_gray(24, 24, |x, y| ((x + y) * 5) as f64);
/// let b = a.map(|v| (v + 10.0).min(255.0));
/// let reference = SsimReference::new(&a, &SsimConfig::default())?;
/// assert_eq!(reference.score_against(&b)?, ssim(&a, &b, &SsimConfig::default())?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SsimReference {
    a: Image,
    /// Blurred reference planes µa, one flat row-major plane per channel.
    mu_a: Vec<Vec<f64>>,
    /// Blurred squared reference planes (σa side), same layout.
    a_sq: Vec<Vec<f64>>,
    kernel: Kernel1D,
    config: SsimConfig,
}

impl SsimReference {
    /// Precomputes the reference-side window statistics of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for unusable configuration
    /// values.
    pub fn new(a: &Image, config: &SsimConfig) -> Result<Self, MetricError> {
        config.validate()?;
        let kernel = gaussian_kernel(config.sigma, Some(config.radius))
            .map_err(|e| MetricError::InvalidParameter { message: e.to_string() })?;
        let ch = a.channel_count();
        let mut mu_a: Vec<Vec<f64>> = vec![Vec::new(); ch];
        let mut a_sq: Vec<Vec<f64>> = vec![Vec::new(); ch];
        SSIM_SCRATCH.with(|scratch| {
            let conv = &mut scratch.borrow_mut().conv;
            let mut sources = Vec::with_capacity(2 * ch);
            for c in 0..ch {
                sources.push(PlaneSource::Plane(a.plane(c)));
            }
            for c in 0..ch {
                sources.push(PlaneSource::Product(a.plane(c), a.plane(c)));
            }
            let mut outs: Vec<&mut Vec<f64>> = mu_a.iter_mut().chain(a_sq.iter_mut()).collect();
            convolve_planes_with_scratch(
                &sources,
                a.width(),
                a.height(),
                &kernel,
                &kernel,
                conv,
                &mut outs,
            )
            .expect("separable convolution cannot fail");
        });
        Ok(Self { a: a.clone(), mu_a, a_sq, kernel, config: config.clone() })
    }

    /// The reference image.
    pub fn image(&self) -> &Image {
        &self.a
    }

    /// The configuration the statistics were built with.
    pub fn config(&self) -> &SsimConfig {
        &self.config
    }

    /// Mean SSIM of `b` against the reference; equals
    /// `ssim(reference, b, config)` bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::ShapeMismatch`] when `b` has a different
    /// shape than the reference.
    pub fn score_against(&self, b: &Image) -> Result<f64, MetricError> {
        check_same_shape(&self.a, b)?;
        // Same traversal as `ssim_map` followed by `mean_sample`: per-pixel
        // map values accumulate in y-major (flat) order, so the final sum
        // matches the staged computation bit for bit.
        let ch = self.a.channel_count();
        let mut total = 0.0;
        SSIM_SCRATCH.with(|scratch| {
            let SsimScratch { conv, planes } = &mut *scratch.borrow_mut();
            if planes.len() < 3 * ch + 1 {
                planes.resize_with(3 * ch + 1, Vec::new);
            }
            // Candidate-side statistics in statistic-major order:
            // planes[s * ch + c]; the last scratch plane holds the combined
            // single-channel map.
            let mut sources = Vec::with_capacity(3 * ch);
            for c in 0..ch {
                sources.push(PlaneSource::Plane(b.plane(c)));
            }
            for c in 0..ch {
                sources.push(PlaneSource::Product(b.plane(c), b.plane(c)));
            }
            for c in 0..ch {
                sources.push(PlaneSource::Product(self.a.plane(c), b.plane(c)));
            }
            {
                let mut outs: Vec<&mut Vec<f64>> = planes.iter_mut().take(3 * ch).collect();
                convolve_planes_with_scratch(
                    &sources,
                    self.a.width(),
                    self.a.height(),
                    &self.kernel,
                    &self.kernel,
                    conv,
                    &mut outs,
                )
                .expect("separable convolution cannot fail");
            }
            if ch == 1 {
                // Materialise the per-pixel values flat, then reduce in the
                // same ascending order the closure form added them.
                let (stats, tail) = planes.split_at_mut(3);
                let combined = &mut tail[0];
                ssim_formula_flat(
                    combined,
                    &self.mu_a[0],
                    &stats[0],
                    &self.a_sq[0],
                    &stats[1],
                    &stats[2],
                    self.config.c1(),
                    self.config.c2(),
                );
                for &v in combined.iter() {
                    total += v;
                }
            } else {
                let stat =
                    |s: usize| (0..ch).map(|c| planes[s * ch + c].as_slice()).collect::<Vec<_>>();
                let (mu_b, b_sq, ab) = (stat(0), stat(1), stat(2));
                let mu_a: Vec<&[f64]> = self.mu_a.iter().map(Vec::as_slice).collect();
                let a_sq: Vec<&[f64]> = self.a_sq.iter().map(Vec::as_slice).collect();
                ssim_formula(
                    &mu_a,
                    &mu_b,
                    &a_sq,
                    &b_sq,
                    &ab,
                    self.config.c1(),
                    self.config.c2(),
                    |v| total += v,
                );
            }
        });
        Ok(total / (self.a.width() * self.a.height()) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::Channels;

    fn texture(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            128.0 + 80.0 * ((x as f64) * 0.3).sin() + 40.0 * ((y as f64) * 0.2).cos()
        })
    }

    #[test]
    fn identical_images_score_one() {
        let a = texture(24);
        let s = ssim(&a, &a, &SsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "SSIM of identical images = {s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = texture(24);
        let b = a.map(|v| 255.0 - v);
        let cfg = SsimConfig::default();
        let ab = ssim(&a, &b, &cfg).unwrap();
        let ba = ssim(&b, &a, &cfg).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn ssim_bounded() {
        let a = texture(24);
        for other in [
            a.map(|v| 255.0 - v),
            Image::filled(24, 24, Channels::Gray, 0.0),
            Image::from_fn_gray(24, 24, |x, y| ((x * 7919 + y * 104729) % 256) as f64),
        ] {
            let s = ssim(&a, &other, &SsimConfig::default()).unwrap();
            assert!((-1.0..=1.0).contains(&s), "SSIM out of range: {s}");
        }
    }

    #[test]
    fn inverted_image_scores_much_lower_than_noisy_copy() {
        let a = texture(32);
        let cfg = SsimConfig::default();
        let slightly_noisy = a.map(|v| (v + 6.0).min(255.0));
        let inverted = a.map(|v| 255.0 - v);
        let near = ssim(&a, &slightly_noisy, &cfg).unwrap();
        let far = ssim(&a, &inverted, &cfg).unwrap();
        assert!(near > 0.9, "near = {near}");
        assert!(far < near - 0.5, "near = {near}, far = {far}");
    }

    #[test]
    fn constant_shift_penalised_only_by_luminance_term() {
        let a = Image::filled(16, 16, Channels::Gray, 100.0);
        let b = Image::filled(16, 16, Channels::Gray, 130.0);
        let s = ssim(&a, &b, &SsimConfig::default()).unwrap();
        // Structure and contrast identical; only luminance differs.
        let c1 = (0.01f64 * 255.0).powi(2);
        let expected = (2.0 * 100.0 * 130.0 + c1) / (100.0f64.powi(2) + 130.0f64.powi(2) + c1);
        assert!((s - expected).abs() < 1e-9, "s = {s}, expected = {expected}");
    }

    #[test]
    fn map_has_image_shape_and_valid_entries() {
        let a = texture(20);
        let b = a.map(|v| (v * 0.9).min(255.0));
        let map = ssim_map(&a, &b, &SsimConfig::default()).unwrap();
        assert_eq!(map.width(), 20);
        assert_eq!(map.height(), 20);
        for &v in map.plane(0) {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn rgb_images_average_channels() {
        let a = Image::from_fn_rgb(16, 16, |x, y| {
            [(x * 16) as f64, (y * 16) as f64, ((x + y) * 8) as f64]
        });
        let s = ssim(&a, &a, &SsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Image::zeros(8, 8, Channels::Gray);
        let b = Image::zeros(8, 9, Channels::Gray);
        assert!(ssim(&a, &b, &SsimConfig::default()).is_err());
    }

    #[test]
    fn rejects_bad_config() {
        let a = Image::zeros(8, 8, Channels::Gray);
        let mut cfg = SsimConfig::default();
        cfg.sigma = 0.0;
        assert!(ssim(&a, &a, &cfg).is_err());
        let mut cfg = SsimConfig::default();
        cfg.dynamic_range = -1.0;
        assert!(ssim(&a, &a, &cfg).is_err());
    }

    #[test]
    fn reference_scoring_is_bit_identical_to_ssim() {
        let gray = texture(24);
        let rgb = Image::from_fn_rgb(17, 13, |x, y| {
            [(x * 16) as f64, (y * 16) as f64, ((x + y) * 8) as f64]
        });
        let mut small_window = SsimConfig::default();
        small_window.sigma = 0.8;
        small_window.radius = 2;
        for cfg in [SsimConfig::default(), small_window] {
            for a in [&gray, &rgb] {
                let reference = SsimReference::new(a, &cfg).unwrap();
                let candidates =
                    [a.clone(), a.map(|v| (v + 11.0).min(255.0)), a.map(|v| 255.0 - v)];
                for b in &candidates {
                    assert_eq!(
                        reference.score_against(b).unwrap(),
                        ssim(a, b, &cfg).unwrap(),
                        "{}ch {}x{}",
                        a.channel_count(),
                        a.width(),
                        a.height()
                    );
                }
            }
        }
    }

    #[test]
    fn reference_rejects_shape_mismatch_and_bad_config() {
        let a = Image::zeros(8, 8, Channels::Gray);
        let b = Image::zeros(8, 9, Channels::Gray);
        let reference = SsimReference::new(&a, &SsimConfig::default()).unwrap();
        assert!(reference.score_against(&b).is_err());
        assert_eq!(reference.image().width(), 8);
        assert_eq!(reference.config().radius, 5);
        let mut cfg = SsimConfig::default();
        cfg.sigma = -1.0;
        assert!(SsimReference::new(&a, &cfg).is_err());
    }

    #[test]
    fn default_config_matches_reference_constants() {
        let cfg = SsimConfig::default();
        assert_eq!(cfg.sigma, 1.5);
        assert_eq!(cfg.radius, 5);
        assert!((cfg.c1() - 6.5025).abs() < 1e-9);
        assert!((cfg.c2() - 58.5225).abs() < 1e-9);
    }
}
