//! Multi-scale SSIM (Wang et al., 2003).
//!
//! Single-scale SSIM is sensitive to the viewing scale; MS-SSIM evaluates
//! contrast/structure terms over a dyadic pyramid and the luminance term
//! only at the coarsest level, weighting the levels with the standard
//! perceptual weights. Included for the paper's discussion on the
//! robustness of image-similarity metrics (§6): the detection tables use
//! plain SSIM, and MS-SSIM serves as a cross-check that the separation is
//! not an artefact of the single evaluation scale.

use crate::error::check_same_shape;
use crate::ssim::SsimConfig;
use crate::MetricError;
use decamouflage_imaging::scale::{resize, ScaleAlgorithm};
use decamouflage_imaging::Image;

/// The standard five-level MS-SSIM weights.
pub const MSSSIM_WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// Computes MS-SSIM between two images of identical shape.
///
/// The number of levels adapts to the image size (each level must keep at
/// least `2 radius + 1` pixels per axis after halving); weights are
/// renormalised over the levels actually used. Values land in `[0, 1]`
/// for natural inputs (negative structural terms are clamped at 0, as in
/// the reference implementation).
///
/// # Errors
///
/// Returns [`MetricError::ShapeMismatch`] for differing shapes and
/// [`MetricError::InvalidParameter`] if the images are too small for even
/// a single level.
pub fn ms_ssim(a: &Image, b: &Image, config: &SsimConfig) -> Result<f64, MetricError> {
    check_same_shape(a, b)?;
    let min_side = 2 * config.radius + 1;
    let mut levels = 0usize;
    let (mut w, mut h) = (a.width(), a.height());
    while levels < MSSSIM_WEIGHTS.len() && w >= min_side && h >= min_side {
        levels += 1;
        w /= 2;
        h /= 2;
    }
    if levels == 0 {
        return Err(MetricError::InvalidParameter {
            message: format!(
                "image {}x{} too small for MS-SSIM with window {min_side}",
                a.width(),
                a.height()
            ),
        });
    }
    let weight_sum: f64 = MSSSIM_WEIGHTS[..levels].iter().sum();

    let mut current_a = a.clone();
    let mut current_b = b.clone();
    let mut log_score = 0.0f64;
    for (level, &level_weight) in MSSSIM_WEIGHTS[..levels].iter().enumerate() {
        let (luminance, contrast_structure) = ssim_components(&current_a, &current_b, config)?;
        let weight = level_weight / weight_sum;
        let term = if level == levels - 1 {
            // Coarsest level carries the luminance term too.
            (luminance * contrast_structure).max(1e-12)
        } else {
            contrast_structure.max(1e-12)
        };
        log_score += weight * term.ln();
        if level + 1 < levels {
            let nw = (current_a.width() / 2).max(1);
            let nh = (current_a.height() / 2).max(1);
            current_a = resize(&current_a, nw, nh, ScaleAlgorithm::Area)
                .map_err(|e| MetricError::InvalidParameter { message: e.to_string() })?;
            current_b = resize(&current_b, nw, nh, ScaleAlgorithm::Area)
                .map_err(|e| MetricError::InvalidParameter { message: e.to_string() })?;
        }
    }
    Ok(log_score.exp())
}

/// Mean luminance term and mean contrast-structure term of SSIM, averaged
/// over all window positions and channels (negative CS values clamp to 0).
///
/// Runs on the fused multi-plane convolution with per-thread scratch — the
/// five blurred maps of a level share one intermediate and reuse the output
/// buffers across pyramid levels instead of allocating five images each.
fn ssim_components(a: &Image, b: &Image, config: &SsimConfig) -> Result<(f64, f64), MetricError> {
    use decamouflage_imaging::filter::{
        convolve_planes_with_scratch, gaussian_kernel, ConvScratch, PlaneSource,
    };
    thread_local! {
        static MSSSIM_SCRATCH: std::cell::RefCell<(ConvScratch, Vec<Vec<f64>>)> =
            std::cell::RefCell::new((ConvScratch::new(), Vec::new()));
    }
    let kernel = gaussian_kernel(config.sigma, Some(config.radius))
        .map_err(|e| MetricError::InvalidParameter { message: e.to_string() })?;
    let c1 = (0.01 * config.dynamic_range).powi(2);
    let c2 = (0.03 * config.dynamic_range).powi(2);

    let mut lum = 0.0;
    let mut cs = 0.0;
    let ch = a.channel_count();
    MSSSIM_SCRATCH.with(|scratch| {
        let (conv, planes) = &mut *scratch.borrow_mut();
        if planes.len() < 5 * ch {
            planes.resize_with(5 * ch, Vec::new);
        }
        // Statistic-major layout: planes[s * ch + c] is statistic `s` of
        // channel `c`.
        let mut sources = Vec::with_capacity(5 * ch);
        for c in 0..ch {
            sources.push(PlaneSource::Plane(a.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Plane(b.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Product(a.plane(c), a.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Product(b.plane(c), b.plane(c)));
        }
        for c in 0..ch {
            sources.push(PlaneSource::Product(a.plane(c), b.plane(c)));
        }
        {
            let mut outs: Vec<&mut Vec<f64>> = planes.iter_mut().take(5 * ch).collect();
            convolve_planes_with_scratch(
                &sources,
                a.width(),
                a.height(),
                &kernel,
                &kernel,
                conv,
                &mut outs,
            )
            .expect("separable convolution cannot fail");
        }
        // Pixel-major, channel-inner traversal — the historical interleaved
        // sample order, so both running sums stay bit-identical.
        #[allow(clippy::needless_range_loop)]
        for i in 0..a.plane_len() {
            for c in 0..ch {
                let ma = planes[c][i];
                let mb = planes[ch + c][i];
                let sa = planes[2 * ch + c][i];
                let sb = planes[3 * ch + c][i];
                let sab = planes[4 * ch + c][i];
                let va = sa - ma * ma;
                let vb = sb - mb * mb;
                let cov = sab - ma * mb;
                lum += (2.0 * ma * mb + c1) / (ma * ma + mb * mb + c1);
                cs += ((2.0 * cov + c2) / (va + vb + c2)).max(0.0);
            }
        }
    });
    let n = (a.width() * a.height() * a.channel_count()) as f64;
    Ok((lum / n, cs / n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::Channels;

    fn texture(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            128.0 + 70.0 * ((x as f64) * 0.23).sin() + 45.0 * ((y as f64) * 0.17).cos()
        })
    }

    #[test]
    fn identical_images_score_one() {
        let a = texture(64);
        let s = ms_ssim(&a, &a, &SsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "MS-SSIM of identical images = {s}");
    }

    #[test]
    fn small_distortion_scores_higher_than_large() {
        let a = texture(64);
        let slight = a.map(|v| (v + 4.0).min(255.0));
        let heavy = a.map(|v| 255.0 - v);
        let cfg = SsimConfig::default();
        let s_slight = ms_ssim(&a, &slight, &cfg).unwrap();
        let s_heavy = ms_ssim(&a, &heavy, &cfg).unwrap();
        assert!(s_slight > s_heavy, "slight {s_slight} vs heavy {s_heavy}");
        assert!(s_slight > 0.9);
    }

    #[test]
    fn symmetric() {
        let a = texture(48);
        let b = a.map(|v| (v * 0.8 + 20.0).min(255.0));
        let cfg = SsimConfig::default();
        let ab = ms_ssim(&a, &b, &cfg).unwrap();
        let ba = ms_ssim(&b, &a, &cfg).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let a = texture(48);
        for other in [
            a.map(|v| 255.0 - v),
            Image::filled(48, 48, Channels::Gray, 0.0),
            Image::from_fn_gray(48, 48, |x, y| ((x * 7919 + y * 104729) % 256) as f64),
        ] {
            let s = ms_ssim(&a, &other, &SsimConfig::default()).unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&s), "MS-SSIM out of range: {s}");
        }
    }

    #[test]
    fn adapts_level_count_to_small_images() {
        // 16x16 supports one 11-px-window level only; must not error.
        let a = texture(16);
        let b = a.map(|v| v * 0.9);
        let s = ms_ssim(&a, &b, &SsimConfig::default()).unwrap();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn rejects_tiny_images_and_shape_mismatch() {
        let cfg = SsimConfig::default();
        let tiny = Image::filled(4, 4, Channels::Gray, 1.0);
        assert!(ms_ssim(&tiny, &tiny, &cfg).is_err());
        let a = texture(32);
        let b = texture(33);
        assert!(ms_ssim(&a, &b, &cfg).is_err());
    }

    #[test]
    fn weights_are_the_reference_values() {
        assert_eq!(MSSSIM_WEIGHTS.len(), 5);
        let sum: f64 = MSSSIM_WEIGHTS.iter().sum();
        assert!((sum - 1.0001).abs() < 1e-3, "weights sum to {sum}");
    }

    #[test]
    fn separates_attack_like_distortion() {
        // An attack-like sparse outlier grid hurts MS-SSIM much more than
        // uniform mild noise of the same energy budget.
        let a = texture(64);
        let sparse = Image::from_fn_gray(64, 64, |x, y| {
            if x % 4 == 1 && y % 4 == 1 {
                255.0 - a.get(x, y, 0)
            } else {
                a.get(x, y, 0)
            }
        });
        let cfg = SsimConfig::default();
        let s = ms_ssim(&a, &sparse, &cfg).unwrap();
        assert!(s < 0.95, "sparse outliers barely penalised: {s}");
        // And the clean copy is clearly preferred.
        assert!(ms_ssim(&a, &a, &cfg).unwrap() > s + 0.04);
    }
}
