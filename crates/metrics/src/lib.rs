//! Image-similarity metrics and summary statistics for the Decamouflage
//! reproduction.
//!
//! The paper identifies **MSE** and **SSIM** as the metrics that separate
//! benign from attack images in the scaling- and filtering-detection
//! methods, shows that **PSNR** does *not* separate them (Appendix A), and
//! notes that the colour-histogram similarity originally proposed by Xiao
//! et al. is not a valid detection metric either (§3.1). All four are
//! implemented here so the framework can both use the good metrics and
//! reproduce the negative results.
//!
//! # Example
//!
//! ```
//! use decamouflage_imaging::Image;
//! use decamouflage_metrics::{mse, ssim, SsimConfig};
//!
//! # fn main() -> Result<(), decamouflage_metrics::MetricError> {
//! let a = Image::from_fn_gray(16, 16, |x, y| (x * y) as f64);
//! assert_eq!(mse(&a, &a)?, 0.0);
//! assert!((ssim(&a, &a, &SsimConfig::default())? - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod colorhist;
mod error;
mod histogram;
mod mse;
mod msssim;
mod ssim;
mod stats;

pub use colorhist::{color_histogram, histogram_intersection, ColorHistogram};
pub use error::MetricError;
pub use histogram::{Histogram, HistogramBin};
pub use mse::{mae, max_abs_diff, mse, psnr};
pub use msssim::{ms_ssim, MSSSIM_WEIGHTS};
pub use ssim::{ssim, ssim_map, SsimConfig, SsimReference};
pub use stats::{percentile, OnlineStats, SampleSummary};
