//! Property-based tests (proptest) for the metrics crate.

use decamouflage_imaging::{Channels, Image};
use decamouflage_metrics::{
    color_histogram, histogram_intersection, mae, max_abs_diff, mse, percentile, psnr, ssim,
    Histogram, OnlineStats, SampleSummary, SsimConfig,
};
use proptest::prelude::*;

fn arb_pair() -> impl Strategy<Value = (Image, Image)> {
    (2usize..=14, 2usize..=14).prop_flat_map(|(w, h)| {
        let img = proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap());
        (img.clone(), img)
    })
}

fn arb_triple() -> impl Strategy<Value = (Image, Image, Image)> {
    (2usize..=14, 2usize..=14).prop_flat_map(|(w, h)| {
        let img = proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap());
        (img.clone(), img.clone(), img)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn error_metric_relations((a, b) in arb_pair()) {
        let mse_v = mse(&a, &b).unwrap();
        let mae_v = mae(&a, &b).unwrap();
        let linf = max_abs_diff(&a, &b).unwrap();
        // Jensen: MAE² <= MSE <= L∞ * MAE, and L∞ bounds everything.
        prop_assert!(mae_v * mae_v <= mse_v + 1e-9);
        prop_assert!(mse_v <= linf * mae_v + 1e-9);
        prop_assert!(mae_v <= linf + 1e-12);
        // PSNR consistency with MSE.
        if mse_v > 0.0 {
            let expected = 10.0 * ((255.0f64 * 255.0) / mse_v).log10();
            prop_assert!((psnr(&a, &b).unwrap() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn triangle_like_inequality_for_linf((a, b, c) in arb_triple()) {
        let ab = max_abs_diff(&a, &b).unwrap();
        let bc = max_abs_diff(&b, &c).unwrap();
        let ac = max_abs_diff(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn ssim_identity_and_range((a, b) in arb_pair()) {
        let cfg = SsimConfig::default();
        prop_assert!((ssim(&a, &a, &cfg).unwrap() - 1.0).abs() < 1e-9);
        let s = ssim(&a, &b, &cfg).unwrap();
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn color_histogram_is_a_distribution((a, _) in arb_pair(), bins in 1usize..64) {
        let h = color_histogram(&a, bins).unwrap();
        let sum: f64 = h.channel(0).iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for &v in h.channel(0) {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn histogram_intersection_bounds((a, b) in arb_pair(), bins in 1usize..32) {
        let s = histogram_intersection(&a, &b, bins).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        let self_sim = histogram_intersection(&a, &a, bins).unwrap();
        prop_assert!((self_sim - 1.0).abs() < 1e-12);
        prop_assert!(s <= self_sim + 1e-12);
    }

    #[test]
    fn percentile_is_monotone_and_bracketed(
        samples in proptest::collection::vec(-1e3f64..1e3, 1..40),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let v_lo = percentile(&samples, lo).unwrap();
        let v_hi = percentile(&samples, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-12);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v_lo >= min - 1e-12 && v_hi <= max + 1e-12);
    }

    #[test]
    fn online_stats_match_batch_summary(
        samples in proptest::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let online: OnlineStats = samples.iter().copied().collect();
        let summary = SampleSummary::from_samples(&samples).unwrap();
        prop_assert!((online.mean() - summary.mean).abs() < 1e-9);
        prop_assert!((online.population_std_dev() - summary.std_dev).abs() < 1e-9);
        prop_assert_eq!(online.count(), summary.count);
    }

    #[test]
    fn histogram_bins_all_in_range_samples(
        samples in proptest::collection::vec(0.0f64..100.0, 1..60),
        bins in 1usize..20,
    ) {
        let h = Histogram::from_samples(&samples, bins, Some((0.0, 100.0))).unwrap();
        prop_assert_eq!(h.total(), samples.len());
        prop_assert_eq!(h.bins().len(), bins);
    }
}

// ---------------------------------------------------------------------------
// Vectorized-kernel equivalence suite (ISSUE 6): the scratch-reusing
// `SsimReference` fast path must be bit-identical to the one-shot `ssim`
// entry point, and poisoned inputs must degrade gracefully, never panic.
// ---------------------------------------------------------------------------

use decamouflage_metrics::SsimReference;

fn arb_channel_pair() -> impl Strategy<Value = (Image, Image)> {
    (3usize..=12, 3usize..=12, any::<bool>()).prop_flat_map(|(w, h, rgb)| {
        let ch = if rgb { Channels::Rgb } else { Channels::Gray };
        let img = proptest::collection::vec(0u8..=255, w * h * ch.count())
            .prop_map(move |data| Image::from_u8(w, h, ch, &data).unwrap());
        (img.clone(), img)
    })
}

fn arb_poisoned_sample() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e3f64..1e3,
        -1e3f64..1e3,
        -1e3f64..1e3,
        -1e3f64..1e3,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
    ]
}

fn arb_poisoned_gray_pair() -> impl Strategy<Value = (Image, Image)> {
    (3usize..=9, 3usize..=9).prop_flat_map(|(w, h)| {
        (
            proptest::collection::vec(arb_poisoned_sample(), w * h),
            proptest::collection::vec(arb_poisoned_sample(), w * h),
        )
            .prop_map(move |(da, db)| {
                (
                    Image::from_gray_plane(w, h, da).unwrap(),
                    Image::from_gray_plane(w, h, db).unwrap(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ssim_reference_is_bit_identical_to_one_shot_ssim((a, b) in arb_channel_pair()) {
        let cfg = SsimConfig::default();
        let reference = SsimReference::new(&a, &cfg).unwrap();
        let fast = reference.score_against(&b).unwrap();
        let slow = ssim(&a, &b, &cfg).unwrap();
        prop_assert_eq!(fast.to_bits(), slow.to_bits());
        // Reuse across calls must not leak state between scores.
        let again = reference.score_against(&b).unwrap();
        prop_assert_eq!(again.to_bits(), slow.to_bits());
    }

    #[test]
    fn poisoned_metrics_never_panic((a, b) in arb_poisoned_gray_pair()) {
        // NaN/inf samples must flow through every metric as ordinary IEEE
        // values (or clean errors) — the fast kernels may not panic or hang.
        let _ = mse(&a, &b);
        let _ = mae(&a, &b);
        let _ = max_abs_diff(&a, &b);
        let _ = psnr(&a, &b);
        let cfg = SsimConfig::default();
        let one_shot = ssim(&a, &b, &cfg);
        let staged = SsimReference::new(&a, &cfg).unwrap().score_against(&b);
        match (one_shot, staged) {
            (Ok(x), Ok(y)) => {
                prop_assert!(
                    x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                    "ssim {x:?} vs reference {y:?}"
                );
            }
            (a, b) => prop_assert!(a.is_err() == b.is_err()),
        }
    }
}
