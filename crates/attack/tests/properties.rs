//! Property-based tests (proptest) for the attack substrate.

use decamouflage_attack::{craft_attack, solve_1d_attack, AttackConfig, QpConfig};
use decamouflage_imaging::scale::{CoeffMatrix, ScaleAlgorithm, Scaler};
use decamouflage_imaging::{Channels, Image, Size};
use proptest::prelude::*;

fn arb_algorithm() -> impl Strategy<Value = ScaleAlgorithm> {
    prop_oneof![
        Just(ScaleAlgorithm::Nearest),
        Just(ScaleAlgorithm::Bilinear),
        Just(ScaleAlgorithm::Bicubic),
        Just(ScaleAlgorithm::Area),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qp_solutions_respect_the_box(
        src in proptest::collection::vec(0.0f64..255.0, 16),
        dst in proptest::collection::vec(0.0f64..255.0, 4),
        algo in arb_algorithm(),
    ) {
        let m = CoeffMatrix::build(algo, 16, 4).unwrap();
        let out = solve_1d_attack(&m, &src, &dst, &QpConfig::default()).unwrap();
        for &v in &out.signal {
            prop_assert!((0.0..=255.0).contains(&v));
        }
        prop_assert!(out.residual_linf >= 0.0);
        prop_assert!(out.perturbation_sq >= 0.0);
    }

    #[test]
    fn feasible_targets_converge_with_bounded_residual(
        hidden in proptest::collection::vec(0.0f64..255.0, 16),
        src in proptest::collection::vec(0.0f64..255.0, 16),
        algo in arb_algorithm(),
    ) {
        // Build the target from a known in-box signal: always feasible.
        let m = CoeffMatrix::build(algo, 16, 4).unwrap();
        let dst = m.apply(&hidden);
        let out = solve_1d_attack(&m, &src, &dst, &QpConfig::default()).unwrap();
        prop_assert!(out.converged, "residual {}", out.residual_linf);
        prop_assert!(out.residual_linf <= 1.0 + 1e-3);
    }

    #[test]
    fn zero_perturbation_when_source_already_maps_to_target(
        src in proptest::collection::vec(0.0f64..255.0, 12),
        algo in arb_algorithm(),
    ) {
        let m = CoeffMatrix::build(algo, 12, 3).unwrap();
        let dst = m.apply(&src);
        let out = solve_1d_attack(&m, &src, &dst, &QpConfig::default()).unwrap();
        prop_assert!(out.perturbation_sq < 1e-9, "perturbed by {}", out.perturbation_sq);
    }

    #[test]
    fn crafted_images_are_quantised_in_range_and_reach_target(
        seed_o in 0u8..255,
        seed_t in 0u8..255,
        algo in prop_oneof![Just(ScaleAlgorithm::Nearest), Just(ScaleAlgorithm::Bilinear)],
    ) {
        let original = Image::from_fn_gray(24, 24, |x, y| {
            ((x * 7 + y * 3 + seed_o as usize) % 200) as f64 + 20.0
        });
        let target = Image::from_fn_gray(6, 6, |x, y| {
            ((x * 31 + y * 17 + seed_t as usize * 5) % 256) as f64
        });
        let scaler = Scaler::new(Size::square(24), Size::square(6), algo).unwrap();
        let crafted = craft_attack(&original, &target, &scaler, &AttackConfig::default()).unwrap();
        for &v in crafted.image.planes().iter().flatten() {
            prop_assert!((0.0..=255.0).contains(&v));
            prop_assert_eq!(v, v.round());
        }
        prop_assert!(
            crafted.stats.target_deviation_linf <= 4.0,
            "deviation {}",
            crafted.stats.target_deviation_linf
        );
    }

    #[test]
    fn attack_perturbs_fewer_pixels_than_overwriting(
        seed in 0u8..255,
    ) {
        let original = Image::from_fn_gray(32, 32, |x, y| {
            ((x + 2 * y + seed as usize) % 180) as f64 + 30.0
        });
        let target = Image::from_fn_gray(8, 8, |x, y| ((x * y + seed as usize) % 256) as f64);
        let scaler =
            Scaler::new(Size::square(32), Size::square(8), ScaleAlgorithm::Bilinear).unwrap();
        let crafted = craft_attack(&original, &target, &scaler, &AttackConfig::default()).unwrap();
        // Bilinear factor 4 touches at most ~(1/2)^2 of pixels + rounding.
        prop_assert!(
            crafted.stats.perturbed_fraction < 0.5,
            "fraction {}",
            crafted.stats.perturbed_fraction
        );
    }

    #[test]
    fn rgb_and_gray_crafting_agree_on_replicated_channels(seed in 0u8..100) {
        let gray_o = Image::from_fn_gray(16, 16, |x, y| ((x * 5 + y + seed as usize) % 200) as f64);
        let gray_t = Image::from_fn_gray(4, 4, |x, y| ((x * 50 + y * 20) % 256) as f64);
        let scaler =
            Scaler::new(Size::square(16), Size::square(4), ScaleAlgorithm::Nearest).unwrap();
        let cfg = AttackConfig::default();
        let gray_attack = craft_attack(&gray_o, &gray_t, &scaler, &cfg).unwrap();
        let rgb_attack = craft_attack(&gray_o.to_rgb(), &gray_t.to_rgb(), &scaler, &cfg).unwrap();
        // Each RGB channel equals the gray solution.
        prop_assert_eq!(rgb_attack.image.channels(), Channels::Rgb);
        for c in 0..3 {
            let plane = rgb_attack.image.channel_image(c).unwrap();
            prop_assert!(plane.approx_eq(&gray_attack.image, 1e-9));
        }
    }
}
