//! From-scratch implementation of the image-scaling (camouflage) attack of
//! Xiao et al. (USENIX Security 2019), the threat model the Decamouflage
//! framework detects.
//!
//! The attack crafts an image `A = O + Δ` that is visually indistinguishable
//! from an original `O` but downscales to an attacker-chosen target `T`:
//!
//! ```text
//! min ‖Δ‖²   s.t.  ‖scale(O + Δ) − T‖∞ <= ε,   0 <= O + Δ <= 255
//! ```
//!
//! Because every supported scaler is a separable linear operator
//! `scale(I) = L · I · R` (see [`decamouflage_imaging::scale::CoeffMatrix`]),
//! the 2-D problem decomposes into independent 1-D quadratic programs along
//! rows and then columns (module [`craft`]), each solved by a projected
//! gradient method with adaptive penalty (module [`qp`]), with an exact
//! closed-form fast path for nearest-neighbour scaling.
//!
//! # Example
//!
//! ```
//! use decamouflage_imaging::{Image, Size, scale::{ScaleAlgorithm, Scaler}};
//! use decamouflage_attack::{craft_attack, AttackConfig};
//!
//! # fn main() -> Result<(), decamouflage_attack::AttackError> {
//! let original = Image::from_fn_gray(32, 32, |x, y| 100.0 + ((x + y) % 7) as f64);
//! let target = Image::from_fn_gray(8, 8, |x, y| ((x * y * 5) % 256) as f64);
//! let scaler = Scaler::new(Size::square(32), Size::square(8), ScaleAlgorithm::Nearest)?;
//! let crafted = craft_attack(&original, &target, &scaler, &AttackConfig::default())?;
//! assert!(crafted.stats.target_deviation_linf <= 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod adaptive;
pub mod craft;
pub mod qp;
pub mod verify;

pub use craft::{craft_attack, AttackConfig, AttackStats, CraftedAttack};
pub use error::AttackError;
pub use qp::{solve_1d_attack, QpConfig, Solve1d};
pub use verify::{verify_attack, AttackVerification, VerifyConfig};
