//! Two-stage attack crafting (the decomposition used by Xiao et al.).
//!
//! For a separable scaler `scale(I) = L · I · R`:
//!
//! 1. **Horizontal stage** — vertically downscale the original
//!    (`O_v = L · O`, size `dst_h x src_w`) and perturb each *row* of `O_v`
//!    so that `row · R` matches the corresponding row of the target `T`.
//!    The result is the intermediate image `M`.
//! 2. **Vertical stage** — perturb each *column* of the full-size original
//!    `O` so that `L · col` matches the corresponding column of `M`.
//!
//! Both stages are batches of independent 1-D QPs handled by
//! [`crate::qp::solve_1d_attack`]. The crafted image `A` then satisfies
//! `L · A · R ≈ T` while differing from `O` only at the sparse set of
//! pixels the scaler actually samples.

use crate::qp::{solve_1d_attack, QpConfig};
use crate::AttackError;
use decamouflage_imaging::scale::Scaler;
use decamouflage_imaging::Image;

/// Attack crafting parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// Per-stage `L∞` slack for the QP solver. The end-to-end deviation of
    /// `scale(A)` from `T` is bounded by roughly `2-3x` this value plus
    /// quantisation noise.
    pub epsilon: f64,
    /// Whether to round the crafted image onto the 8-bit grid (a real
    /// attacker must ship integer pixels).
    pub quantize: bool,
    /// Iteration/penalty knobs forwarded to the 1-D solver.
    pub qp: QpConfig,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self { epsilon: 1.0, quantize: true, qp: QpConfig::default() }
    }
}

/// Outcome statistics of one crafted attack image.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackStats {
    /// `‖scale(A) − T‖∞` measured on the final (quantised) attack image.
    pub target_deviation_linf: f64,
    /// Mean squared perturbation `‖A − O‖² / n` over all samples.
    pub perturbation_mse: f64,
    /// Fraction of samples that were changed (beyond 1e-9).
    pub perturbed_fraction: f64,
    /// Fraction of 1-D sub-problems whose solver reported convergence.
    pub converged_fraction: f64,
    /// Total gradient iterations across all sub-problems (0 when every
    /// sub-problem hit a closed-form fast path).
    pub solver_iterations: usize,
}

/// A crafted attack image plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CraftedAttack {
    /// The attack image `A` (same size as the original).
    pub image: Image,
    /// The intermediate image `M` of the horizontal stage
    /// (`dst_h x src_w`), useful for visualisation.
    pub intermediate: Image,
    /// Crafting statistics.
    pub stats: AttackStats,
}

/// Crafts an image-scaling attack image.
///
/// `original` must match the scaler's source size and `target` its
/// destination size; both must share a channel layout.
///
/// # Errors
///
/// * [`AttackError::ShapeMismatch`] / [`AttackError::ChannelMismatch`] for
///   inconsistent inputs,
/// * [`AttackError::InvalidConfig`] for unusable solver parameters,
/// * [`AttackError::Imaging`] if an imaging primitive fails.
///
/// A hard-to-satisfy target does **not** error: inspect
/// [`AttackStats::converged_fraction`] and
/// [`AttackStats::target_deviation_linf`].
pub fn craft_attack(
    original: &Image,
    target: &Image,
    scaler: &Scaler,
    config: &AttackConfig,
) -> Result<CraftedAttack, AttackError> {
    let src = scaler.src_size();
    let dst = scaler.dst_size();
    if original.size() != src {
        return Err(AttackError::ShapeMismatch {
            context: "original vs scaler source",
            expected: (src.width, src.height),
            actual: (original.width(), original.height()),
        });
    }
    if target.size() != dst {
        return Err(AttackError::ShapeMismatch {
            context: "target vs scaler destination",
            expected: (dst.width, dst.height),
            actual: (target.width(), target.height()),
        });
    }
    if original.channels() != target.channels() {
        return Err(AttackError::ChannelMismatch);
    }

    let qp_config = QpConfig { epsilon: config.epsilon, ..config.qp.clone() };
    let vertical = scaler.vertical_coeffs();
    let horizontal = scaler.horizontal_coeffs();
    let channels = original.channel_count();

    let mut converged = 0usize;
    let mut total_problems = 0usize;
    let mut iterations = 0usize;

    // O_v = L · O : vertical downscale of the original.
    let mut o_v = Image::zeros(src.width, dst.height, original.channels());
    {
        let mut col = vec![0.0; src.height];
        let mut out = vec![0.0; dst.height];
        for c in 0..channels {
            for x in 0..src.width {
                for (y, v) in col.iter_mut().enumerate() {
                    *v = original.get(x, y, c);
                }
                vertical.apply_into(&col, &mut out);
                for (y, &v) in out.iter().enumerate() {
                    o_v.set(x, y, c, v);
                }
            }
        }
    }

    // Horizontal stage: perturb rows of O_v so they downscale to T's rows.
    let mut intermediate = o_v.clone();
    {
        let mut row = vec![0.0; src.width];
        let mut t_row = vec![0.0; dst.width];
        for c in 0..channels {
            for y in 0..dst.height {
                for (x, v) in row.iter_mut().enumerate() {
                    *v = o_v.get(x, y, c);
                }
                for (x, v) in t_row.iter_mut().enumerate() {
                    *v = target.get(x, y, c);
                }
                let solve = solve_1d_attack(horizontal, &row, &t_row, &qp_config)?;
                total_problems += 1;
                converged += usize::from(solve.converged);
                iterations += solve.iterations;
                for (x, &v) in solve.signal.iter().enumerate() {
                    intermediate.set(x, y, c, v);
                }
            }
        }
    }

    // Vertical stage: perturb columns of O so they downscale to M's columns.
    let mut attack = original.clamped();
    {
        let mut col = vec![0.0; src.height];
        let mut m_col = vec![0.0; dst.height];
        for c in 0..channels {
            for x in 0..src.width {
                for (y, v) in col.iter_mut().enumerate() {
                    *v = original.get(x, y, c);
                }
                for (y, v) in m_col.iter_mut().enumerate() {
                    *v = intermediate.get(x, y, c);
                }
                let solve = solve_1d_attack(vertical, &col, &m_col, &qp_config)?;
                total_problems += 1;
                converged += usize::from(solve.converged);
                iterations += solve.iterations;
                for (y, &v) in solve.signal.iter().enumerate() {
                    attack.set(x, y, c, v);
                }
            }
        }
    }

    if config.quantize {
        attack = attack.quantized();
    }

    // Measure the end-to-end result on the final image.
    let downscaled = scaler.apply(&attack)?;
    let mut deviation = 0.0f64;
    for (d, t) in downscaled.planes().iter().flatten().zip(target.planes().iter().flatten()) {
        deviation = deviation.max((d - t).abs());
    }
    let n = (attack.plane_len() * attack.channel_count()) as f64;
    let mut perturbation_sq = 0.0;
    let mut perturbed = 0usize;
    for (a, o) in attack.planes().iter().flatten().zip(original.planes().iter().flatten()) {
        let d = a - o;
        perturbation_sq += d * d;
        if d.abs() > 1e-9 {
            perturbed += 1;
        }
    }

    Ok(CraftedAttack {
        image: attack,
        intermediate,
        stats: AttackStats {
            target_deviation_linf: deviation,
            perturbation_mse: perturbation_sq / n,
            perturbed_fraction: perturbed as f64 / n,
            converged_fraction: converged as f64 / total_problems as f64,
            solver_iterations: iterations,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::scale::ScaleAlgorithm;
    use decamouflage_imaging::{Channels, Size};

    fn smooth_original(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (130.0 + 50.0 * ((x as f64) * 0.11).sin() + 40.0 * ((y as f64) * 0.09).cos()).round()
        })
    }

    fn busy_target(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| ((x * 83 + y * 47) % 256) as f64)
    }

    fn craft(algo: ScaleAlgorithm, src: usize, dst: usize, cfg: &AttackConfig) -> CraftedAttack {
        let scaler = Scaler::new(Size::square(src), Size::square(dst), algo).unwrap();
        craft_attack(&smooth_original(src), &busy_target(dst), &scaler, cfg).unwrap()
    }

    #[test]
    fn nearest_attack_is_near_perfect() {
        let out = craft(ScaleAlgorithm::Nearest, 64, 16, &AttackConfig::default());
        assert!(out.stats.target_deviation_linf <= 0.5, "{:?}", out.stats);
        assert_eq!(out.stats.converged_fraction, 1.0);
        // Only 1/16 of pixels need to change for a 4x nearest downscale.
        assert!(out.stats.perturbed_fraction < 0.10, "{:?}", out.stats);
    }

    #[test]
    fn bilinear_attack_hits_target_within_budget() {
        let out = craft(ScaleAlgorithm::Bilinear, 64, 16, &AttackConfig::default());
        assert_eq!(out.stats.converged_fraction, 1.0);
        // Per-stage epsilon 1.0, two stages + quantisation headroom.
        assert!(out.stats.target_deviation_linf <= 4.0, "{:?}", out.stats);
        // Bilinear factor 4 touches 2 of 4 pixels per axis: at most ~25%
        // of samples may change, plus edge effects.
        assert!(out.stats.perturbed_fraction < 0.35, "{:?}", out.stats);
    }

    #[test]
    fn bicubic_attack_hits_target_within_budget() {
        let out = craft(ScaleAlgorithm::Bicubic, 64, 16, &AttackConfig::default());
        assert_eq!(out.stats.converged_fraction, 1.0);
        assert!(out.stats.target_deviation_linf <= 5.0, "{:?}", out.stats);
    }

    #[test]
    fn attack_image_is_quantised_and_in_range() {
        let out = craft(ScaleAlgorithm::Bilinear, 32, 8, &AttackConfig::default());
        for &v in out.image.planes().iter().flatten() {
            assert!((0.0..=255.0).contains(&v));
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn unquantised_crafting_skips_rounding() {
        let cfg = AttackConfig { quantize: false, ..AttackConfig::default() };
        let out = craft(ScaleAlgorithm::Bilinear, 32, 8, &cfg);
        assert!(out.stats.target_deviation_linf <= 2.5 + 1e-3, "{:?}", out.stats);
    }

    #[test]
    fn attack_preserves_most_of_the_original() {
        let original = smooth_original(64);
        let scaler =
            Scaler::new(Size::square(64), Size::square(16), ScaleAlgorithm::Bilinear).unwrap();
        let out =
            craft_attack(&original, &busy_target(16), &scaler, &AttackConfig::default()).unwrap();
        // The visual-similarity half of the attack contract: perturbation
        // is concentrated on the sampled pixels.
        assert!(out.stats.perturbation_mse < 2500.0, "{:?}", out.stats);
        let unchanged = out
            .image
            .planes()
            .iter()
            .flatten()
            .zip(original.planes().iter().flatten())
            .filter(|(a, o)| (**a - o.round()).abs() < 1.0)
            .count();
        assert!(unchanged * 2 > 64 * 64, "too few unchanged pixels: {unchanged}");
    }

    #[test]
    fn intermediate_image_has_mixed_shape() {
        let out = craft(ScaleAlgorithm::Bilinear, 32, 8, &AttackConfig::default());
        assert_eq!(out.intermediate.width(), 32);
        assert_eq!(out.intermediate.height(), 8);
    }

    #[test]
    fn rgb_attack_works_per_channel() {
        let original = Image::from_fn_rgb(32, 32, |x, y| {
            [120.0 + (x % 5) as f64, 90.0 + (y % 7) as f64, 150.0]
        });
        let target = Image::from_fn_rgb(8, 8, |x, y| {
            [(x * 30) as f64, (y * 30) as f64, ((x + y) * 15) as f64]
        });
        let scaler =
            Scaler::new(Size::square(32), Size::square(8), ScaleAlgorithm::Nearest).unwrap();
        let out = craft_attack(&original, &target, &scaler, &AttackConfig::default()).unwrap();
        assert!(out.stats.target_deviation_linf <= 0.5, "{:?}", out.stats);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let scaler =
            Scaler::new(Size::square(32), Size::square(8), ScaleAlgorithm::Bilinear).unwrap();
        let cfg = AttackConfig::default();
        let good_o = smooth_original(32);
        let good_t = busy_target(8);
        assert!(craft_attack(&smooth_original(31), &good_t, &scaler, &cfg).is_err());
        assert!(craft_attack(&good_o, &busy_target(9), &scaler, &cfg).is_err());
        let rgb_t = Image::zeros(8, 8, Channels::Rgb);
        assert!(matches!(
            craft_attack(&good_o, &rgb_t, &scaler, &cfg),
            Err(AttackError::ChannelMismatch)
        ));
    }

    #[test]
    fn area_scaler_attack_reports_poor_convergence_or_huge_perturbation() {
        // Area scaling is the robust baseline: an "attack" against it must
        // either fail or visibly destroy the original.
        let out = craft(ScaleAlgorithm::Area, 64, 16, &AttackConfig::default());
        let vulnerable = craft(ScaleAlgorithm::Bilinear, 64, 16, &AttackConfig::default());
        assert!(
            out.stats.perturbation_mse > 1.8 * vulnerable.stats.perturbation_mse,
            "area {:?} vs bilinear {:?}",
            out.stats.perturbation_mse,
            vulnerable.stats.perturbation_mse
        );
    }

    #[test]
    fn rejects_bad_epsilon() {
        let scaler =
            Scaler::new(Size::square(32), Size::square(8), ScaleAlgorithm::Bilinear).unwrap();
        let cfg = AttackConfig { epsilon: -2.0, ..AttackConfig::default() };
        assert!(craft_attack(&smooth_original(32), &busy_target(8), &scaler, &cfg).is_err());
    }

    #[test]
    fn non_square_attack_shapes() {
        let original = Image::from_fn_gray(48, 32, |x, y| 100.0 + ((x + y) % 9) as f64);
        let target = Image::from_fn_gray(12, 8, |x, y| ((x * y * 11) % 256) as f64);
        let scaler =
            Scaler::new(Size::new(48, 32), Size::new(12, 8), ScaleAlgorithm::Bilinear).unwrap();
        let out = craft_attack(&original, &target, &scaler, &AttackConfig::default()).unwrap();
        assert_eq!(out.image.size(), Size::new(48, 32));
        assert!(out.stats.target_deviation_linf <= 4.0, "{:?}", out.stats);
    }
}
