//! Box-constrained 1-D quadratic programs for attack crafting.
//!
//! Each sub-problem has the form
//!
//! ```text
//! min_z ½ ‖z − x‖²   s.t.  ‖A z − t‖∞ <= ε,   0 <= z <= 255
//! ```
//!
//! where `x` is a source signal (one image row or column), `t` the target
//! signal and `A` a sparse 1-D scaling operator. The solver runs projected
//! gradient descent on the quadratic-penalty relaxation
//!
//! ```text
//! ½ ‖z − x‖² + (λ/2) Σ max(0, |A z − t|_i − ε)²
//! ```
//!
//! escalating `λ` until the constraint holds. Nearest-neighbour operators
//! (one unit tap per row) are solved exactly in closed form.

use crate::AttackError;
use decamouflage_imaging::scale::CoeffMatrix;

/// Solver parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QpConfig {
    /// Constraint slack `ε`: the attack succeeds when
    /// `‖A z − t‖∞ <= epsilon`.
    pub epsilon: f64,
    /// Additional tolerance accepted on top of `epsilon` when declaring
    /// convergence (guards against floating-point dust).
    pub feasibility_tol: f64,
    /// Maximum penalty escalations.
    pub max_outer_iterations: usize,
    /// Gradient steps per penalty level.
    pub max_inner_iterations: usize,
    /// Initial penalty weight `λ`.
    pub penalty_init: f64,
    /// Multiplicative penalty growth per outer iteration.
    pub penalty_growth: f64,
}

impl Default for QpConfig {
    fn default() -> Self {
        Self {
            epsilon: 1.0,
            feasibility_tol: 1e-3,
            max_outer_iterations: 12,
            max_inner_iterations: 300,
            penalty_init: 10.0,
            penalty_growth: 8.0,
        }
    }
}

impl QpConfig {
    fn validate(&self) -> Result<(), AttackError> {
        if self.epsilon < 0.0 || !self.epsilon.is_finite() {
            return Err(AttackError::InvalidConfig {
                message: format!("epsilon must be >= 0, got {}", self.epsilon),
            });
        }
        if self.max_outer_iterations == 0 || self.max_inner_iterations == 0 {
            return Err(AttackError::InvalidConfig {
                message: "iteration budgets must be positive".into(),
            });
        }
        if self.penalty_init <= 0.0 || self.penalty_growth <= 1.0 {
            return Err(AttackError::InvalidConfig {
                message: "penalty_init must be > 0 and penalty_growth > 1".into(),
            });
        }
        Ok(())
    }
}

/// Result of one 1-D solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solve1d {
    /// The attacked signal `z = x + δ`, inside `[0, 255]`.
    pub signal: Vec<f64>,
    /// Final constraint residual `‖A z − t‖∞`.
    pub residual_linf: f64,
    /// Squared perturbation `‖z − x‖²`.
    pub perturbation_sq: f64,
    /// Whether the residual is within `epsilon + feasibility_tol`.
    pub converged: bool,
    /// Total gradient iterations spent.
    pub iterations: usize,
}

/// Solves one 1-D attack sub-problem.
///
/// # Errors
///
/// * [`AttackError::InvalidConfig`] for unusable solver parameters,
/// * [`AttackError::ShapeMismatch`] if `source`/`target` lengths do not
///   match the operator.
///
/// A non-converged solve is **not** an error: inspect [`Solve1d::converged`]
/// (the two-stage crafter aggregates convergence across all sub-problems).
pub fn solve_1d_attack(
    matrix: &CoeffMatrix,
    source: &[f64],
    target: &[f64],
    config: &QpConfig,
) -> Result<Solve1d, AttackError> {
    config.validate()?;
    if source.len() != matrix.src_len() {
        return Err(AttackError::ShapeMismatch {
            context: "source vs operator input",
            expected: (matrix.src_len(), 1),
            actual: (source.len(), 1),
        });
    }
    if target.len() != matrix.dst_len() {
        return Err(AttackError::ShapeMismatch {
            context: "target vs operator output",
            expected: (matrix.dst_len(), 1),
            actual: (target.len(), 1),
        });
    }

    if let Some(result) = try_nearest_closed_form(matrix, source, target, config) {
        return Ok(result);
    }
    if let Some(result) = try_disjoint_closed_form(matrix, source, target, config) {
        return Ok(result);
    }

    Ok(projected_gradient(matrix, source, target, config))
}

/// Active-set solution when operator rows have pairwise-disjoint supports —
/// true for every integer-factor downscale with factor at least the kernel
/// width (the realistic attack regime). The problem then splits into one
/// tiny single-constraint QP per output element:
///
/// ```text
/// min Σ_j δ_j²  s.t.  |Σ_j w_j (x_j + δ_j) − t| <= ε,  box
/// ```
///
/// whose unconstrained-box solution is `δ_j = w_j r' / Σ w²` (ridge
/// redistribution toward the nearest constraint boundary), with violated box
/// coordinates clamped and the redistribution repeated over the free set.
fn try_disjoint_closed_form(
    matrix: &CoeffMatrix,
    source: &[f64],
    target: &[f64],
    config: &QpConfig,
) -> Option<Solve1d> {
    // Disjointness check.
    let mut seen = vec![false; matrix.src_len()];
    for row in matrix.iter_rows() {
        if row.is_empty() {
            return None;
        }
        for &(j, _) in row {
            if seen[j] {
                return None;
            }
            seen[j] = true;
        }
    }

    let mut signal: Vec<f64> = source.iter().map(|&x| x.clamp(0.0, 255.0)).collect();
    for (i, row) in matrix.iter_rows().enumerate() {
        solve_single_constraint(row, &mut signal, target[i], config.epsilon);
    }
    let residual = residual_linf(matrix, &signal, target);
    let perturbation_sq = signal.iter().zip(source).map(|(z, x)| (z - x) * (z - x)).sum();
    Some(Solve1d {
        converged: residual <= config.epsilon + config.feasibility_tol,
        residual_linf: residual,
        perturbation_sq,
        signal,
        iterations: 0,
    })
}

/// Minimal-norm update of `signal` at the tap positions so that
/// `|Σ w_j z_j − t| <= ε`, honouring the `[0, 255]` box via an active-set
/// loop (at most `taps.len()` rounds).
fn solve_single_constraint(taps: &[(usize, f64)], signal: &mut [f64], t: f64, eps: f64) {
    let mut free: Vec<(usize, f64)> = taps.to_vec();
    let mut fixed: Vec<(usize, f64, f64)> = Vec::new(); // (index, weight, value)
    loop {
        let fixed_part: f64 = fixed.iter().map(|&(_, w, v)| w * v).sum();
        let free_part: f64 = free.iter().map(|&(j, w)| w * signal[j]).sum();
        let r = t - fixed_part - free_part;
        if r.abs() <= eps {
            break;
        }
        let r_prime = r - eps * r.signum();
        let denom: f64 = free.iter().map(|&(_, w)| w * w).sum();
        if denom <= 1e-30 {
            break; // every tap clamped: cannot improve further
        }
        let mut any_clamped = false;
        let mut still_free = Vec::with_capacity(free.len());
        for &(j, w) in &free {
            let candidate = signal[j] + w * r_prime / denom;
            if !(0.0..=255.0).contains(&candidate) {
                let clamped = candidate.clamp(0.0, 255.0);
                signal[j] = clamped;
                fixed.push((j, w, clamped));
                any_clamped = true;
            } else {
                still_free.push((j, w));
            }
        }
        if !any_clamped {
            // Apply the interior update and stop: constraint met exactly.
            for &(j, w) in &still_free {
                signal[j] += w * r_prime / denom;
            }
            break;
        }
        free = still_free;
        if free.is_empty() {
            break;
        }
    }
}

/// Exact solution when every operator row has a single unit tap (nearest
/// neighbour): set each sampled source element to its target value (the
/// untouched elements keep the original, giving the minimal-norm solution).
fn try_nearest_closed_form(
    matrix: &CoeffMatrix,
    source: &[f64],
    target: &[f64],
    config: &QpConfig,
) -> Option<Solve1d> {
    for row in matrix.iter_rows() {
        if row.len() != 1 || (row[0].1 - 1.0).abs() > 1e-12 {
            return None;
        }
    }
    let mut signal: Vec<f64> = source.iter().map(|&x| x.clamp(0.0, 255.0)).collect();
    for (i, row) in matrix.iter_rows().enumerate() {
        signal[row[0].0] = target[i].clamp(0.0, 255.0);
    }
    let residual = residual_linf(matrix, &signal, target);
    let perturbation_sq = signal.iter().zip(source).map(|(z, x)| (z - x) * (z - x)).sum();
    Some(Solve1d {
        residual_linf: residual,
        perturbation_sq,
        converged: residual <= config.epsilon + config.feasibility_tol,
        signal,
        iterations: 0,
    })
}

fn residual_linf(matrix: &CoeffMatrix, signal: &[f64], target: &[f64]) -> f64 {
    matrix.apply(signal).iter().zip(target).map(|(y, t)| (y - t).abs()).fold(0.0, f64::max)
}

/// Largest eigenvalue of `AᵀA` via power iteration (squared spectral norm).
fn spectral_norm_sq(matrix: &CoeffMatrix) -> f64 {
    let n = matrix.src_len();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let mut lambda = 1.0;
    for _ in 0..30 {
        let av = matrix.apply(&v);
        let atav = matrix.apply_transpose(&av);
        let norm: f64 = atav.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-30 {
            return 1.0;
        }
        lambda = norm;
        for (x, y) in v.iter_mut().zip(atav.iter()) {
            *x = y / norm;
        }
    }
    lambda.max(1e-12)
}

fn projected_gradient(
    matrix: &CoeffMatrix,
    source: &[f64],
    target: &[f64],
    config: &QpConfig,
) -> Solve1d {
    let n = source.len();
    let sigma_sq = spectral_norm_sq(matrix);
    let mut z: Vec<f64> = source.iter().map(|&x| x.clamp(0.0, 255.0)).collect();
    let mut lambda = config.penalty_init;
    let mut total_iterations = 0;
    let mut best = z.clone();
    let mut best_residual = residual_linf(matrix, &z, target);

    for _outer in 0..config.max_outer_iterations {
        let step = 1.0 / (1.0 + lambda * sigma_sq);
        for _inner in 0..config.max_inner_iterations {
            total_iterations += 1;
            // Residual and hinge excess.
            let y = matrix.apply(&z);
            let mut hinge = vec![0.0; y.len()];
            let mut max_violation = 0.0f64;
            for (i, (yi, ti)) in y.iter().zip(target).enumerate() {
                let r = yi - ti;
                let excess = r.abs() - config.epsilon;
                if excess > 0.0 {
                    hinge[i] = r.signum() * excess;
                    max_violation = max_violation.max(excess);
                }
            }
            if max_violation <= config.feasibility_tol {
                break;
            }
            let back = matrix.apply_transpose(&hinge);
            for j in 0..n {
                let grad = (z[j] - source[j]) + lambda * back[j];
                z[j] = (z[j] - step * grad).clamp(0.0, 255.0);
            }
        }
        let residual = residual_linf(matrix, &z, target);
        if residual < best_residual {
            best_residual = residual;
            best.copy_from_slice(&z);
        }
        if residual <= config.epsilon + config.feasibility_tol {
            break;
        }
        lambda *= config.penalty_growth;
    }

    let perturbation_sq = best.iter().zip(source).map(|(zv, xv)| (zv - xv) * (zv - xv)).sum();
    Solve1d {
        converged: best_residual <= config.epsilon + config.feasibility_tol,
        residual_linf: best_residual,
        perturbation_sq,
        signal: best,
        iterations: total_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::scale::{CoeffMatrix, ScaleAlgorithm};

    fn solve(algo: ScaleAlgorithm, src: &[f64], dst: &[f64], cfg: &QpConfig) -> Solve1d {
        let m = CoeffMatrix::build(algo, src.len(), dst.len()).unwrap();
        solve_1d_attack(&m, src, dst, cfg).unwrap()
    }

    #[test]
    fn nearest_fast_path_is_exact() {
        let src = vec![100.0; 16];
        let dst: Vec<f64> = (0..4).map(|i| (i * 60) as f64).collect();
        let out = solve(ScaleAlgorithm::Nearest, &src, &dst, &QpConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0, "closed form must not iterate");
        assert_eq!(out.residual_linf, 0.0);
        // Only 4 of 16 pixels perturbed.
        let changed = out.signal.iter().filter(|&&v| v != 100.0).count();
        assert!(changed <= 4);
    }

    #[test]
    fn bilinear_solve_reaches_feasibility() {
        let src: Vec<f64> = (0..32).map(|i| 90.0 + (i % 5) as f64).collect();
        let dst: Vec<f64> = (0..8).map(|i| ((i * 97) % 256) as f64).collect();
        let out = solve(ScaleAlgorithm::Bilinear, &src, &dst, &QpConfig::default());
        assert!(out.converged, "residual {}", out.residual_linf);
        assert!(out.residual_linf <= 1.0 + 1e-3);
    }

    #[test]
    fn bicubic_solve_reaches_feasibility() {
        let src: Vec<f64> = (0..64).map(|i| 120.0 + ((i * 13) % 11) as f64).collect();
        let dst: Vec<f64> = (0..16).map(|i| ((i * 53) % 256) as f64).collect();
        let out = solve(ScaleAlgorithm::Bicubic, &src, &dst, &QpConfig::default());
        assert!(out.converged, "residual {}", out.residual_linf);
    }

    #[test]
    fn solution_respects_box_constraints() {
        let src: Vec<f64> = vec![3.0; 24];
        let dst: Vec<f64> = vec![250.0; 6];
        let out = solve(ScaleAlgorithm::Bilinear, &src, &dst, &QpConfig::default());
        for &v in &out.signal {
            assert!((0.0..=255.0).contains(&v), "sample {v} escaped the box");
        }
    }

    #[test]
    fn identity_target_needs_no_perturbation() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 16, 4).unwrap();
        let src: Vec<f64> = (0..16).map(|i| (i * 10) as f64).collect();
        let dst = m.apply(&src);
        let out = solve_1d_attack(&m, &src, &dst, &QpConfig::default()).unwrap();
        assert!(out.converged);
        assert!(out.perturbation_sq < 1e-9, "perturbation {}", out.perturbation_sq);
    }

    #[test]
    fn perturbation_is_small_relative_to_worst_case() {
        // The solver should perturb far less than rewriting every pixel.
        let src: Vec<f64> = vec![128.0; 32];
        let dst: Vec<f64> = (0..8).map(|i| if i % 2 == 0 { 30.0 } else { 220.0 }).collect();
        let out = solve(ScaleAlgorithm::Bilinear, &src, &dst, &QpConfig::default());
        assert!(out.converged);
        let untouched = out.signal.iter().filter(|&&v| (v - 128.0).abs() < 1e-9).count();
        assert!(untouched >= 8, "only {untouched} pixels untouched");
    }

    #[test]
    fn area_operator_resists_attack_visually() {
        // Area scaling touches every pixel, so hitting an adversarial target
        // forces enormous perturbation. The solve may converge, but the
        // perturbation must be large — the robustness argument.
        let src: Vec<f64> = vec![128.0; 32];
        let dst: Vec<f64> = (0..8).map(|i| if i % 2 == 0 { 0.0 } else { 255.0 }).collect();
        let out = solve(ScaleAlgorithm::Area, &src, &dst, &QpConfig::default());
        let bilinear = solve(ScaleAlgorithm::Bilinear, &src, &dst, &QpConfig::default());
        assert!(
            out.perturbation_sq > 1.9 * bilinear.perturbation_sq,
            "area {} vs bilinear {}",
            out.perturbation_sq,
            bilinear.perturbation_sq
        );
    }

    #[test]
    fn infeasible_problem_reports_nonconvergence() {
        // Two outputs demand contradictory values of the same source pixel.
        // 2 -> 2 bilinear is the identity... craft contradiction instead via
        // a tiny epsilon and an operator averaging all pixels to one output
        // that must equal two different values: use 2 -> 1 area with two
        // stacked targets is impossible here, so instead demand a value
        // outside the box: target 400 cannot be met with samples <= 255.
        let m = CoeffMatrix::build(ScaleAlgorithm::Area, 4, 1).unwrap();
        let src = vec![10.0; 4];
        let out = solve_1d_attack(&m, &src, &[400.0], &QpConfig::default()).unwrap();
        assert!(!out.converged);
        assert!(out.residual_linf >= 145.0 - 1e-6);
    }

    #[test]
    fn rejects_bad_shapes() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 8, 2).unwrap();
        assert!(solve_1d_attack(&m, &[0.0; 7], &[0.0; 2], &QpConfig::default()).is_err());
        assert!(solve_1d_attack(&m, &[0.0; 8], &[0.0; 3], &QpConfig::default()).is_err());
    }

    #[test]
    fn rejects_bad_config() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 8, 2).unwrap();
        let src = [0.0; 8];
        let dst = [0.0; 2];
        for cfg in [
            QpConfig { epsilon: -1.0, ..QpConfig::default() },
            QpConfig { max_outer_iterations: 0, ..QpConfig::default() },
            QpConfig { max_inner_iterations: 0, ..QpConfig::default() },
            QpConfig { penalty_init: 0.0, ..QpConfig::default() },
            QpConfig { penalty_growth: 1.0, ..QpConfig::default() },
        ] {
            assert!(solve_1d_attack(&m, &src, &dst, &cfg).is_err());
        }
    }

    #[test]
    fn source_outside_box_is_projected_in() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 8, 2).unwrap();
        let src: Vec<f64> = vec![-50.0, 300.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0];
        let dst = m.apply(&src.iter().map(|&v| v.clamp(0.0, 255.0)).collect::<Vec<f64>>());
        let out = solve_1d_attack(&m, &src, &dst, &QpConfig::default()).unwrap();
        for &v in &out.signal {
            assert!((0.0..=255.0).contains(&v));
        }
    }

    #[test]
    fn overlapping_supports_fall_back_to_projected_gradient() {
        // Bilinear 16 -> 10 (factor 1.6) has overlapping taps, so the
        // closed forms bail out and the penalty PGD must solve it. Build a
        // feasible target from a known in-box signal.
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 16, 10).unwrap();
        let hidden: Vec<f64> = (0..16).map(|i| ((i * 37) % 200) as f64 + 20.0).collect();
        let dst = m.apply(&hidden);
        let src: Vec<f64> = vec![128.0; 16];
        let out = solve_1d_attack(&m, &src, &dst, &QpConfig::default()).unwrap();
        assert!(out.iterations > 0, "expected the iterative path");
        assert!(out.converged, "residual {}", out.residual_linf);
        for &v in &out.signal {
            assert!((0.0..=255.0).contains(&v));
        }
    }

    #[test]
    fn pgd_perturbation_stays_moderate_on_feasible_targets() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bicubic, 24, 16).unwrap();
        let hidden: Vec<f64> = (0..24).map(|i| 100.0 + ((i * 29) % 71) as f64).collect();
        let dst = m.apply(&hidden);
        let out = solve_1d_attack(&m, &hidden, &dst, &QpConfig::default()).unwrap();
        // Source already maps to the target: PGD must not move.
        assert!(out.perturbation_sq < 1e-9, "perturbation {}", out.perturbation_sq);
    }

    #[test]
    fn larger_epsilon_never_increases_perturbation() {
        let src: Vec<f64> = (0..32).map(|i| 100.0 + (i % 3) as f64).collect();
        let dst: Vec<f64> = (0..8).map(|i| ((i * 31) % 200) as f64 + 25.0).collect();
        let tight = solve(
            ScaleAlgorithm::Bilinear,
            &src,
            &dst,
            &QpConfig { epsilon: 0.5, ..QpConfig::default() },
        );
        let loose = solve(
            ScaleAlgorithm::Bilinear,
            &src,
            &dst,
            &QpConfig { epsilon: 8.0, ..QpConfig::default() },
        );
        assert!(loose.perturbation_sq <= tight.perturbation_sq + 1e-6);
    }
}
