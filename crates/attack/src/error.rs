use std::fmt;

/// Error type for attack crafting.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// Original/target/scaler shapes are inconsistent.
    ShapeMismatch {
        /// What was being matched, e.g. `"original vs scaler source"`.
        context: &'static str,
        /// Expected shape `(width, height)`.
        expected: (usize, usize),
        /// Actual shape.
        actual: (usize, usize),
    },
    /// Original and target images use different channel layouts.
    ChannelMismatch,
    /// A configuration value was unusable.
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// The QP solver failed to reach feasibility within its iteration
    /// budget for at least one 1-D sub-problem.
    SolverDiverged {
        /// Worst residual `‖A z − t‖∞` still outstanding.
        residual: f64,
        /// Feasibility tolerance that was requested.
        epsilon: f64,
    },
    /// An underlying imaging operation failed.
    Imaging(decamouflage_imaging::ImagingError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { context, expected, actual } => write!(
                f,
                "shape mismatch ({context}): expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            Self::ChannelMismatch => {
                write!(f, "original and target images must share a channel layout")
            }
            Self::InvalidConfig { message } => write!(f, "invalid attack config: {message}"),
            Self::SolverDiverged { residual, epsilon } => {
                write!(f, "qp solver diverged: residual {residual:.4} above epsilon {epsilon:.4}")
            }
            Self::Imaging(err) => write!(f, "imaging error: {err}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Imaging(err) => Some(err),
            _ => None,
        }
    }
}

impl From<decamouflage_imaging::ImagingError> for AttackError {
    fn from(err: decamouflage_imaging::ImagingError) -> Self {
        Self::Imaging(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_for_all_variants() {
        let variants = vec![
            AttackError::ShapeMismatch { context: "x", expected: (1, 2), actual: (3, 4) },
            AttackError::ChannelMismatch,
            AttackError::InvalidConfig { message: "epsilon < 0".into() },
            AttackError::SolverDiverged { residual: 9.0, epsilon: 1.0 },
            AttackError::Imaging(decamouflage_imaging::ImagingError::InvalidDimensions {
                width: 0,
                height: 0,
            }),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn imaging_source_preserved() {
        let e = AttackError::from(decamouflage_imaging::ImagingError::InvalidDimensions {
            width: 0,
            height: 1,
        });
        assert!(std::error::Error::source(&e).is_some());
    }
}
