//! Adaptive attack variants for the paper's discussion-section experiments.
//!
//! An adaptive attacker who knows Decamouflage's methods can try to trade
//! attack strength for detectability. Two practical knobs are implemented:
//!
//! * [`blend_target`] — *partial-strength* attacks: pull the target towards
//!   the benign downscale `scale(O)` by a blend factor, shrinking the
//!   perturbation (and the detector's signal) at the cost of target
//!   fidelity.
//! * [`jitter_camouflage`] — add seeded noise to the pixels the scaler
//!   *ignores*. The downscaled output is untouched (the attack still
//!   works), but the noise spreads spectral energy to mask the periodic
//!   CSP peaks — while simultaneously *increasing* the round-trip
//!   difference that the scaling detector measures. The ensemble is
//!   hardened exactly because these two detectors pull in opposite
//!   directions.

use crate::AttackError;
use decamouflage_imaging::scale::Scaler;
use decamouflage_imaging::Image;

/// Blends the attack target towards the benign downscale:
/// `T' = alpha * T + (1 - alpha) * scale(O)`.
///
/// `alpha = 1` is the full-strength attack, `alpha = 0` degenerates to a
/// benign image. Crafting against `T'` yields the partial-strength attack.
///
/// # Errors
///
/// Returns [`AttackError::InvalidConfig`] when `alpha` is outside `[0, 1]`
/// and propagates shape errors from the scaler.
pub fn blend_target(
    original: &Image,
    target: &Image,
    scaler: &Scaler,
    alpha: f64,
) -> Result<Image, AttackError> {
    if !(0.0..=1.0).contains(&alpha) {
        return Err(AttackError::InvalidConfig {
            message: format!("blend alpha must be in [0, 1], got {alpha}"),
        });
    }
    let benign_down = scaler.apply(original)?;
    if benign_down.shape() != target.shape() {
        return Err(AttackError::ShapeMismatch {
            context: "target vs scaler destination",
            expected: (benign_down.width(), benign_down.height()),
            actual: (target.width(), target.height()),
        });
    }
    Ok(target
        .zip_map(&benign_down, |t, b| alpha * t + (1.0 - alpha) * b)
        .expect("shapes checked above"))
}

/// Adds uniform noise of amplitude `strength` (in sample units) to every
/// source pixel the scaler does **not** sample, leaving the downscaled
/// output bit-identical. Deterministic for a given `seed`.
///
/// # Errors
///
/// Returns [`AttackError::ShapeMismatch`] if `attack` does not match the
/// scaler's source size and [`AttackError::InvalidConfig`] for a negative
/// or non-finite `strength`.
pub fn jitter_camouflage(
    attack: &Image,
    scaler: &Scaler,
    strength: f64,
    seed: u64,
) -> Result<Image, AttackError> {
    if !(strength >= 0.0 && strength.is_finite()) {
        return Err(AttackError::InvalidConfig {
            message: format!("jitter strength must be >= 0, got {strength}"),
        });
    }
    let src = scaler.src_size();
    if attack.size() != src {
        return Err(AttackError::ShapeMismatch {
            context: "attack vs scaler source",
            expected: (src.width, src.height),
            actual: (attack.width(), attack.height()),
        });
    }
    // Mark the rows/columns the scaler reads.
    let mut col_touched = vec![false; src.width];
    for &j in &scaler.horizontal_coeffs().touched_sources() {
        col_touched[j] = true;
    }
    let mut row_touched = vec![false; src.height];
    for &j in &scaler.vertical_coeffs().touched_sources() {
        row_touched[j] = true;
    }

    let mut rng = SplitMix64::new(seed);
    let mut out = attack.clone();
    for (y, &row_used) in row_touched.iter().enumerate() {
        for (x, &col_used) in col_touched.iter().enumerate() {
            // A pixel influences the output iff both its row and column are
            // sampled; jitter only the fully ignored ones.
            if row_used && col_used {
                continue;
            }
            for c in 0..attack.channel_count() {
                let noise = (rng.next_f64() * 2.0 - 1.0) * strength;
                let v = (out.get(x, y, c) + noise).clamp(0.0, 255.0).round();
                out.set(x, y, c, v);
            }
        }
    }
    Ok(out)
}

/// SplitMix64 PRNG — tiny, seedable and reproducible; enough for noise
/// injection without pulling a dependency into the attack crate.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::ScaleAlgorithm;
    use decamouflage_imaging::Size;

    fn original(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| 120.0 + ((x + 2 * y) % 17) as f64)
    }

    fn target(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| ((x * 71 + y * 37) % 256) as f64)
    }

    fn scaler(src: usize, dst: usize) -> Scaler {
        Scaler::new(Size::square(src), Size::square(dst), ScaleAlgorithm::Bilinear).unwrap()
    }

    #[test]
    fn blend_alpha_zero_is_benign_downscale() {
        let s = scaler(32, 8);
        let o = original(32);
        let blended = blend_target(&o, &target(8), &s, 0.0).unwrap();
        let benign = s.apply(&o).unwrap();
        assert!(blended.approx_eq(&benign, 1e-12));
    }

    #[test]
    fn blend_alpha_one_is_full_target() {
        let s = scaler(32, 8);
        let t = target(8);
        let blended = blend_target(&original(32), &t, &s, 1.0).unwrap();
        assert!(blended.approx_eq(&t, 1e-12));
    }

    #[test]
    fn blend_midpoint_interpolates() {
        let s = scaler(32, 8);
        let o = original(32);
        let t = target(8);
        let mid = blend_target(&o, &t, &s, 0.5).unwrap();
        let benign = s.apply(&o).unwrap();
        for ((m, tv), bv) in mid
            .planes()
            .iter()
            .flatten()
            .zip(t.planes().iter().flatten())
            .zip(benign.planes().iter().flatten())
        {
            assert!((m - 0.5 * (tv + bv)).abs() < 1e-12);
        }
    }

    #[test]
    fn blend_rejects_bad_alpha_and_shape() {
        let s = scaler(32, 8);
        assert!(blend_target(&original(32), &target(8), &s, -0.1).is_err());
        assert!(blend_target(&original(32), &target(8), &s, 1.1).is_err());
        assert!(blend_target(&original(32), &target(9), &s, 0.5).is_err());
    }

    #[test]
    fn weaker_blend_shrinks_perturbation() {
        let s = scaler(48, 12);
        let o = original(48);
        let t = target(12);
        let cfg = AttackConfig::default();
        let strong = craft_attack(&o, &t, &s, &cfg).unwrap();
        let weak_target = blend_target(&o, &t, &s, 0.3).unwrap();
        let weak = craft_attack(&o, &weak_target, &s, &cfg).unwrap();
        assert!(
            weak.stats.perturbation_mse < strong.stats.perturbation_mse,
            "weak {} vs strong {}",
            weak.stats.perturbation_mse,
            strong.stats.perturbation_mse
        );
    }

    #[test]
    fn jitter_preserves_downscaled_output() {
        let s = scaler(48, 12);
        let o = original(48);
        let t = target(12);
        let crafted = craft_attack(&o, &t, &s, &AttackConfig::default()).unwrap();
        let jittered = jitter_camouflage(&crafted.image, &s, 12.0, 7).unwrap();
        let before = s.apply(&crafted.image).unwrap();
        let after = s.apply(&jittered).unwrap();
        assert!(after.approx_eq(&before, 1e-9), "jitter leaked into the downscaled output");
        // And it actually changed something.
        assert!(!jittered.approx_eq(&crafted.image, 0.0));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let s = scaler(32, 8);
        let crafted =
            craft_attack(&original(32), &target(8), &s, &AttackConfig::default()).unwrap();
        let a = jitter_camouflage(&crafted.image, &s, 5.0, 42).unwrap();
        let b = jitter_camouflage(&crafted.image, &s, 5.0, 42).unwrap();
        let c = jitter_camouflage(&crafted.image, &s, 5.0, 43).unwrap();
        assert_eq!(a, b);
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn jitter_zero_strength_still_quantises_only() {
        let s = scaler(32, 8);
        let crafted =
            craft_attack(&original(32), &target(8), &s, &AttackConfig::default()).unwrap();
        let out = jitter_camouflage(&crafted.image, &s, 0.0, 1).unwrap();
        // Quantised attack image + zero noise => unchanged.
        assert!(out.approx_eq(&crafted.image, 0.0));
    }

    #[test]
    fn jitter_validates_input() {
        let s = scaler(32, 8);
        let img = original(32);
        assert!(jitter_camouflage(&img, &s, -1.0, 0).is_err());
        assert!(jitter_camouflage(&img, &s, f64::NAN, 0).is_err());
        assert!(jitter_camouflage(&original(31), &s, 1.0, 0).is_err());
    }

    #[test]
    fn splitmix_is_uniformish() {
        let mut rng = SplitMix64::new(123);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
