//! Attack-success verification.
//!
//! The paper defines two success criteria for an attack image `A` crafted
//! from original `O` towards target `T` (§2.1):
//!
//! 1. `A ≈ O` — the attack image is visually indistinguishable from the
//!    original,
//! 2. `scale(A) ≈ T` — the downscaled output is recognised as the target.
//!
//! This module checks both quantitatively. It is used by the
//! `ablate-robust-scaler` experiment (attack success per scaling algorithm)
//! and by the discussion experiment on images that evade detection: an
//! evading image that fails criterion 2 has "lost the attacker's original
//! purpose".

use crate::AttackError;
use decamouflage_imaging::scale::Scaler;
use decamouflage_imaging::Image;

/// Thresholds for declaring an attack successful.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyConfig {
    /// Maximum allowed `‖scale(A) − T‖∞` for criterion 2.
    pub target_tolerance_linf: f64,
    /// Maximum allowed mean-squared perturbation `‖A − O‖²/n` for
    /// criterion 1 (visual stealth). The default is generous: perturbation
    /// concentrated on a sparse pixel set keeps MSE low even for strong
    /// attacks.
    pub stealth_mse_budget: f64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self { target_tolerance_linf: 8.0, stealth_mse_budget: 2500.0 }
    }
}

/// Quantified attack outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackVerification {
    /// Measured `‖scale(A) − T‖∞`.
    pub target_deviation_linf: f64,
    /// Measured mean-squared deviation of `scale(A)` from `T`.
    pub target_mse: f64,
    /// Measured `‖A − O‖²/n`.
    pub perturbation_mse: f64,
    /// Criterion 2: the downscaled attack matches the target.
    pub scales_to_target: bool,
    /// Criterion 1: the attack stays visually close to the original.
    pub visually_stealthy: bool,
}

impl AttackVerification {
    /// Whether both success criteria hold.
    pub fn is_successful(&self) -> bool {
        self.scales_to_target && self.visually_stealthy
    }
}

/// Verifies an attack image against both success criteria.
///
/// # Errors
///
/// Returns [`AttackError::ShapeMismatch`] when `original`/`attack` do not
/// match the scaler source size or `target` its destination size, and
/// propagates imaging failures.
pub fn verify_attack(
    original: &Image,
    attack: &Image,
    target: &Image,
    scaler: &Scaler,
    config: &VerifyConfig,
) -> Result<AttackVerification, AttackError> {
    let src = scaler.src_size();
    let dst = scaler.dst_size();
    for (img, context) in [(original, "original"), (attack, "attack")] {
        if img.size() != src {
            return Err(AttackError::ShapeMismatch {
                context,
                expected: (src.width, src.height),
                actual: (img.width(), img.height()),
            });
        }
    }
    if target.size() != dst {
        return Err(AttackError::ShapeMismatch {
            context: "target",
            expected: (dst.width, dst.height),
            actual: (target.width(), target.height()),
        });
    }
    if original.channels() != attack.channels() || original.channels() != target.channels() {
        return Err(AttackError::ChannelMismatch);
    }

    let downscaled = scaler.apply(attack)?;
    let mut deviation_linf = 0.0f64;
    let mut deviation_sq = 0.0f64;
    for (d, t) in downscaled.planes().iter().flatten().zip(target.planes().iter().flatten()) {
        let e = (d - t).abs();
        deviation_linf = deviation_linf.max(e);
        deviation_sq += e * e;
    }
    let target_mse = deviation_sq / (target.plane_len() * target.channel_count()) as f64;

    let mut perturbation_sq = 0.0f64;
    for (a, o) in attack.planes().iter().flatten().zip(original.planes().iter().flatten()) {
        let e = a - o;
        perturbation_sq += e * e;
    }
    let perturbation_mse = perturbation_sq / (attack.plane_len() * attack.channel_count()) as f64;

    Ok(AttackVerification {
        target_deviation_linf: deviation_linf,
        target_mse,
        perturbation_mse,
        scales_to_target: deviation_linf <= config.target_tolerance_linf,
        visually_stealthy: perturbation_mse <= config.stealth_mse_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::ScaleAlgorithm;
    use decamouflage_imaging::{Channels, Size};

    fn original(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| 110.0 + ((x * 3 + y * 5) % 23) as f64)
    }

    fn target(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| ((x * 41 + y * 59) % 256) as f64)
    }

    #[test]
    fn crafted_attack_verifies_successfully() {
        let scaler =
            Scaler::new(Size::square(48), Size::square(12), ScaleAlgorithm::Bilinear).unwrap();
        let o = original(48);
        let t = target(12);
        let crafted = craft_attack(&o, &t, &scaler, &AttackConfig::default()).unwrap();
        let v = verify_attack(&o, &crafted.image, &t, &scaler, &VerifyConfig::default()).unwrap();
        assert!(v.scales_to_target, "{v:?}");
        assert!(v.visually_stealthy, "{v:?}");
        assert!(v.is_successful());
    }

    #[test]
    fn benign_image_does_not_scale_to_target() {
        let scaler =
            Scaler::new(Size::square(48), Size::square(12), ScaleAlgorithm::Bilinear).unwrap();
        let o = original(48);
        let t = target(12);
        let v = verify_attack(&o, &o, &t, &scaler, &VerifyConfig::default()).unwrap();
        assert!(!v.scales_to_target, "{v:?}");
        assert!(v.visually_stealthy); // zero perturbation
        assert!(!v.is_successful());
        assert_eq!(v.perturbation_mse, 0.0);
    }

    #[test]
    fn blatant_overwrite_is_not_stealthy() {
        let scaler =
            Scaler::new(Size::square(48), Size::square(12), ScaleAlgorithm::Bilinear).unwrap();
        let o = original(48);
        let t = target(12);
        // "Attack" = pasting an upscaled target over the original entirely.
        let up = Scaler::new(Size::square(12), Size::square(48), ScaleAlgorithm::Nearest)
            .unwrap()
            .apply(&t)
            .unwrap();
        let v = verify_attack(&o, &up, &t, &scaler, &VerifyConfig::default()).unwrap();
        assert!(!v.visually_stealthy, "{v:?}");
    }

    #[test]
    fn shape_and_channel_validation() {
        let scaler =
            Scaler::new(Size::square(16), Size::square(4), ScaleAlgorithm::Nearest).unwrap();
        let o = original(16);
        let t = target(4);
        let cfg = VerifyConfig::default();
        assert!(verify_attack(&original(15), &o, &t, &scaler, &cfg).is_err());
        assert!(verify_attack(&o, &original(15), &t, &scaler, &cfg).is_err());
        assert!(verify_attack(&o, &o, &target(5), &scaler, &cfg).is_err());
        let rgb = Image::zeros(16, 16, Channels::Rgb);
        assert!(verify_attack(&o, &rgb, &t, &scaler, &cfg).is_err());
    }

    #[test]
    fn deviation_metrics_are_reported() {
        let scaler =
            Scaler::new(Size::square(16), Size::square(4), ScaleAlgorithm::Nearest).unwrap();
        let o = original(16);
        let t = target(4);
        let v = verify_attack(&o, &o, &t, &scaler, &VerifyConfig::default()).unwrap();
        assert!(v.target_deviation_linf > 0.0);
        assert!(v.target_mse > 0.0);
    }
}
