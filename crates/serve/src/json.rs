//! Tiny JSON rendering helpers (the workspace is dependency-free; the
//! response bodies are hand-assembled like the telemetry exporters).

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            control if (control as u32) < 0x20 => {
                escaped.push_str(&format!("\\u{:04x}", control as u32));
            }
            other => escaped.push(other),
        }
    }
    escaped
}

/// Renders an `f64` as a JSON value; non-finite values become strings
/// (`"NaN"`, `"+Inf"`, `"-Inf"`), matching the telemetry JSON exporter.
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else if value.is_nan() {
        "\"NaN\"".to_string()
    } else if value > 0.0 {
        "\"+Inf\"".to_string()
    } else {
        "\"-Inf\"".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn numbers_render_like_the_telemetry_exporter() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "\"NaN\"");
        assert_eq!(number(f64::INFINITY), "\"+Inf\"");
        assert_eq!(number(f64::NEG_INFINITY), "\"-Inf\"");
    }
}
