//! The overload-safe, deadline-bounded HTTP server.
//!
//! # Admission control
//!
//! Every connection passes one admission decision on the accept thread:
//!
//! 1. **Overload shed** — when the in-flight count has reached
//!    `handlers + queue_limit`, *or* the existing WorkerPool backlog
//!    gauge (`decam_pool_queue_depth`) sits past `queue_limit`, the
//!    connection is answered `503 + Retry-After` and closed without
//!    touching a handler. The server sheds instead of queueing
//!    unboundedly — latency for admitted requests stays bounded.
//! 2. **Admit** — the connection is handed to a handler on the shared
//!    [`WorkerPool`] with a freshly-armed per-request [`CancelToken`].
//!
//! # Deadlines
//!
//! The token's deadline drives both socket timeouts (a stalled peer
//! cannot hold a handler past it) and the cooperative between-stage
//! checks in the pipeline (`decode → score → vote`, and between stream
//! chunks on `/scan`). Expiry after the request was read answers `504`;
//! a peer that never finishes sending gets `408`. Either way the
//! handler slot is released promptly — quarantined, never leaked.
//!
//! # Drain
//!
//! On SIGTERM (or [`ServerHandle::shutdown`]): `/healthz` flips to
//! not-ready **first**, new work is shed with a typed `503 draining`
//! while a short lame-duck window keeps the socket observable, then the
//! listener closes and in-flight requests get up to the drain deadline
//! to finish. [`Server::run`] returns a [`DrainReport`] saying whether
//! the drain completed.

use crate::http::{
    parse_head, read_head, read_sized_body, BodyPlan, ChunkedReader, HttpError, RequestHead,
    Response,
};
use crate::metrics::ServiceMetrics;
use crate::service::{decode_image_into, record_decode, DecodeFailure, DetectionService};
use crate::shutdown_signal;
use decamouflage_core::parallel::WorkerPool;
use decamouflage_core::stream::{BufferPool, SourceItem};
use decamouflage_core::{CancelToken, ImageSource, ScoreError, ScoreFault};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Handler threads on the worker pool.
    pub handlers: usize,
    /// Admission bound past the handlers: the maximum accepted-but-
    /// unfinished connections is `handlers + queue_limit`, and a
    /// WorkerPool backlog exceeding `queue_limit` also sheds.
    pub queue_limit: usize,
    /// Per-request deadline (socket timeouts + between-stage checks).
    pub deadline: Duration,
    /// Maximum time in-flight requests get to finish after a drain
    /// starts. Should comfortably exceed `deadline`.
    pub drain_deadline: Duration,
    /// Lame-duck window after a drain starts during which the listener
    /// stays open (serving not-ready `/healthz`, shedding work with
    /// `503 draining`) so orchestrators observe the flip.
    pub lame_duck: Duration,
    /// Request-body cap (`413` past it), cumulative across `/scan`
    /// chunks.
    pub max_body_bytes: usize,
    /// Request-head cap (`431` past it).
    pub max_header_bytes: usize,
    /// Images resident at once while streaming `/scan` bodies.
    pub scan_chunk_size: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            handlers: 4,
            queue_limit: 16,
            deadline: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(10),
            lame_duck: Duration::from_millis(200),
            max_body_bytes: 8 * 1024 * 1024,
            max_header_bytes: 16 * 1024,
            scan_chunk_size: 8,
        }
    }
}

/// Shared mutable server state (accept thread + handlers + handle).
#[derive(Debug, Default)]
struct ServerState {
    in_flight: AtomicUsize,
    draining: AtomicBool,
    shutdown: AtomicBool,
}

/// How a drain ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every in-flight request finished before the deadline.
    pub drained: bool,
    /// Requests still in flight when the server gave up waiting.
    pub in_flight_at_exit: usize,
}

/// A clonable remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Requests a graceful drain, exactly as SIGTERM would.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Admitted-but-unfinished connections right now.
    pub fn in_flight(&self) -> usize {
        self.state.in_flight.load(Ordering::SeqCst)
    }

    /// Whether the server has started draining.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }
}

/// Everything one connection handler needs, cloned per admission.
struct ConnContext {
    service: Arc<DetectionService>,
    state: Arc<ServerState>,
    metrics: Arc<ServiceMetrics>,
    config: ServerConfig,
    token: CancelToken,
    accepted_at: Instant,
}

/// Releases the admission slot when the handler finishes — including
/// by panic (the pool recovers the panic; this guard's `Drop` still
/// runs during unwind, so a crashed handler never leaks its slot).
struct InFlightGuard {
    state: Arc<ServerState>,
    metrics: Arc<ServiceMetrics>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.state.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.metrics.in_flight.dec();
    }
}

/// The bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<DetectionService>,
    config: ServerConfig,
    state: Arc<ServerState>,
    metrics: Arc<ServiceMetrics>,
    pool: WorkerPool,
}

impl Server {
    /// Binds the listener and spawns the handler pool.
    ///
    /// Telemetry: the server records into the process-global handle; a
    /// caller that wants `/metrics` to be live must have installed an
    /// enabled handle (the `serve` subcommand always does).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind(config: ServerConfig, service: DetectionService) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let telemetry = decamouflage_telemetry::global();
        Ok(Self {
            listener,
            service: Arc::new(service),
            pool: WorkerPool::new(config.handlers.max(1)),
            config,
            state: Arc::new(ServerState::default()),
            metrics: Arc::new(ServiceMetrics::new(&telemetry)),
        })
    }

    /// The bound address (read this for the ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A clonable handle for shutdown/observation from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { state: Arc::clone(&self.state) }
    }

    fn max_in_flight(&self) -> usize {
        self.config.handlers + self.config.queue_limit
    }

    /// Serves until SIGTERM or [`ServerHandle::shutdown`], then drains.
    ///
    /// # Errors
    ///
    /// Currently infallible at runtime (accept errors back off and
    /// retry); the `Result` reserves the right to surface fatal
    /// listener failures.
    pub fn run(self) -> io::Result<DrainReport> {
        let poll = Duration::from_millis(2);
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || shutdown_signal::seen() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (e.g. EMFILE under a
                // connection storm): back off instead of spinning.
                Err(_) => std::thread::sleep(poll),
            }
        }

        // Drain sequence. Readiness flips before anything else so load
        // balancers stop routing here while we are still observable.
        self.state.draining.store(true, Ordering::SeqCst);
        let drain_started = Instant::now();
        loop {
            let elapsed = drain_started.elapsed();
            if elapsed >= self.config.drain_deadline {
                break;
            }
            let idle = self.state.in_flight.load(Ordering::SeqCst) == 0;
            if idle && elapsed >= self.config.lame_duck {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(poll),
            }
        }
        // Stop accepting; give stragglers the rest of the deadline.
        drop(self.listener);
        while self.state.in_flight.load(Ordering::SeqCst) > 0
            && drain_started.elapsed() < self.config.drain_deadline
        {
            std::thread::sleep(poll);
        }
        let in_flight_at_exit = self.state.in_flight.load(Ordering::SeqCst);
        Ok(DrainReport { drained: in_flight_at_exit == 0, in_flight_at_exit })
    }

    /// The per-connection admission decision (accept thread).
    fn admit(&self, stream: TcpStream) {
        let accepted_at = Instant::now();
        let in_flight = self.state.in_flight.load(Ordering::SeqCst);
        let backlog = self.metrics.pool_queue_depth.value();
        if in_flight >= self.max_in_flight() || backlog > self.config.queue_limit as f64 {
            self.metrics.shed("overload");
            reject(stream, overloaded_response());
            return;
        }
        self.state.in_flight.fetch_add(1, Ordering::SeqCst);
        self.metrics.in_flight.inc();
        let ctx = ConnContext {
            service: Arc::clone(&self.service),
            state: Arc::clone(&self.state),
            metrics: Arc::clone(&self.metrics),
            config: self.config.clone(),
            token: CancelToken::expiring_in(self.config.deadline),
            accepted_at,
        };
        let guard =
            InFlightGuard { state: Arc::clone(&self.state), metrics: Arc::clone(&self.metrics) };
        self.pool.spawn(move || {
            let _guard = guard;
            handle_connection(stream, &ctx);
        });
    }
}

/// The typed overload response.
fn overloaded_response() -> Response {
    Response::json(503, "{\"error\":\"overloaded\"}".into()).with_retry_after(1)
}

/// The typed draining response.
fn draining_response() -> Response {
    Response::json(503, "{\"error\":\"draining\"}".into()).with_retry_after(1)
}

/// Best-effort response on the accept thread; a tiny body fits the
/// fresh socket buffer, so this cannot stall the accept loop.
fn reject(mut stream: TcpStream, response: Response) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Applies the request deadline to the socket, flooring at 10ms so an
/// already-expired token still yields a fast error instead of panicking
/// `set_read_timeout(Some(0))`.
fn apply_socket_deadline(stream: &TcpStream, token: &CancelToken) {
    if let Some(remaining) = token.remaining() {
        let timeout = remaining.max(Duration::from_millis(10));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
    }
}

/// One connection, end to end: read → route → respond → account.
fn handle_connection(stream: TcpStream, ctx: &ConnContext) {
    let _ = stream.set_nodelay(true);
    apply_socket_deadline(&stream, &ctx.token);
    let Ok(read_half) = stream.try_clone() else {
        ctx.metrics.request("unknown", "closed");
        return;
    };
    let mut reader = BufReader::new(read_half);
    let (route, response) = route_request(&mut reader, ctx);
    let mut stream = stream;
    let status = match response {
        Some(response) => {
            // Even past the deadline the response must flush: the 504
            // itself needs a write window.
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            let status = response.status;
            match response.write_to(&mut stream) {
                Ok(()) => status.to_string(),
                Err(_) => "closed".to_string(),
            }
        }
        None => "closed".to_string(),
    };
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
    if status == "504" {
        ctx.metrics.deadline_expired.inc();
    }
    ctx.metrics.request(route, &status);
    ctx.metrics.latency(route, ctx.accepted_at.elapsed().as_secs_f64());
}

/// Reads and dispatches one request; `None` means the peer is gone and
/// there is nothing to write.
fn route_request<R: BufRead>(
    reader: &mut R,
    ctx: &ConnContext,
) -> (&'static str, Option<Response>) {
    let head_bytes = match read_head(reader, ctx.config.max_header_bytes) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => return ("none", None),
        Err(err) => return ("unknown", error_response(err, &ctx.token)),
    };
    let head = match parse_head(&head_bytes) {
        Ok(head) => head,
        Err(err) => return ("unknown", error_response(err, &ctx.token)),
    };
    match (head.method.as_str(), head.path()) {
        ("GET", "/healthz") => ("/healthz", Some(healthz(ctx))),
        ("GET", "/metrics") => ("/metrics", Some(metrics_exposition())),
        ("POST", "/check") => ("/check", check(&head, reader, ctx)),
        ("POST", "/scan") => ("/scan", scan(&head, reader, ctx)),
        (_, "/healthz" | "/metrics" | "/check" | "/scan") => (
            "method-not-allowed",
            Some(Response::json(405, "{\"error\":\"method-not-allowed\"}".into())),
        ),
        _ => ("not-found", Some(Response::json(404, "{\"error\":\"not-found\"}".into()))),
    }
}

/// Readiness: `200 ok` while serving, `503 draining` once a drain has
/// started (the first externally-visible step of the drain sequence).
fn healthz(ctx: &ConnContext) -> Response {
    if ctx.state.draining.load(Ordering::SeqCst) {
        Response::json(503, "{\"status\":\"draining\"}".into()).with_retry_after(1)
    } else {
        Response::json(200, "{\"status\":\"ok\"}".into())
    }
}

/// The Prometheus text exposition of the process-global registry.
fn metrics_exposition() -> Response {
    match decamouflage_telemetry::global().prometheus_text() {
        Some(text) => Response::text(200, text),
        None => Response::json(503, "{\"error\":\"telemetry-disabled\"}".into()),
    }
}

/// Sheds work routes during a drain.
fn shed_if_draining(ctx: &ConnContext) -> Option<Response> {
    if ctx.state.draining.load(Ordering::SeqCst) {
        ctx.metrics.shed("draining");
        Some(draining_response())
    } else {
        None
    }
}

/// Maps a transport/parse error onto its response; `None` when the
/// peer is unreachable. A [`HttpError::Timeout`] is the peer's fault
/// (`408`) until the request deadline itself has expired (`504`).
fn error_response(err: HttpError, token: &CancelToken) -> Option<Response> {
    match err {
        HttpError::BadRequest(detail) => Some(Response::json(
            400,
            format!(
                "{{\"error\":\"bad-request\",\"detail\":\"{}\"}}",
                crate::json::escape(&detail)
            ),
        )),
        HttpError::HeadersTooLarge => {
            Some(Response::json(431, "{\"error\":\"headers-too-large\"}".into()))
        }
        HttpError::BodyTooLarge => {
            Some(Response::json(413, "{\"error\":\"body-too-large\"}".into()))
        }
        HttpError::Timeout => {
            if token.is_expired() {
                Some(Response::json(504, "{\"error\":\"deadline-expired\"}".into()))
            } else {
                Some(Response::json(408, "{\"error\":\"request-timeout\"}".into()))
            }
        }
        HttpError::Closed | HttpError::Io(_) => None,
    }
}

/// `POST /check`: one image body → one verdict.
fn check<R: BufRead>(head: &RequestHead, reader: &mut R, ctx: &ConnContext) -> Option<Response> {
    if let Some(response) = shed_if_draining(ctx) {
        return Some(response);
    }
    let body = match read_check_body(head, reader, ctx) {
        Ok(body) => body,
        Err(err) => return error_response(err, &ctx.token),
    };
    let outcome = ctx.service.check_bytes(&body, &ctx.token);
    Some(Response::json(outcome.status(), outcome.to_json()))
}

/// Reads a `/check` body under the size cap; chunked frames concatenate
/// (standard chunked semantics — the boundaries are transport framing).
fn read_check_body<R: BufRead>(
    head: &RequestHead,
    reader: &mut R,
    ctx: &ConnContext,
) -> Result<Vec<u8>, HttpError> {
    match head.body_plan()? {
        BodyPlan::Sized(length) => read_sized_body(reader, length, ctx.config.max_body_bytes),
        BodyPlan::Chunked => {
            let mut frames = ChunkedReader::new(reader, ctx.config.max_body_bytes);
            let mut body = Vec::new();
            while let Some(frame) = frames.next_frame()? {
                body.extend_from_slice(&frame);
            }
            Ok(body)
        }
    }
}

/// An [`ImageSource`] over the request body. With chunked framing each
/// HTTP chunk is one complete image file; with `Content-Length` the
/// whole body is a single image. Transport errors park in
/// `transport_error` and end the stream — the server inspects the slot
/// afterwards to pick the status.
struct BodyImageSource<'a, R: BufRead> {
    reader: &'a mut R,
    mode: BodyMode,
    budget: usize,
    transport_error: Option<HttpError>,
    index: usize,
    telemetry: decamouflage_telemetry::Telemetry,
}

enum BodyMode {
    Single(Option<usize>),
    Chunked,
}

impl<'a, R: BufRead> BodyImageSource<'a, R> {
    fn new(reader: &'a mut R, plan: BodyPlan, max_body_bytes: usize) -> Self {
        let mode = match plan {
            BodyPlan::Sized(length) => BodyMode::Single(Some(length)),
            BodyPlan::Chunked => BodyMode::Chunked,
        };
        Self {
            reader,
            mode,
            budget: max_body_bytes,
            transport_error: None,
            index: 0,
            telemetry: decamouflage_telemetry::global(),
        }
    }

    fn next_frame(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        match &mut self.mode {
            BodyMode::Single(length) => match length.take() {
                Some(length) => read_sized_body(self.reader, length, self.budget).map(Some),
                None => Ok(None),
            },
            BodyMode::Chunked => {
                // Budget is enforced inside the chunked reader; recreate
                // it lazily per frame to keep one borrow site.
                let mut frames = ChunkedReader::new(self.reader, self.budget);
                let frame = frames.next_frame()?;
                if let Some(frame) = &frame {
                    self.budget -= frame.len();
                }
                Ok(frame)
            }
        }
    }
}

impl<R: BufRead> ImageSource for BodyImageSource<'_, R> {
    fn next_image(&mut self, pool: &mut BufferPool) -> Option<SourceItem> {
        if self.transport_error.is_some() {
            return None;
        }
        let frame = match self.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return None,
            Err(err) => {
                self.transport_error = Some(err);
                return None;
            }
        };
        let index = self.index;
        self.index += 1;
        let decoded = decode_image_into(&frame, &mut |n| pool.take(n));
        record_decode(&self.telemetry, &frame, decoded.is_ok());
        Some(match decoded {
            Ok((_, image)) => Ok(image),
            Err(failure) => {
                let fault = match failure {
                    DecodeFailure::Unsupported(message) => {
                        ScoreFault::UnsupportedFormat { message }
                    }
                    DecodeFailure::Unreadable(message) => ScoreFault::Unreadable { message },
                };
                Err(ScoreError::new(fault).at_index(index))
            }
        })
    }
}

/// `POST /scan`: stream the body through the engine with bounded
/// memory; each chunked frame is one image.
fn scan<R: BufRead>(head: &RequestHead, reader: &mut R, ctx: &ConnContext) -> Option<Response> {
    if let Some(response) = shed_if_draining(ctx) {
        return Some(response);
    }
    let plan = match head.body_plan() {
        Ok(plan) => plan,
        Err(err) => return error_response(err, &ctx.token),
    };
    let mut source = BodyImageSource::new(reader, plan, ctx.config.max_body_bytes);
    let outcome = ctx.service.scan_source(&mut source, &ctx.token, ctx.config.scan_chunk_size);
    if let Some(err) = source.transport_error {
        // The stream died on transport, not on scoring: the transport
        // error picks the status (a mid-scan deadline maps to 504 via
        // the timeout arm).
        return error_response(err, &ctx.token);
    }
    Some(Response::json(outcome.status(), outcome.to_json()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = ServerConfig::default();
        assert!(config.drain_deadline > config.deadline);
        assert!(config.lame_duck < config.drain_deadline);
        assert!(config.handlers >= 1);
    }

    #[test]
    fn handle_observes_drain_state() {
        let state = Arc::new(ServerState::default());
        let handle = ServerHandle { state: Arc::clone(&state) };
        assert!(!handle.is_draining());
        assert_eq!(handle.in_flight(), 0);
        handle.shutdown();
        assert!(state.shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn timeout_maps_to_408_before_the_deadline_and_504_after() {
        let live = CancelToken::expiring_in(Duration::from_secs(60));
        let response = error_response(HttpError::Timeout, &live).unwrap();
        assert_eq!(response.status, 408);
        let expired = CancelToken::new();
        expired.cancel();
        let response = error_response(HttpError::Timeout, &expired).unwrap();
        assert_eq!(response.status, 504);
    }

    #[test]
    fn unanswerable_errors_produce_no_response() {
        let token = CancelToken::new();
        assert!(error_response(HttpError::Closed, &token).is_none());
        assert!(error_response(HttpError::Io("reset".into()), &token).is_none());
    }
}
