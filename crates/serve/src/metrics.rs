//! Service-level telemetry: pre-resolved handles for the hot admission
//! path, lazy lookups for labelled per-response series.

use decamouflage_telemetry::{Counter, Gauge, Telemetry};

/// Handles for the server's own metric families.
///
/// The admission decision runs on the accept thread for every incoming
/// connection, so the gauges it reads ([`ServiceMetrics::in_flight`],
/// [`ServiceMetrics::pool_queue_depth`]) are resolved once at
/// construction. Per-response counters carry a `(route, status)` label
/// pair whose cardinality is unbounded a priori, so those resolve at
/// response time — once per request, off the admission path.
#[derive(Debug)]
pub struct ServiceMetrics {
    telemetry: Telemetry,
    /// `decam_http_in_flight` — admitted connections not yet finished.
    /// Returns to 0 after a graceful drain (asserted by the load
    /// generator).
    pub in_flight: Gauge,
    /// `decam_pool_queue_depth` — the *existing* WorkerPool backlog
    /// gauge. The shed decision reads it directly, so engine fan-out
    /// pressure and queued handler jobs both push the server into
    /// load-shedding.
    pub pool_queue_depth: Gauge,
    /// `decam_http_deadline_expired_total` — requests answered 504.
    pub deadline_expired: Counter,
}

impl ServiceMetrics {
    /// Resolves the pre-cached handles against `telemetry`.
    pub fn new(telemetry: &Telemetry) -> Self {
        Self {
            telemetry: telemetry.clone(),
            in_flight: telemetry.gauge("decam_http_in_flight", &[]),
            pool_queue_depth: telemetry.gauge("decam_pool_queue_depth", &[]),
            deadline_expired: telemetry.counter("decam_http_deadline_expired_total", &[]),
        }
    }

    /// Counts one finished request on
    /// `decam_http_requests_total{route,status}`. `status` is the
    /// numeric code, or `"closed"` when the peer vanished before a
    /// response could be written.
    pub fn request(&self, route: &str, status: &str) {
        self.telemetry
            .counter("decam_http_requests_total", &[("route", route), ("status", status)])
            .inc();
    }

    /// Counts one shed connection on `decam_http_shed_total{reason}`
    /// (`overload` or `draining`).
    pub fn shed(&self, reason: &str) {
        self.telemetry.counter("decam_http_shed_total", &[("reason", reason)]).inc();
    }

    /// Records one request's wall latency (accept → response written)
    /// into `decam_http_request_seconds{route}`.
    pub fn latency(&self, route: &str, seconds: f64) {
        self.telemetry.histogram("decam_http_request_seconds", &[("route", route)]).record(seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_land_under_their_documented_names() {
        let telemetry = Telemetry::enabled();
        let metrics = ServiceMetrics::new(&telemetry);
        metrics.in_flight.inc();
        metrics.request("/check", "200");
        metrics.shed("overload");
        metrics.latency("/check", 0.01);
        metrics.deadline_expired.inc();
        let text = telemetry.prometheus_text().unwrap();
        assert!(text.contains("decam_http_in_flight 1"));
        assert!(text.contains("decam_http_requests_total{route=\"/check\",status=\"200\"} 1"));
        assert!(text.contains("decam_http_shed_total{reason=\"overload\"} 1"));
        assert!(text.contains("decam_http_request_seconds_count{route=\"/check\"} 1"));
        assert!(text.contains("decam_http_deadline_expired_total 1"));
    }

    #[test]
    fn disabled_telemetry_is_a_total_no_op() {
        let metrics = ServiceMetrics::new(&Telemetry::disabled());
        metrics.in_flight.inc();
        metrics.request("/scan", "504");
        assert_eq!(metrics.in_flight.value(), 0.0);
    }
}
