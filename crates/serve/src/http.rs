//! Minimal, paranoid HTTP/1.1 plumbing: request parsing, body framing,
//! and response writing over `std` sockets only.
//!
//! Everything here is written against *hostile* input. The parsing
//! entry points ([`read_head`], [`parse_head`], [`ChunkedReader`]) are
//! pure over `BufRead`/byte slices so they can be property-tested from
//! in-memory cursors, and they uphold one contract: **arbitrary bytes
//! never panic and never allocate past the configured caps** — every
//! malformed input maps to a typed [`HttpError`] that the server turns
//! into a well-formed 4xx response or a clean close.

use std::io::{self, BufRead, Read, Write};

/// Maximum bytes of a single framing line (chunk-size lines, trailers).
const MAX_LINE_BYTES: usize = 512;

/// Maximum number of header fields in one request head.
const MAX_HEADER_FIELDS: usize = 128;

/// A typed transport/parse failure, each mapping to one response class.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request syntax → `400 Bad Request`.
    BadRequest(String),
    /// The header section exceeded its cap → `431`.
    HeadersTooLarge,
    /// The body (declared or streamed) exceeded its cap → `413`.
    BodyTooLarge,
    /// A socket read/write timed out (slow-loris) → `408` (or `504`
    /// once the request deadline itself has passed).
    Timeout,
    /// The peer closed mid-request; there is nobody left to answer.
    Closed,
    /// Any other transport error; also unanswerable.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadRequest(detail) => write!(f, "bad request: {detail}"),
            Self::HeadersTooLarge => write!(f, "request header section too large"),
            Self::BodyTooLarge => write!(f, "request body too large"),
            Self::Timeout => write!(f, "socket timeout"),
            Self::Closed => write!(f, "connection closed by peer"),
            Self::Io(detail) => write!(f, "transport error: {detail}"),
        }
    }
}

/// Maps an `io::Error` onto the taxonomy. `WouldBlock` appears because
/// `set_read_timeout` surfaces expiry as either kind depending on the
/// platform.
fn map_io(err: &io::Error) -> HttpError {
    match err.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset => HttpError::Closed,
        _ => HttpError::Io(err.to_string()),
    }
}

/// How the request frames its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyPlan {
    /// Exactly this many bytes follow the head (0 when neither
    /// `Content-Length` nor `Transfer-Encoding` was sent).
    Sized(usize),
    /// `Transfer-Encoding: chunked` framing follows.
    Chunked,
}

/// A parsed request line plus header fields. Produced by [`parse_head`];
/// header lookup is case-insensitive per RFC 9110.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// Request method token, verbatim (e.g. `GET`).
    pub method: String,
    /// Request target, verbatim (e.g. `/check?verbose=1`).
    pub target: String,
    /// Protocol version (`HTTP/1.0` or `HTTP/1.1`).
    pub version: String,
    /// Header fields in wire order, names verbatim.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// The first value of a header, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(field, _)| field.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }

    /// The request path with any query string stripped.
    pub fn path(&self) -> &str {
        self.target.split_once('?').map_or(self.target.as_str(), |(path, _)| path)
    }

    /// Resolves the body framing, rejecting ambiguous requests.
    ///
    /// # Errors
    ///
    /// [`HttpError::BadRequest`] for an unsupported `Transfer-Encoding`,
    /// a request carrying *both* `Transfer-Encoding` and
    /// `Content-Length` (the classic smuggling ambiguity), a
    /// non-numeric/overflowing `Content-Length`, or conflicting
    /// duplicate `Content-Length` fields.
    pub fn body_plan(&self) -> Result<BodyPlan, HttpError> {
        let transfer_encoding = self.header("transfer-encoding");
        let lengths: Vec<&str> = self
            .headers
            .iter()
            .filter(|(field, _)| field.eq_ignore_ascii_case("content-length"))
            .map(|(_, value)| value.as_str())
            .collect();
        if let Some(encoding) = transfer_encoding {
            if !encoding.trim().eq_ignore_ascii_case("chunked") {
                return Err(HttpError::BadRequest(format!(
                    "unsupported Transfer-Encoding {encoding:?}"
                )));
            }
            if !lengths.is_empty() {
                return Err(HttpError::BadRequest(
                    "both Transfer-Encoding and Content-Length present".into(),
                ));
            }
            return Ok(BodyPlan::Chunked);
        }
        let Some((&first, rest)) = lengths.split_first() else {
            return Ok(BodyPlan::Sized(0));
        };
        if rest.iter().any(|&other| other != first) {
            return Err(HttpError::BadRequest("conflicting Content-Length values".into()));
        }
        let length: usize = first
            .trim()
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length {first:?}")))?;
        Ok(BodyPlan::Sized(length))
    }
}

/// Reads one request head (request line + headers + blank line) off the
/// reader, consuming exactly through the terminator so the body stays
/// buffered for the caller.
///
/// Tolerates bare-LF line endings (`\n\n` terminates like `\r\n\r\n`).
/// Returns `Ok(None)` when the peer closed before sending any bytes —
/// the clean "no request" case.
///
/// # Errors
///
/// [`HttpError::HeadersTooLarge`] past `max_bytes`, [`HttpError::Closed`]
/// on EOF mid-head, [`HttpError::Timeout`] on socket timeout.
pub fn read_head<R: BufRead + ?Sized>(
    reader: &mut R,
    max_bytes: usize,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut head: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(map_io(&err)),
        };
        if buf.is_empty() {
            return if head.is_empty() { Ok(None) } else { Err(HttpError::Closed) };
        }
        let mut consumed = 0;
        for &byte in buf {
            consumed += 1;
            head.push(byte);
            if head.len() > max_bytes {
                reader.consume(consumed);
                return Err(HttpError::HeadersTooLarge);
            }
            if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                reader.consume(consumed);
                return Ok(Some(head));
            }
        }
        reader.consume(consumed);
    }
}

/// Whether `byte` may appear in a header field name / method token
/// (RFC 9110 `tchar`).
fn is_token_byte(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&byte)
}

/// Parses a request head captured by [`read_head`] — or any byte salad;
/// the function is total over arbitrary input (the property suite feeds
/// it garbage directly).
///
/// # Errors
///
/// [`HttpError::BadRequest`] for every syntactic violation: non-UTF-8
/// bytes, a malformed request line, an unsupported version, missing
/// colons, empty or non-token field names, control bytes in values,
/// obs-folded continuation lines, or more than 128 fields.
pub fn parse_head(bytes: &[u8]) -> Result<RequestHead, HttpError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| HttpError::BadRequest("header bytes are not UTF-8".into()))?;
    // Drop the trailing blank-line terminator (either flavour), then
    // split into lines accepting CRLF or bare LF.
    let text = text.trim_end_matches(['\r', '\n']);
    let mut lines = text.split('\n').map(|line| line.strip_suffix('\r').unwrap_or(line));

    let request_line = lines.next().ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("request line has more than three parts".into()));
    }
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(HttpError::BadRequest(format!("invalid method {method:?}")));
    }
    if target.is_empty() || !(target.starts_with('/') || target == "*") {
        return Err(HttpError::BadRequest(format!("invalid request target {target:?}")));
    }
    if target.bytes().any(|b| b.is_ascii_control()) {
        return Err(HttpError::BadRequest("control bytes in request target".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            // An interior blank line means the caller handed us bytes past
            // the head terminator; whatever follows is not a header.
            return Err(HttpError::BadRequest("blank line inside header section".into()));
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::BadRequest("obsolete header line folding".into()));
        }
        if headers.len() >= MAX_HEADER_FIELDS {
            return Err(HttpError::BadRequest("too many header fields".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header line without colon: {line:?}")))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadRequest(format!("invalid header name {name:?}")));
        }
        let value = value.trim_matches([' ', '\t']);
        if value.bytes().any(|b| b.is_ascii_control() && b != b'\t') {
            return Err(HttpError::BadRequest(format!("control bytes in header {name:?}")));
        }
        headers.push((name.to_string(), value.to_string()));
    }
    Ok(RequestHead {
        method: method.to_string(),
        target: target.to_string(),
        version: version.to_string(),
        headers,
    })
}

/// Reads an exactly-`length` body, enforcing the cap *before* reading.
///
/// # Errors
///
/// [`HttpError::BodyTooLarge`] when `length > max_bytes` (nothing is
/// read — the server answers 413 immediately), plus the usual transport
/// errors.
pub fn read_sized_body<R: Read + ?Sized>(
    reader: &mut R,
    length: usize,
    max_bytes: usize,
) -> Result<Vec<u8>, HttpError> {
    if length > max_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).map_err(|err| map_io(&err))?;
    Ok(body)
}

/// Reads one framing line (terminated by LF, optional CR stripped) with
/// a hard length cap.
fn read_line_capped<R: BufRead + ?Sized>(reader: &mut R, cap: usize) -> Result<Vec<u8>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(map_io(&err)),
        };
        if buf.is_empty() {
            return Err(HttpError::Closed);
        }
        let mut consumed = 0;
        for &byte in buf {
            consumed += 1;
            if byte == b'\n' {
                reader.consume(consumed);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(line);
            }
            line.push(byte);
            if line.len() > cap {
                reader.consume(consumed);
                return Err(HttpError::BadRequest("framing line too long".into()));
            }
        }
        reader.consume(consumed);
    }
}

/// Parses a chunk-size line: hex digits, optional `;extensions` ignored.
fn parse_chunk_size(line: &[u8]) -> Result<usize, HttpError> {
    let digits = line.split(|&b| b == b';').next().unwrap_or_default();
    let digits = std::str::from_utf8(digits)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 chunk-size line".into()))?
        .trim();
    if digits.is_empty() {
        return Err(HttpError::BadRequest("empty chunk size".into()));
    }
    usize::from_str_radix(digits, 16)
        .map_err(|_| HttpError::BadRequest(format!("invalid chunk size {digits:?}")))
}

/// Pull-based `Transfer-Encoding: chunked` decoder with a cumulative
/// byte budget: the total of all frames can never exceed `max_total`,
/// so a hostile stream cannot balloon memory past the request-size cap.
///
/// The detection service gives each HTTP chunk meaning: on `/scan`, one
/// chunk is one complete image file, so frames are surfaced one at a
/// time rather than concatenated.
#[derive(Debug)]
pub struct ChunkedReader<'a, R: BufRead + ?Sized> {
    reader: &'a mut R,
    budget: usize,
    done: bool,
}

impl<'a, R: BufRead + ?Sized> ChunkedReader<'a, R> {
    /// Wraps `reader` with a cumulative body budget of `max_total` bytes.
    pub fn new(reader: &'a mut R, max_total: usize) -> Self {
        Self { reader, budget: max_total, done: false }
    }

    /// The next chunk's payload, or `None` after the terminal 0-chunk.
    ///
    /// # Errors
    ///
    /// [`HttpError::BodyTooLarge`] once the cumulative budget is blown;
    /// [`HttpError::BadRequest`] on malformed framing; transport errors
    /// pass through. After any error the reader is poisoned (`done`).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        if self.done {
            return Ok(None);
        }
        match self.next_frame_inner() {
            Ok(frame) => Ok(frame),
            Err(err) => {
                self.done = true;
                Err(err)
            }
        }
    }

    fn next_frame_inner(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        let line = read_line_capped(self.reader, MAX_LINE_BYTES)?;
        let size = parse_chunk_size(&line)?;
        if size == 0 {
            // Trailer fields (ignored) up to the terminating blank line.
            loop {
                let trailer = read_line_capped(self.reader, MAX_LINE_BYTES)?;
                if trailer.is_empty() {
                    break;
                }
            }
            self.done = true;
            return Ok(None);
        }
        if size > self.budget {
            return Err(HttpError::BodyTooLarge);
        }
        self.budget -= size;
        let mut frame = vec![0u8; size];
        self.reader.read_exact(&mut frame).map_err(|err| map_io(&err))?;
        // Chunk payloads are CRLF-terminated; tolerate bare LF.
        let mut sep = [0u8; 1];
        self.reader.read_exact(&mut sep).map_err(|err| map_io(&err))?;
        if sep[0] == b'\r' {
            self.reader.read_exact(&mut sep).map_err(|err| map_io(&err))?;
        }
        if sep[0] != b'\n' {
            return Err(HttpError::BadRequest("chunk payload not CRLF-terminated".into()));
        }
        Ok(Some(frame))
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An HTTP/1.1 response. Every response closes the connection
/// (`Connection: close`) — one request per connection keeps the
/// admission-control accounting exact.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Optional `Retry-After` (seconds) — set on every shed 503.
    pub retry_after: Option<u32>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            retry_after: None,
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (the `/metrics` exposition).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            retry_after: None,
            body: body.into_bytes(),
        }
    }

    /// Builder: attaches a `Retry-After` header.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serialises head + body onto the writer and flushes.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (the caller logs and drops them — the
    /// peer may be gone).
    pub fn write_to<W: Write + ?Sized>(&self, writer: &mut W) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nConnection: close\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn head_of(raw: &[u8]) -> RequestHead {
        let mut cursor = Cursor::new(raw.to_vec());
        let bytes = read_head(&mut cursor, 16 * 1024).unwrap().expect("head present");
        parse_head(&bytes).unwrap()
    }

    #[test]
    fn parses_a_simple_request() {
        let head = head_of(b"POST /check HTTP/1.1\r\nContent-Length: 5\r\nHost: x\r\n\r\nhello");
        assert_eq!(head.method, "POST");
        assert_eq!(head.path(), "/check");
        assert_eq!(head.header("content-length"), Some("5"));
        assert_eq!(head.header("HOST"), Some("x"));
        assert_eq!(head.body_plan().unwrap(), BodyPlan::Sized(5));
    }

    #[test]
    fn read_head_leaves_the_body_buffered() {
        let mut cursor = Cursor::new(b"GET / HTTP/1.1\r\n\r\nBODY".to_vec());
        let _ = read_head(&mut cursor, 1024).unwrap().unwrap();
        let mut rest = Vec::new();
        cursor.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"BODY");
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let head = head_of(b"GET /healthz HTTP/1.1\nHost: y\n\n");
        assert_eq!(head.path(), "/healthz");
        assert_eq!(head.header("host"), Some("y"));
    }

    #[test]
    fn query_strings_are_stripped_from_the_path() {
        let head = head_of(b"GET /metrics?format=json HTTP/1.1\r\n\r\n");
        assert_eq!(head.path(), "/metrics");
    }

    #[test]
    fn oversized_head_is_431_not_unbounded() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat(b'a').take(64 * 1024));
        let mut cursor = Cursor::new(raw);
        assert!(matches!(read_head(&mut cursor, 1024), Err(HttpError::HeadersTooLarge)));
    }

    #[test]
    fn truncated_head_is_a_clean_close() {
        let mut cursor = Cursor::new(b"GET / HTTP/1.1\r\nHos".to_vec());
        assert!(matches!(read_head(&mut cursor, 1024), Err(HttpError::Closed)));
        let mut empty = Cursor::new(Vec::new());
        assert!(read_head(&mut empty, 1024).unwrap().is_none());
    }

    #[test]
    fn content_length_overflow_and_conflicts_are_rejected() {
        let head = head_of(b"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n");
        assert!(matches!(head.body_plan(), Err(HttpError::BadRequest(_))));
        let head = head_of(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n");
        assert!(matches!(head.body_plan(), Err(HttpError::BadRequest(_))));
        let head =
            head_of(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(head.body_plan(), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn garbage_request_lines_are_bad_requests() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"G\x01T / HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: b\r\n folded\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            assert!(parse_head(raw).is_err(), "{raw:?} should be rejected");
        }
    }

    #[test]
    fn sized_body_cap_is_checked_before_reading() {
        let mut cursor = Cursor::new(vec![0u8; 10]);
        assert!(matches!(read_sized_body(&mut cursor, 11, 10), Err(HttpError::BodyTooLarge)));
        assert_eq!(cursor.position(), 0, "nothing consumed on 413");
        assert_eq!(read_sized_body(&mut cursor, 10, 10).unwrap().len(), 10);
    }

    #[test]
    fn chunked_frames_round_trip() {
        let raw = b"3\r\nabc\r\n5;ext=1\r\nhello\r\n0\r\nTrailer: x\r\n\r\n";
        let mut cursor = Cursor::new(raw.to_vec());
        let mut frames = ChunkedReader::new(&mut cursor, 1024);
        assert_eq!(frames.next_frame().unwrap().as_deref(), Some(&b"abc"[..]));
        assert_eq!(frames.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert!(frames.next_frame().unwrap().is_none());
        assert!(frames.next_frame().unwrap().is_none(), "terminal state is sticky");
    }

    #[test]
    fn chunked_budget_is_cumulative() {
        let raw = b"4\r\naaaa\r\n4\r\nbbbb\r\n0\r\n\r\n";
        let mut cursor = Cursor::new(raw.to_vec());
        let mut frames = ChunkedReader::new(&mut cursor, 6);
        assert!(frames.next_frame().unwrap().is_some());
        assert!(matches!(frames.next_frame(), Err(HttpError::BodyTooLarge)));
        assert!(frames.next_frame().unwrap().is_none(), "errors poison the reader");
    }

    #[test]
    fn chunked_rejects_malformed_framing() {
        for raw in [&b"zz\r\nab\r\n0\r\n\r\n"[..], b"\r\n\r\n", b"3\r\nabcX\r\n0\r\n\r\n"] {
            let mut cursor = Cursor::new(raw.to_vec());
            let mut frames = ChunkedReader::new(&mut cursor, 1024);
            let mut result = Ok(Some(Vec::new()));
            while let Ok(Some(_)) = result {
                result = frames.next_frame();
            }
            assert!(result.is_err(), "{raw:?} should error");
        }
    }

    #[test]
    fn chunk_size_overflow_is_rejected() {
        let raw = b"ffffffffffffffffff\r\nx\r\n0\r\n\r\n";
        let mut cursor = Cursor::new(raw.to_vec());
        let mut frames = ChunkedReader::new(&mut cursor, usize::MAX);
        assert!(matches!(frames.next_frame(), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn responses_serialise_with_content_length_and_retry_after() {
        let mut out = Vec::new();
        Response::json(503, "{\"error\":\"overloaded\"}".into())
            .with_retry_after(1)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"overloaded\"}"));
    }
}
