//! Shared numeric-flag parsing for the CLI, the `serve` subcommand and
//! the bench `loadgen` binary.
//!
//! Every numeric flag in the tooling funnels through these helpers so
//! degenerate values — `--chunk-size 0`, a negative `--shard`, an
//! overflowing `--count` — are rejected uniformly with a message that
//! names the flag, the accepted range, and the offending input, instead
//! of each subcommand rolling (and unevenly forgetting) its own checks.

use std::time::Duration;

/// Parses a flag value as a `usize` in `[min, max]`.
///
/// # Errors
///
/// A message naming the flag, range and offending value for anything
/// that is not an integer in range — including negative numbers, empty
/// strings, trailing garbage and values past `usize`/`max`.
pub fn parse_bounded_usize(flag: &str, raw: &str, min: usize, max: usize) -> Result<usize, String> {
    let trimmed = raw.trim();
    let value: usize = trimmed
        .parse()
        .map_err(|_| format!("{flag}: expected an integer in [{min}, {max}], got {raw:?}"))?;
    if value < min || value > max {
        return Err(format!("{flag}: {value} is out of range [{min}, {max}]"));
    }
    Ok(value)
}

/// Parses a flag value as a millisecond count in `[min_ms, max_ms]`,
/// returned as a [`Duration`].
///
/// # Errors
///
/// Same contract as [`parse_bounded_usize`].
pub fn parse_bounded_ms(
    flag: &str,
    raw: &str,
    min_ms: usize,
    max_ms: usize,
) -> Result<Duration, String> {
    Ok(Duration::from_millis(parse_bounded_usize(flag, raw, min_ms, max_ms)? as u64))
}

/// Parses a `k/N` shard spec: `0 <= k < N`, `1 <= N <= max_shards`.
///
/// # Errors
///
/// A flag-named message for a missing `/`, non-integer parts, `N == 0`,
/// `k >= N`, or `N > max_shards`.
pub fn parse_shard_spec(
    flag: &str,
    raw: &str,
    max_shards: usize,
) -> Result<(usize, usize), String> {
    let (index, count) = raw
        .split_once('/')
        .ok_or_else(|| format!("{flag}: expected k/N (e.g. 0/4), got {raw:?}"))?;
    let count = parse_bounded_usize(flag, count, 1, max_shards)?;
    let index = parse_bounded_usize(flag, index, 0, count.saturating_sub(1))
        .map_err(|_| format!("{flag}: shard index must be in [0, {}), got {index:?}", count))?;
    Ok((index, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_in_range_values_and_trims_whitespace() {
        assert_eq!(parse_bounded_usize("--chunk-size", "64", 1, 4096), Ok(64));
        assert_eq!(parse_bounded_usize("--chunk-size", " 1 ", 1, 4096), Ok(1));
        assert_eq!(
            parse_bounded_ms("--deadline-ms", "250", 1, 60_000),
            Ok(Duration::from_millis(250))
        );
    }

    #[test]
    fn rejects_zero_negative_overflow_and_garbage_with_the_flag_name() {
        for raw in ["0", "-3", "4.5", "", "abc", "99999999999999999999999999"] {
            let err = parse_bounded_usize("--chunk-size", raw, 1, 4096).unwrap_err();
            assert!(err.starts_with("--chunk-size:"), "message names the flag: {err}");
        }
        let err = parse_bounded_usize("--count", "5000", 1, 4096).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn shard_specs_validate_both_halves() {
        assert_eq!(parse_shard_spec("--shard", "0/4", 1024), Ok((0, 4)));
        assert_eq!(parse_shard_spec("--shard", "3/4", 1024), Ok((3, 4)));
        for raw in ["4/4", "0/0", "-1/4", "x/4", "2", "1/99999999999999999999"] {
            let err = parse_shard_spec("--shard", raw, 1024).unwrap_err();
            assert!(err.starts_with("--shard:"), "message names the flag: {err}");
        }
    }
}
