//! The detection service: engine + calibrated thresholds + degrade
//! policy, mapped onto typed request outcomes.
//!
//! This layer is transport-free — it consumes bytes/[`ImageSource`]s
//! and a [`CancelToken`], and produces [`CheckOutcome`]/[`ScanOutcome`]
//! values the server serialises. Keeping it off the socket makes the
//! status mapping unit-testable without a listener.

use crate::json;
use decamouflage_core::ensemble::DegradePolicy;
use decamouflage_core::persist::ThresholdSet;
use decamouflage_core::{
    CancelToken, DetectionEngine, ImageSource, MethodId, MethodSet, ScoreFault, ScoreVector,
    StreamConfig, Threshold,
};
use decamouflage_imaging::codec::{decode_auto_into, sniff, ImageFormat, SampleAlloc};
use decamouflage_imaging::{Image, ImagingError, Size};
use decamouflage_telemetry::Telemetry;

/// The engine methods the service votes with — the paper's three-method
/// ensemble (scaling/MSE, filtering/SSIM, CSP).
pub const SERVICE_METHODS: &[MethodId] =
    &[MethodId::ScalingMse, MethodId::FilteringSsim, MethodId::Csp];

/// Why a request body failed to decode, split along the `422` fault
/// taxonomy: a body no codec claims (or a claimed-but-unsupported
/// feature) is a different client error from a structurally broken
/// file in a supported format.
#[derive(Debug)]
pub enum DecodeFailure {
    /// No codec claims the magic bytes, or the claimed format uses an
    /// unsupported feature (fault kind `unsupported-format`).
    Unsupported(String),
    /// A supported format that is structurally broken — truncated,
    /// checksum mismatch, bad header (fault kind `unreadable`).
    Unreadable(String),
}

impl DecodeFailure {
    /// The stable kebab-case fault tag this failure quarantines under.
    pub fn fault(&self) -> &'static str {
        match self {
            Self::Unsupported(_) => "unsupported-format",
            Self::Unreadable(_) => "unreadable",
        }
    }

    /// Consumes the failure, yielding the human-readable detail.
    pub fn into_detail(self) -> String {
        match self {
            Self::Unsupported(detail) | Self::Unreadable(detail) => detail,
        }
    }
}

/// Decodes an image body by sniffing its magic bytes (PNG, JPEG, BMP,
/// PNM), allocating the sample buffer on the heap. Streaming callers
/// should use [`decode_image_into`] with a `BufferPool` allocator.
///
/// # Errors
///
/// See [`decode_image_into`].
pub fn decode_image(body: &[u8]) -> Result<(ImageFormat, Image), DecodeFailure> {
    decode_image_into(body, &mut |n| vec![0.0; n])
}

/// Decodes an image body by sniffing its magic bytes, obtaining the
/// sample buffer from `alloc` so streaming callers recycle pool
/// buffers. Returns the sniffed format for per-format telemetry.
///
/// # Errors
///
/// [`DecodeFailure::Unsupported`] when no codec claims the body (or a
/// claimed format uses an unsupported feature), [`DecodeFailure::Unreadable`]
/// when a supported format is structurally broken.
pub fn decode_image_into(
    body: &[u8],
    alloc: SampleAlloc<'_>,
) -> Result<(ImageFormat, Image), DecodeFailure> {
    decode_auto_into(body, alloc).map_err(|err| match err {
        ImagingError::Unsupported { .. } => DecodeFailure::Unsupported(err.to_string()),
        other => DecodeFailure::Unreadable(other.to_string()),
    })
}

/// Counts one body decode on `decam_codec_decode_total{format,outcome}`
/// — the same family `DirectorySource` uses, so `/metrics` reports
/// filesystem and HTTP decodes uniformly. Failed sniffs count under
/// `format="unknown"`.
pub(crate) fn record_decode(telemetry: &Telemetry, body: &[u8], ok: bool) {
    let format = sniff(body).map_or("unknown", ImageFormat::name);
    let outcome = if ok { "ok" } else { "error" };
    telemetry
        .counter("decam_codec_decode_total", &[("format", format), ("outcome", outcome)])
        .inc();
}

/// One member's abstention reason.
pub type Unavailable = (MethodId, String);

/// The voting result for one scored image.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Majority verdict (fail-closed rules applied per the policy).
    pub is_attack: bool,
    /// Whether any member abstained (always `false` under
    /// [`DegradePolicy::Strict`], which quarantines instead).
    pub degraded: bool,
    /// `(method, voted attack?)` for every member that voted.
    pub votes: Vec<(MethodId, bool)>,
    /// Abstaining members and why.
    pub unavailable: Vec<Unavailable>,
}

/// The typed outcome of one `/check`, mapped 1:1 onto an HTTP status.
#[derive(Debug)]
pub enum CheckOutcome {
    /// `200` — scored and voted.
    Verdict {
        /// The engine's per-method scores.
        scores: ScoreVector,
        /// The ensemble decision over [`SERVICE_METHODS`].
        verdict: Verdict,
    },
    /// `422` — the input was quarantined by the [`ScoreFault`] taxonomy
    /// (`fault` is [`ScoreFault::kind`]; decode failures use
    /// `unsupported-format` for bodies no codec claims and `unreadable`
    /// for structurally broken files, per [`DecodeFailure`]).
    Quarantined {
        /// Stable kebab-case fault tag.
        fault: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// `500` — scoring panicked; the panic was recovered and the slot
    /// quarantined, but the failure is the server's, not the input's.
    Panicked {
        /// The recovered panic message.
        detail: String,
    },
    /// `504` — the request deadline expired between pipeline stages.
    Expired,
}

/// One position's result within a `/scan`.
#[derive(Debug)]
pub enum ScanEntry {
    /// The image scored; the ensemble voted.
    Scored(Verdict),
    /// The position was quarantined (`fault` = [`ScoreFault::kind`]).
    Quarantined {
        /// Stable kebab-case fault tag.
        fault: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

/// Aggregate result of one `/scan` stream.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Per-position entries in stream order.
    pub entries: Vec<ScanEntry>,
    /// Entries flagged as attacks.
    pub flagged: usize,
    /// Entries voted benign.
    pub benign: usize,
    /// Entries quarantined.
    pub quarantined: usize,
    /// Entries decided with at least one abstaining member.
    pub degraded: usize,
    /// Whether the stream stopped early on an expired [`CancelToken`]
    /// (→ `504`, with the partial counts in the body).
    pub expired: bool,
}

/// Engine + thresholds + degrade policy behind the HTTP routes.
#[derive(Debug)]
pub struct DetectionService {
    engine: DetectionEngine,
    members: Vec<(MethodId, Threshold)>,
    policy: DegradePolicy,
    telemetry: Telemetry,
}

impl DetectionService {
    /// Builds the service for `target` with calibrated `thresholds`.
    ///
    /// # Errors
    ///
    /// A message naming the first of [`SERVICE_METHODS`] missing from
    /// the threshold set.
    pub fn new(
        target: Size,
        thresholds: &ThresholdSet,
        policy: DegradePolicy,
    ) -> Result<Self, String> {
        let mut members = Vec::with_capacity(SERVICE_METHODS.len());
        for &id in SERVICE_METHODS {
            let threshold = thresholds
                .get(id)
                .ok_or_else(|| format!("thresholds are missing an entry for {:?}", id.name()))?;
            members.push((id, threshold));
        }
        let engine = DetectionEngine::new(target).with_methods(MethodSet::of(SERVICE_METHODS));
        Ok(Self { engine, members, policy, telemetry: decamouflage_telemetry::global() })
    }

    /// The configured degrade policy.
    pub fn policy(&self) -> DegradePolicy {
        self.policy
    }

    /// Applies the member thresholds to one score vector. Mirrors
    /// `Ensemble::decide` semantics: a non-finite member score never
    /// votes benign silently — under [`DegradePolicy::Strict`] it
    /// quarantines the request, otherwise the member abstains and the
    /// policy decides what the abstention means.
    fn vote(&self, scores: &ScoreVector) -> CheckOutcome {
        let mut votes = Vec::with_capacity(self.members.len());
        let mut unavailable = Vec::new();
        let mut attack_votes = 0usize;
        for &(id, threshold) in &self.members {
            let score = scores.get(id);
            if score.is_finite() {
                let vote = threshold.is_attack(score);
                attack_votes += usize::from(vote);
                votes.push((id, vote));
            } else if self.policy == DegradePolicy::Strict {
                return CheckOutcome::Quarantined {
                    fault: "non-finite-score",
                    detail: format!("{} produced non-finite score {score}", id.name()),
                };
            } else {
                unavailable.push((id, format!("non-finite score {score}")));
            }
        }
        let is_attack = match self.policy {
            DegradePolicy::FailClosed if !unavailable.is_empty() => true,
            // Nothing could score the image: refuse to accept it.
            _ if votes.is_empty() => true,
            _ => 2 * attack_votes > votes.len(),
        };
        let verdict = Verdict { is_attack, degraded: !unavailable.is_empty(), votes, unavailable };
        CheckOutcome::Verdict { scores: scores.clone(), verdict }
    }

    /// Scores one request body end-to-end: decode → engine →
    /// threshold vote, with a cooperative deadline check between every
    /// stage. An expired token never interrupts in-flight work — it
    /// refuses the *next* stage, so a slot is always either scored or
    /// quarantined, never leaked.
    pub fn check_bytes(&self, body: &[u8], cancel: &CancelToken) -> CheckOutcome {
        if cancel.is_expired() {
            return CheckOutcome::Expired;
        }
        let image = {
            let _decode = self.telemetry.span("decam_engine_stage_seconds", &[("stage", "decode")]);
            let decoded = decode_image(body);
            record_decode(&self.telemetry, body, decoded.is_ok());
            match decoded {
                Ok((_, image)) => image,
                Err(failure) => {
                    return CheckOutcome::Quarantined {
                        fault: failure.fault(),
                        detail: failure.into_detail(),
                    }
                }
            }
        };
        if cancel.is_expired() {
            return CheckOutcome::Expired;
        }
        let scores = match self.engine.score_resilient(&image) {
            Ok(scores) => scores,
            Err(err) => {
                let detail = err.to_string();
                return match err.cause {
                    ScoreFault::Panicked { .. } => CheckOutcome::Panicked { detail },
                    ref cause => CheckOutcome::Quarantined { fault: cause.kind(), detail },
                };
            }
        };
        if cancel.is_expired() {
            return CheckOutcome::Expired;
        }
        self.vote(&scores)
    }

    /// Streams a source through the engine with bounded memory
    /// (`chunk_size` images resident at most) and the request's
    /// [`CancelToken`] armed between pipeline stages.
    ///
    /// Per-slot failures quarantine the slot — including recovered
    /// panics, which on the batch path are a position-level fault, not a
    /// request-level 500.
    pub fn scan_source(
        &self,
        source: &mut dyn ImageSource,
        cancel: &CancelToken,
        chunk_size: usize,
    ) -> ScanOutcome {
        let config = StreamConfig::default()
            .with_chunk_size(chunk_size)
            .with_threads(1)
            .with_pool_capacity(4)
            .with_cancel(cancel.clone());
        let mut entries = Vec::new();
        let (mut flagged, mut benign, mut quarantined, mut degraded) = (0, 0, 0, 0);
        let summary = self.engine.score_stream(source, &config, |_index, result| {
            let entry = match result {
                Ok(scores) => match self.vote(&scores) {
                    CheckOutcome::Verdict { verdict, .. } => ScanEntry::Scored(verdict),
                    CheckOutcome::Quarantined { fault, detail } => {
                        ScanEntry::Quarantined { fault, detail }
                    }
                    // vote() only produces the two arms above.
                    CheckOutcome::Panicked { detail } => {
                        ScanEntry::Quarantined { fault: "panic", detail }
                    }
                    CheckOutcome::Expired => {
                        ScanEntry::Quarantined { fault: "injected", detail: "unreachable".into() }
                    }
                },
                Err(err) => {
                    let detail = err.to_string();
                    ScanEntry::Quarantined { fault: err.cause.kind(), detail }
                }
            };
            match &entry {
                ScanEntry::Scored(verdict) => {
                    if verdict.is_attack {
                        flagged += 1;
                    } else {
                        benign += 1;
                    }
                    degraded += usize::from(verdict.degraded);
                }
                ScanEntry::Quarantined { .. } => quarantined += 1,
            }
            entries.push(entry);
        });
        ScanOutcome { entries, flagged, benign, quarantined, degraded, expired: summary.cancelled }
    }
}

impl CheckOutcome {
    /// Renders the `/check` response body.
    pub fn to_json(&self) -> String {
        match self {
            Self::Verdict { scores, verdict } => {
                let mut body = String::from("{");
                body.push_str(&format!(
                    "\"verdict\":\"{}\",\"degraded\":{}",
                    if verdict.is_attack { "attack" } else { "benign" },
                    verdict.degraded
                ));
                body.push_str(",\"scores\":{");
                let rendered: Vec<String> = SERVICE_METHODS
                    .iter()
                    .map(|&id| format!("\"{}\":{}", id.name(), json::number(scores.get(id))))
                    .collect();
                body.push_str(&rendered.join(","));
                body.push_str("},\"votes\":{");
                let rendered: Vec<String> = verdict
                    .votes
                    .iter()
                    .map(|(id, vote)| format!("\"{}\":{}", id.name(), vote))
                    .collect();
                body.push_str(&rendered.join(","));
                body.push_str("},\"unavailable\":{");
                let rendered: Vec<String> = verdict
                    .unavailable
                    .iter()
                    .map(|(id, reason)| format!("\"{}\":\"{}\"", id.name(), json::escape(reason)))
                    .collect();
                body.push_str(&rendered.join(","));
                body.push_str("}}");
                body
            }
            Self::Quarantined { fault, detail } => format!(
                "{{\"error\":\"quarantined\",\"fault\":\"{fault}\",\"detail\":\"{}\"}}",
                json::escape(detail)
            ),
            Self::Panicked { detail } => {
                format!("{{\"error\":\"panic\",\"detail\":\"{}\"}}", json::escape(detail))
            }
            Self::Expired => "{\"error\":\"deadline-expired\"}".to_string(),
        }
    }

    /// The HTTP status this outcome maps to.
    pub fn status(&self) -> u16 {
        match self {
            Self::Verdict { .. } => 200,
            Self::Quarantined { .. } => 422,
            Self::Panicked { .. } => 500,
            Self::Expired => 504,
        }
    }
}

impl ScanOutcome {
    /// Renders the `/scan` response body (also used, with the partial
    /// counts, for the 504 body when the stream expired mid-way).
    pub fn to_json(&self) -> String {
        let mut body = format!(
            "{{\"images\":{},\"flagged\":{},\"benign\":{},\"quarantined\":{},\
             \"degraded\":{},\"expired\":{},\"results\":[",
            self.entries.len(),
            self.flagged,
            self.benign,
            self.quarantined,
            self.degraded,
            self.expired
        );
        let rendered: Vec<String> = self
            .entries
            .iter()
            .enumerate()
            .map(|(index, entry)| match entry {
                ScanEntry::Scored(verdict) => format!(
                    "{{\"index\":{index},\"verdict\":\"{}\",\"degraded\":{}}}",
                    if verdict.is_attack { "attack" } else { "benign" },
                    verdict.degraded
                ),
                ScanEntry::Quarantined { fault, detail } => format!(
                    "{{\"index\":{index},\"quarantined\":\"{fault}\",\"detail\":\"{}\"}}",
                    json::escape(detail)
                ),
            })
            .collect();
        body.push_str(&rendered.join(","));
        body.push_str("]}");
        body
    }

    /// The HTTP status this outcome maps to.
    pub fn status(&self) -> u16 {
        if self.expired {
            504
        } else {
            200
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_core::Direction;
    use decamouflage_imaging::codec::encode_pgm;

    fn thresholds() -> ThresholdSet {
        let mut set = ThresholdSet::new();
        set.insert(MethodId::ScalingMse, Threshold::new(400.0, Direction::AboveIsAttack));
        set.insert(MethodId::FilteringSsim, Threshold::new(0.55, Direction::BelowIsAttack));
        set.insert(MethodId::Csp, Threshold::new(10.0, Direction::AboveIsAttack));
        set
    }

    fn service(policy: DegradePolicy) -> DetectionService {
        DetectionService::new(Size::square(16), &thresholds(), policy).unwrap()
    }

    fn benign_image_bytes() -> Vec<u8> {
        let image = Image::from_fn_gray(48, 48, |x, y| 40.0 + ((x + y) % 32) as f64);
        encode_pgm(&image)
    }

    #[test]
    fn missing_threshold_entries_are_named() {
        let mut set = ThresholdSet::new();
        set.insert(MethodId::ScalingMse, Threshold::new(400.0, Direction::AboveIsAttack));
        set.insert(MethodId::FilteringSsim, Threshold::new(0.55, Direction::BelowIsAttack));
        let err = DetectionService::new(Size::square(16), &set, DegradePolicy::Strict).unwrap_err();
        assert!(err.contains("steganalysis/csp"), "{err}");
    }

    #[test]
    fn a_benign_image_scores_and_votes() {
        let outcome =
            service(DegradePolicy::Strict).check_bytes(&benign_image_bytes(), &CancelToken::new());
        let CheckOutcome::Verdict { scores, verdict } = &outcome else {
            panic!("expected a verdict, got {outcome:?}");
        };
        assert_eq!(verdict.votes.len(), 3);
        assert!(verdict.unavailable.is_empty());
        assert!(scores.get(MethodId::ScalingMse).is_finite());
        assert_eq!(outcome.status(), 200);
        let json = outcome.to_json();
        assert!(json.contains("\"verdict\":"), "{json}");
        assert!(json.contains("\"scaling/mse\":"), "{json}");
    }

    #[test]
    fn unknown_magic_quarantines_as_unsupported_format() {
        let outcome =
            service(DegradePolicy::Strict).check_bytes(b"not an image", &CancelToken::new());
        let CheckOutcome::Quarantined { fault, .. } = outcome else {
            panic!("expected quarantine");
        };
        assert_eq!(fault, "unsupported-format");
    }

    #[test]
    fn broken_supported_format_quarantines_as_unreadable() {
        // A real PNG signature followed by garbage: the codec claims it,
        // then fails structurally.
        let mut body = vec![137, 80, 78, 71, 13, 10, 26, 10];
        body.extend_from_slice(b"garbage after the signature");
        let outcome = service(DegradePolicy::Strict).check_bytes(&body, &CancelToken::new());
        let CheckOutcome::Quarantined { fault, .. } = outcome else {
            panic!("expected quarantine");
        };
        assert_eq!(fault, "unreadable");
    }

    #[test]
    fn a_png_body_scores_like_its_pgm_twin() {
        use decamouflage_imaging::codec::encode_png;
        let image = Image::from_fn_gray(48, 48, |x, y| 40.0 + ((x * y) % 32) as f64);
        let service = service(DegradePolicy::Strict);
        let from_png = service.check_bytes(&encode_png(&image), &CancelToken::new());
        let from_pgm = service.check_bytes(&encode_pgm(&image), &CancelToken::new());
        let (CheckOutcome::Verdict { scores: a, .. }, CheckOutcome::Verdict { scores: b, .. }) =
            (&from_png, &from_pgm)
        else {
            panic!("expected verdicts, got {from_png:?} / {from_pgm:?}");
        };
        for &method in SERVICE_METHODS {
            assert_eq!(a.get(method).to_bits(), b.get(method).to_bits(), "{method:?}");
        }
    }

    #[test]
    fn degenerate_images_carry_their_fault_kind() {
        // 1x1 is below every analysis window: the engine quarantines it.
        let tiny = encode_pgm(&Image::from_fn_gray(1, 1, |_, _| 1.0));
        let outcome = service(DegradePolicy::Strict).check_bytes(&tiny, &CancelToken::new());
        let CheckOutcome::Quarantined { fault, .. } = outcome else {
            panic!("expected quarantine");
        };
        assert!(
            fault == "below-minimum-size" || fault == "degenerate-dimensions",
            "unexpected fault {fault}"
        );
    }

    #[test]
    fn an_expired_token_refuses_every_stage() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcome = service(DegradePolicy::Strict).check_bytes(&benign_image_bytes(), &cancel);
        assert!(matches!(outcome, CheckOutcome::Expired));
        assert_eq!(outcome.status(), 504);
    }

    #[test]
    fn scan_streams_frames_and_counts_quarantines() {
        use decamouflage_core::stream::SliceSource;
        let service = service(DegradePolicy::Strict);
        let good = Image::from_fn_gray(48, 48, |x, y| 40.0 + ((x * y) % 32) as f64);
        let images = vec![good.clone(), good];
        let mut source = SliceSource::new(&images);
        let outcome = service.scan_source(&mut source, &CancelToken::new(), 4);
        assert_eq!(outcome.entries.len(), 2);
        assert_eq!(outcome.flagged + outcome.benign, 2);
        assert!(!outcome.expired);
        assert_eq!(outcome.status(), 200);
        let json = outcome.to_json();
        assert!(json.contains("\"images\":2"), "{json}");
    }

    #[test]
    fn scan_with_a_tripped_token_reports_expiry() {
        use decamouflage_core::stream::SliceSource;
        let service = service(DegradePolicy::Strict);
        let good = Image::from_fn_gray(48, 48, |x, y| 40.0 + ((x + y) % 32) as f64);
        let images = vec![good; 3];
        let mut source = SliceSource::new(&images);
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcome = service.scan_source(&mut source, &cancel, 1);
        assert!(outcome.expired);
        assert_eq!(outcome.status(), 504);
        assert!(outcome.entries.is_empty(), "nothing pulled after expiry");
    }
}
