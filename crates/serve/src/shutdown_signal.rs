//! A process-wide SIGTERM latch.
//!
//! The accept loop polls [`seen`] between accepts; orchestrators send
//! SIGTERM and the server drains instead of dying mid-request. The
//! handler itself only stores into an `AtomicBool` — the one operation
//! that is async-signal-safe — and the drain logic runs on the accept
//! thread, never in signal context.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM (or a test [`trigger`]) has been observed.
pub fn seen() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Sets the latch exactly as the signal handler would (for tests and
/// for wiring alternative shutdown sources).
pub fn trigger() {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler. Idempotent; later installs replace
/// the same handler. On non-Unix targets this is a no-op and only
/// [`trigger`]-based shutdown is available.
#[cfg(unix)]
pub fn install() {
    #[allow(unsafe_code)]
    mod ffi {
        /// SIGTERM on every Unix the workspace targets.
        pub const SIGTERM: i32 = 15;

        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        extern "C" fn on_term(_signum: i32) {
            super::TERM.store(true, std::sync::atomic::Ordering::SeqCst);
        }

        pub fn install_sigterm() {
            // SAFETY: `signal` is the libc prototype; the handler only
            // performs an atomic store, which is async-signal-safe.
            unsafe {
                signal(SIGTERM, on_term as *const () as usize);
            }
        }
    }
    ffi::install_sigterm();
}

/// No signal support off Unix; shutdown comes from [`trigger`] or a
/// [`ServerHandle`](crate::ServerHandle).
#[cfg(not(unix))]
pub fn install() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_the_latch() {
        // The latch is process-global and sticky, so this test is the
        // only one allowed to flip it.
        assert!(!seen());
        trigger();
        assert!(seen());
    }
}
