//! Detection-as-a-service: an overload-safe, deadline-bounded HTTP
//! server over the Decamouflage detection engine.
//!
//! The crate is dependency-free — `std::net::TcpListener` plus the
//! workspace's own [`WorkerPool`](decamouflage_core::parallel::WorkerPool)
//! — and exposes four routes:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /check` | one image body → verdict JSON with per-method scores |
//! | `POST /scan` | chunked body, one image per HTTP chunk, streamed with bounded memory |
//! | `GET /metrics` | Prometheus text exposition of the process-global registry |
//! | `GET /healthz` | readiness; flips to `503 draining` first during shutdown |
//!
//! Robustness is the headline, not throughput: a bounded admission
//! queue with a typed `503 + Retry-After` shed path, per-request
//! deadlines enforced both at the socket and cooperatively between
//! pipeline stages (`504` on expiry, the handler slot released rather
//! than leaked), request-size and header limits (`413`/`431`), the
//! engine's `ScoreFault` taxonomy mapped onto HTTP statuses
//! (quarantined input → `422` with the fault kind, recovered panic →
//! `500`, degraded-voting verdicts annotated in the body), and a
//! graceful SIGTERM drain. See [`server`] for the admission state
//! machine and [`service`] for the fault→status mapping.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod flags;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod service;
pub mod shutdown_signal;

pub use metrics::ServiceMetrics;
pub use server::{DrainReport, Server, ServerConfig, ServerHandle};
pub use service::{CheckOutcome, DetectionService, ScanOutcome, Verdict};
