//! Property/fuzz tests: the HTTP request parser is total over
//! arbitrary bytes. Whatever the wire delivers — garbage request
//! lines, truncated heads, Content-Length overflow or mismatch,
//! interleaved CRLF, hostile chunk framing — parsing must end in a
//! well-formed 4xx-mappable error or a clean result, never a panic and
//! never unbounded buffering.

use decamouflage_serve::http::{
    parse_head, read_head, read_sized_body, BodyPlan, ChunkedReader, HttpError,
};
use proptest::prelude::*;

/// Arbitrary byte soup, biased toward HTTP-ish structure so the
/// interesting branches (CRLF handling, header splits, hex sizes) get
/// exercised, not just the UTF-8 rejection fast path.
fn arb_wire_bytes() -> impl Strategy<Value = Vec<u8>> {
    let atom = prop_oneof![
        Just(b"GET / HTTP/1.1\r\n".to_vec()),
        Just(b"POST /check HTTP/1.1\r\n".to_vec()),
        Just(b"Content-Length: 10\r\n".to_vec()),
        Just(b"Content-Length: 99999999999999999999\r\n".to_vec()),
        Just(b"Transfer-Encoding: chunked\r\n".to_vec()),
        Just(b"\r\n".to_vec()),
        Just(b"\n".to_vec()),
        Just(b"\r".to_vec()),
        Just(b": no-name\r\n".to_vec()),
        Just(b"Bad Header Name: x\r\n".to_vec()),
        proptest::collection::vec(0u8..=255u8, 0..24),
    ];
    proptest::collection::vec(atom, 0..12).prop_map(|atoms| atoms.concat())
}

/// Hostile chunked-encoding payloads: valid-ish size lines, huge hex,
/// negative-looking sizes, missing terminators, raw bytes.
fn arb_chunked_bytes() -> impl Strategy<Value = Vec<u8>> {
    let atom = prop_oneof![
        Just(b"4\r\nwire\r\n".to_vec()),
        Just(b"0\r\n\r\n".to_vec()),
        Just(b"ffffffffffffffff1\r\n".to_vec()),
        Just(b"-5\r\nxxxxx\r\n".to_vec()),
        Just(b"a;ext=1\r\n0123456789\r\n".to_vec()),
        Just(b"3\r\nab".to_vec()),
        proptest::collection::vec(0u8..=255u8, 0..16),
    ];
    proptest::collection::vec(atom, 0..8).prop_map(|atoms| atoms.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse_head` never panics and classifies every input.
    #[test]
    fn parse_head_is_total_over_arbitrary_bytes(bytes in arb_wire_bytes()) {
        match parse_head(&bytes) {
            Ok(head) => {
                // Anything accepted satisfies the head invariants.
                prop_assert!(!head.method.is_empty());
                prop_assert!(head.target.starts_with('/') || head.target == "*");
                prop_assert!(head.version == "HTTP/1.0" || head.version == "HTTP/1.1");
                // body_plan on an accepted head must also be total.
                let _ = head.body_plan();
            }
            Err(HttpError::BadRequest(detail)) => prop_assert!(!detail.is_empty()),
            Err(HttpError::HeadersTooLarge) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// `read_head` never buffers past its cap and never panics, on any
    /// byte stream including ones with no terminator at all.
    #[test]
    fn read_head_is_bounded_and_total(bytes in arb_wire_bytes(), cap in 16usize..512) {
        let mut reader = bytes.as_slice();
        match read_head(&mut reader, cap) {
            Ok(Some(head)) => prop_assert!(head.len() <= cap),
            // Clean EOF before any bytes arrived.
            Ok(None) => prop_assert!(bytes.is_empty()),
            Err(HttpError::HeadersTooLarge | HttpError::BadRequest(_)) => {}
            Err(HttpError::Closed) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// The chunked decoder is total and never hands out more payload
    /// than its budget, whatever the framing claims.
    #[test]
    fn chunked_reader_is_total_and_respects_budget(
        bytes in arb_chunked_bytes(),
        budget in 1usize..256,
    ) {
        let mut reader = bytes.as_slice();
        let mut frames = ChunkedReader::new(&mut reader, budget);
        let mut total = 0usize;
        loop {
            match frames.next_frame() {
                Ok(Some(frame)) => {
                    total += frame.len();
                    prop_assert!(total <= budget, "{total} bytes exceeds budget {budget}");
                }
                Ok(None) => break,
                Err(
                    HttpError::BadRequest(_)
                    | HttpError::BodyTooLarge
                    | HttpError::Closed
                    | HttpError::HeadersTooLarge,
                ) => break,
                Err(other) => {
                    prop_assert!(false, "unexpected error class: {other}");
                }
            }
        }
    }

    /// A sized body read refuses lengths past the cap without reading,
    /// and short streams surface as clean close, not panic.
    #[test]
    fn sized_body_reads_are_total(
        body in proptest::collection::vec(0u8..=255u8, 0..128),
        claimed in 0usize..512,
        cap in 0usize..256,
    ) {
        let mut reader = body.as_slice();
        match read_sized_body(&mut reader, claimed, cap) {
            Ok(bytes) => {
                prop_assert_eq!(bytes.len(), claimed);
                prop_assert!(claimed <= cap);
            }
            Err(HttpError::BodyTooLarge) => prop_assert!(claimed > cap),
            Err(HttpError::Closed) => prop_assert!(body.len() < claimed),
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Round-trip: any request we would legitimately emit parses back
    /// to the same method/target, with the body plan intact.
    #[test]
    fn well_formed_requests_round_trip(
        target_tail in "[a-z]{0,12}",
        length in 0usize..4096,
    ) {
        let target = format!("/{target_tail}");
        let raw = format!(
            "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {length}\r\n\r\n"
        );
        let head = parse_head(raw.as_bytes()).unwrap();
        prop_assert_eq!(head.method.as_str(), "POST");
        prop_assert_eq!(head.path(), target.as_str());
        prop_assert_eq!(head.body_plan().unwrap(), BodyPlan::Sized(length));
    }
}
