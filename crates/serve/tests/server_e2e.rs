//! In-process end-to-end tests: a real [`Server`] bound to an
//! ephemeral loopback port, driven over real `TcpStream`s.
//!
//! Telemetry caveat: the server records into the process-global
//! registry, which accumulates across tests in one binary, so these
//! tests assert *deltas and presence*, never exact global totals.

use decamouflage_core::persist::ThresholdSet;
use decamouflage_core::{DegradePolicy, Direction, MethodId, Threshold};
use decamouflage_imaging::codec::encode_pgm;
use decamouflage_imaging::{Image, Size};
use decamouflage_serve::{DetectionService, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn thresholds() -> ThresholdSet {
    let mut set = ThresholdSet::new();
    set.insert(MethodId::ScalingMse, Threshold::new(400.0, Direction::AboveIsAttack));
    set.insert(MethodId::FilteringSsim, Threshold::new(0.55, Direction::BelowIsAttack));
    set.insert(MethodId::Csp, Threshold::new(10.0, Direction::AboveIsAttack));
    set
}

fn service() -> DetectionService {
    DetectionService::new(Size::square(16), &thresholds(), DegradePolicy::MajorityOfAvailable)
        .expect("full threshold set")
}

/// Starts a server on an ephemeral port and runs it on a background
/// thread; the join handle resolves when the server drains.
fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<bool>) {
    // The server records into the process-global registry; /metrics
    // needs it live. First install wins, so every test may call this.
    decamouflage_telemetry::install_global(decamouflage_telemetry::Telemetry::enabled());
    let server = Server::bind(config, service()).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run").drained);
    (addr, handle, join)
}

fn benign_pgm() -> Vec<u8> {
    let image = Image::from_fn_gray(48, 48, |x, y| ((x * 3 + y * 5) % 61) as f64);
    encode_pgm(&image)
}

/// One blocking request/response exchange; returns the raw response.
fn exchange(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(request).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    String::from_utf8_lossy(&response).into_owned()
}

fn post(path: &str, body: &[u8]) -> Vec<u8> {
    let mut request =
        format!("POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes();
    request.extend_from_slice(body);
    request
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").into_bytes()
}

fn status_of(response: &str) -> &str {
    response.split_whitespace().nth(1).unwrap_or("<no status>")
}

#[test]
fn serves_the_full_route_surface_and_drains_clean() {
    let (addr, handle, join) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        drain_deadline: Duration::from_secs(5),
        lame_duck: Duration::from_millis(50),
        ..ServerConfig::default()
    });

    // Readiness and metrics.
    let health = exchange(addr, &get("/healthz"));
    assert_eq!(status_of(&health), "200", "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    let metrics = exchange(addr, &get("/metrics"));
    assert_eq!(status_of(&metrics), "200", "{metrics}");
    assert!(metrics.contains("decam_http_in_flight"), "{metrics}");

    // A valid check verdict.
    let check = exchange(addr, &post("/check", &benign_pgm()));
    assert_eq!(status_of(&check), "200", "{check}");
    assert!(check.contains("\"verdict\":"), "{check}");
    assert!(check.contains("\"scores\":"), "{check}");

    // Unknown magic → typed 422 quarantine with the unsupported-format
    // fault kind; a claimed-but-broken PNG quarantines as unreadable.
    let garbage = exchange(addr, &post("/check", b"not an image at all"));
    assert_eq!(status_of(&garbage), "422", "{garbage}");
    assert!(garbage.contains("\"fault\":\"unsupported-format\""), "{garbage}");
    let mut broken_png = vec![137u8, 80, 78, 71, 13, 10, 26, 10];
    broken_png.extend_from_slice(b"truncated chunk soup");
    let broken = exchange(addr, &post("/check", &broken_png));
    assert_eq!(status_of(&broken), "422", "{broken}");
    assert!(broken.contains("\"fault\":\"unreadable\""), "{broken}");

    // The decode counter surfaces per-format labels on /metrics.
    let metrics = exchange(addr, &get("/metrics"));
    assert!(
        metrics.contains("decam_codec_decode_total{format=\"unknown\",outcome=\"error\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("decam_codec_decode_total{format=\"png\",outcome=\"error\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("decam_codec_decode_total{format=\"pnm\",outcome=\"ok\"}"),
        "{metrics}"
    );

    // Malformed request line → 400; unknown route → 404; wrong method → 405.
    let bad = exchange(addr, b"BOGUS\r\n\r\n");
    assert_eq!(status_of(&bad), "400", "{bad}");
    let missing = exchange(addr, &get("/nope"));
    assert_eq!(status_of(&missing), "404", "{missing}");
    let wrong = exchange(addr, &get("/check"));
    assert_eq!(status_of(&wrong), "405", "{wrong}");

    // Drain: request shutdown, then confirm the server exits drained.
    handle.shutdown();
    assert!(join.join().expect("server thread"), "drain completed");
    assert_eq!(handle.in_flight(), 0);
}

#[test]
fn oversized_and_overlong_requests_get_typed_rejections() {
    let (addr, handle, join) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_body_bytes: 1024,
        max_header_bytes: 512,
        drain_deadline: Duration::from_secs(5),
        lame_duck: Duration::from_millis(50),
        ..ServerConfig::default()
    });

    // Declared length past the cap → 413 without reading the body.
    let request = format!(
        "POST /check HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    );
    let response = exchange(addr, request.as_bytes());
    assert_eq!(status_of(&response), "413", "{response}");

    // A huge header block → 431.
    let mut request = b"GET /healthz HTTP/1.1\r\n".to_vec();
    request.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "p".repeat(2048)).as_bytes());
    let response = exchange(addr, &request);
    assert_eq!(status_of(&response), "431", "{response}");

    handle.shutdown();
    assert!(join.join().expect("server thread"));
}

#[test]
fn scan_streams_chunked_bodies_one_image_per_chunk() {
    let (addr, handle, join) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        drain_deadline: Duration::from_secs(5),
        lame_duck: Duration::from_millis(50),
        ..ServerConfig::default()
    });

    let image = benign_pgm();
    let mut request =
        b"POST /scan HTTP/1.1\r\nHost: test\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    for body in [image.as_slice(), image.as_slice(), b"broken bytes"] {
        request.extend_from_slice(format!("{:x}\r\n", body.len()).as_bytes());
        request.extend_from_slice(body);
        request.extend_from_slice(b"\r\n");
    }
    request.extend_from_slice(b"0\r\n\r\n");

    let response = exchange(addr, &request);
    assert_eq!(status_of(&response), "200", "{response}");
    assert!(response.contains("\"images\":3"), "{response}");
    assert!(response.contains("\"quarantined\":1"), "{response}");

    handle.shutdown();
    assert!(join.join().expect("server thread"));
}

#[test]
fn overload_sheds_with_retry_after_while_a_slow_request_holds_the_only_handler() {
    // One handler, zero queue: a slow-loris connection occupying the
    // handler forces the very next connection onto the shed path.
    let (addr, handle, join) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        handlers: 1,
        queue_limit: 0,
        deadline: Duration::from_secs(4),
        drain_deadline: Duration::from_secs(8),
        lame_duck: Duration::from_millis(50),
        ..ServerConfig::default()
    });

    // Hold the handler: connect, send a partial request, stay silent.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris.write_all(b"POST /check HTTP/1.1\r\n").expect("partial head");
    // Give the accept loop time to admit the loris into the handler.
    std::thread::sleep(Duration::from_millis(300));

    let shed = exchange(addr, &get("/healthz"));
    assert_eq!(status_of(&shed), "503", "{shed}");
    assert!(shed.contains("Retry-After:"), "{shed}");
    assert!(shed.contains("\"error\":\"overloaded\""), "{shed}");

    // The loris connection cannot outlive the deadline: the socket
    // timeout fires and the server answers 408 (peer stalled) or 504
    // (the request deadline itself expired — the two race at the
    // boundary), or at worst closes the socket. Either way the handler
    // slot comes back.
    loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut response = Vec::new();
    loris.read_to_end(&mut response).expect("loris response");
    let response = String::from_utf8_lossy(&response);
    assert!(
        response.starts_with("HTTP/1.1 408")
            || response.starts_with("HTTP/1.1 504")
            || response.is_empty(),
        "expected timeout rejection or close, got: {response}"
    );

    // With the loris reaped the server serves again (the admission
    // slot frees when the handler fully unwinds, so poll briefly).
    let mut recovered = String::new();
    for _ in 0..50 {
        recovered = exchange(addr, &get("/healthz"));
        if status_of(&recovered) == "200" {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(status_of(&recovered), "200", "{recovered}");
    handle.shutdown();
    assert!(join.join().expect("server thread"), "drain completed after overload");
    assert_eq!(handle.in_flight(), 0, "no leaked admission slots");
}

#[test]
fn draining_server_flips_healthz_and_sheds_work_before_closing() {
    let (addr, handle, join) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        drain_deadline: Duration::from_secs(5),
        lame_duck: Duration::from_millis(800),
        ..ServerConfig::default()
    });
    // Confirm liveness, then start the drain and probe inside the
    // lame-duck window.
    let health = exchange(addr, &get("/healthz"));
    assert_eq!(status_of(&health), "200", "{health}");
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(150));

    let not_ready = exchange(addr, &get("/healthz"));
    assert_eq!(status_of(&not_ready), "503", "{not_ready}");
    assert!(not_ready.contains("\"status\":\"draining\""), "{not_ready}");

    let shed = exchange(addr, &post("/check", &benign_pgm()));
    assert_eq!(status_of(&shed), "503", "{shed}");
    assert!(shed.contains("\"error\":\"draining\""), "{shed}");

    assert!(join.join().expect("server thread"), "drain completed");
}
