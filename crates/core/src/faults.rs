//! Deterministic fault injection for testing the quarantine layer.
//!
//! A production screening deployment has to keep serving when one image —
//! or one detector — misbehaves. Proving that requires *causing* the
//! misbehaviour on demand: this module provides a seed-driven, fully
//! deterministic [`FaultPlan`] (which scoring indices fail, and how) plus
//! two injection points that consume it:
//!
//! * [`DetectionEngine::with_fault_plan`](crate::DetectionEngine::with_fault_plan)
//!   fires plan entries by batch fan-out index inside
//!   [`score_corpus_resilient`](crate::DetectionEngine::score_corpus_resilient),
//!   so an injected panic travels the exact worker-pool → `catch_unwind` →
//!   quarantine path a real deep panic would;
//! * [`FaultyDetector`] wraps any [`Detector`] and fires plan entries by
//!   call sequence number, for ensemble-level degradation tests.
//!
//! Nothing here is test-gated: fault injection is a first-class operational
//! tool (staging canaries, chaos drills), not a unit-test convenience.

use crate::detector::Detector;
use crate::threshold::Direction;
use crate::DetectError;
use decamouflage_imaging::Image;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What an armed fault site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return a typed error ([`ScoreFault::Injected`](crate::ScoreFault::Injected)).
    Error,
    /// Panic with a recognisable payload, exercising the unwind path.
    Panic,
    /// Report a `NaN` score, exercising the missing-score ensemble policy.
    NanScore,
}

/// A deterministic schedule of faults keyed by scoring index.
///
/// Build one by listing indices explicitly ([`FaultPlan::with`]), by
/// seed-driven scatter over a range ([`FaultPlan::scattered`]), or as a
/// blanket failure ([`FaultPlan::always`]). The same inputs always produce
/// the same plan, so a failing fault-injection run reproduces exactly.
///
/// # Example
///
/// ```
/// use decamouflage_core::faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new().with(3, FaultKind::Panic).with(7, FaultKind::Error);
/// assert_eq!(plan.get(3), Some(FaultKind::Panic));
/// assert_eq!(plan.get(4), None);
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
    always: Option<FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan where *every* index fires `kind` (explicit entries take
    /// precedence).
    pub fn always(kind: FaultKind) -> Self {
        Self { faults: BTreeMap::new(), always: Some(kind) }
    }

    /// Arms `kind` at `index` (builder style).
    #[must_use]
    pub fn with(mut self, index: usize, kind: FaultKind) -> Self {
        self.faults.insert(index, kind);
        self
    }

    /// Arms `kind` at `count` distinct indices drawn deterministically from
    /// `0..range` by a SplitMix64 stream over `seed`. The same
    /// `(seed, count, range)` always selects the same indices.
    ///
    /// # Panics
    ///
    /// Panics if `count > range` — the plan could never hold that many
    /// distinct indices.
    pub fn scattered(seed: u64, count: usize, range: usize, kind: FaultKind) -> Self {
        assert!(count <= range, "cannot scatter {count} faults over {range} indices");
        let mut plan = Self::new();
        let mut state = seed;
        let mut armed = 0usize;
        while armed < count {
            state = splitmix64(state);
            let index = (state % range as u64) as usize;
            if plan.faults.insert(index, kind).is_none() {
                armed += 1;
            }
        }
        plan
    }

    /// The fault armed at `index`, if any.
    pub fn get(&self, index: usize) -> Option<FaultKind> {
        self.faults.get(&index).copied().or(self.always)
    }

    /// Number of explicitly armed indices (a blanket [`FaultPlan::always`]
    /// plan counts zero here).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan fires nowhere.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.always.is_none()
    }

    /// The explicitly armed indices, ascending.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults.keys().copied()
    }
}

/// One step of the SplitMix64 stream (the same avalanche the dataset
/// profiles use for their deterministic sample derivation).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Detector`] wrapper that fires a [`FaultPlan`] entry on the matching
/// `score` call (0-based call sequence), delegating to the inner detector
/// otherwise. The call counter is atomic, so a `FaultyDetector` shared
/// across worker threads still fires each armed site exactly once.
#[derive(Debug)]
pub struct FaultyDetector<D> {
    inner: D,
    plan: FaultPlan,
    calls: AtomicUsize,
}

impl<D: Detector> FaultyDetector<D> {
    /// Wraps `inner`, arming `plan` by call sequence.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        Self { inner, plan, calls: AtomicUsize::new(0) }
    }

    /// Number of `score` calls observed so far.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Detector> Detector for FaultyDetector<D> {
    fn score(&self, image: &Image) -> Result<f64, DetectError> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        match self.plan.get(call) {
            Some(FaultKind::Panic) => panic!("injected panic at scoring call {call}"),
            Some(FaultKind::Error) => Err(DetectError::from(crate::ScoreError::injected(call))),
            Some(FaultKind::NanScore) => Ok(f64::NAN),
            None => self.inner.score(image),
        }
    }

    fn direction(&self) -> Direction {
        self.inner.direction()
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::{Channels, Image};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[derive(Debug)]
    struct MeanDetector;

    impl Detector for MeanDetector {
        fn score(&self, image: &Image) -> Result<f64, DetectError> {
            Ok(image.mean_sample())
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "mean".into()
        }
    }

    fn img(v: f64) -> Image {
        Image::filled(2, 2, Channels::Gray, v)
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        for i in 0..32 {
            assert_eq!(plan.get(i), None);
        }
    }

    #[test]
    fn explicit_entries_override_the_blanket_kind() {
        let plan = FaultPlan::always(FaultKind::Error).with(2, FaultKind::NanScore);
        assert!(!plan.is_empty());
        assert_eq!(plan.get(0), Some(FaultKind::Error));
        assert_eq!(plan.get(2), Some(FaultKind::NanScore));
    }

    #[test]
    fn scattered_is_deterministic_per_seed() {
        let a = FaultPlan::scattered(42, 5, 100, FaultKind::Panic);
        let b = FaultPlan::scattered(42, 5, 100, FaultKind::Panic);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.indices().all(|i| i < 100));
        let c = FaultPlan::scattered(43, 5, 100, FaultKind::Panic);
        assert_ne!(a, c, "different seeds should scatter differently");
    }

    #[test]
    fn scattered_saturating_the_range_covers_it() {
        let plan = FaultPlan::scattered(7, 8, 8, FaultKind::Error);
        assert_eq!(plan.indices().collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot scatter")]
    fn scattered_rejects_impossible_counts() {
        let _ = FaultPlan::scattered(1, 9, 8, FaultKind::Error);
    }

    #[test]
    fn faulty_detector_fires_by_call_sequence() {
        let plan = FaultPlan::new()
            .with(1, FaultKind::Error)
            .with(2, FaultKind::NanScore)
            .with(3, FaultKind::Panic);
        let d = FaultyDetector::new(MeanDetector, plan);
        assert_eq!(d.score(&img(10.0)).unwrap(), 10.0);
        assert!(d.score(&img(10.0)).is_err());
        assert!(d.score(&img(10.0)).unwrap().is_nan());
        let panicked = catch_unwind(AssertUnwindSafe(|| d.score(&img(10.0))));
        assert!(panicked.is_err(), "armed Panic site must unwind");
        assert_eq!(d.score(&img(4.0)).unwrap(), 4.0, "past the plan it delegates again");
        assert_eq!(d.calls(), 5);
        assert_eq!(d.name(), "mean");
        assert_eq!(d.direction(), Direction::AboveIsAttack);
        assert_eq!(d.inner().name(), "mean");
    }
}
