//! **Decamouflage** — detection of image-scaling (camouflage) attacks on
//! CNN preprocessing pipelines. Reproduction of Kim et al., *"Decamouflage:
//! A Framework to Detect Image-Scaling Attacks on Convolutional Neural
//! Networks"* (DSN 2021).
//!
//! The framework offers three independent detection methods plus an
//! ensemble:
//!
//! | Method | Signal | Metric | Attack indication |
//! |---|---|---|---|
//! | [`ScalingDetector`] | downscale→upscale round trip | MSE / SSIM | large MSE / small SSIM |
//! | [`FilteringDetector`] | minimum-filter residual | MSE / SSIM | large MSE / small SSIM |
//! | [`SteganalysisDetector`] | centered spectrum points | CSP count | `>= 2` points |
//! | [`PeakExcessDetector`] | radial spectrum peak excess | log-magnitude excess | large excess |
//! | [`Ensemble`] | majority vote of the above | — | majority of members vote attack |
//!
//! Each method is registered once in the typed [`MethodId`] registry
//! ([`method`] module); scores travel as a dense, id-indexed
//! [`ScoreVector`] and every layer (calibration, persistence, evaluation,
//! reports) enumerates [`MethodId::ALL`] instead of hardcoded lists.
//!
//! Thresholds come from two calibration modes mirroring the paper's threat
//! model: **white-box** ([`threshold::search_whitebox`], labelled
//! benign+attack training scores) and **black-box**
//! ([`threshold::percentile_blackbox`], benign-only percentile;
//! steganalysis needs no calibration at all — `CSP_T = 2` is universal).
//!
//! # Example
//!
//! ```
//! use decamouflage_core::{Detector, MetricKind, ScalingDetector, Threshold, Direction};
//! use decamouflage_imaging::{Image, Size, scale::ScaleAlgorithm};
//!
//! # fn main() -> Result<(), decamouflage_core::DetectError> {
//! let detector = ScalingDetector::new(Size::square(16), ScaleAlgorithm::Bilinear, MetricKind::Mse);
//! let benign = Image::from_fn_gray(64, 64, |x, y| (((x + y) * 2) % 200) as f64 + 20.0);
//! let score = detector.score(&benign)?;
//! let threshold = Threshold::new(1500.0, Direction::AboveIsAttack);
//! assert!(!threshold.is_attack(score));
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the worker pool in `parallel` carries one
// documented `#[allow(unsafe_code)]` for its scoped-job lifetime erasure.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod error;

pub mod calibrate;
pub mod config;
pub mod engine;
pub mod ensemble;
pub mod eval;
pub mod faults;
pub mod filtering;
pub mod method;
pub mod monitor;
pub mod parallel;
pub mod peak_excess;
pub mod persist;
pub mod pipeline;
pub mod prevention;
pub mod report;
pub mod roc;
pub mod scaling;
pub mod scan;
pub mod steganalysis;
pub mod stream;
pub mod threshold;

pub use config::ModelInputSize;
pub use detector::{Detector, MetricKind};
pub use engine::{
    BatchCounts, BatchOutcome, DetectionEngine, EngineArtifacts, EngineCorpus, EngineScores,
};
pub use ensemble::{DegradePolicy, Ensemble};
pub use error::{DetectError, ScoreError, ScoreFault};
pub use eval::{evaluate_batch_outcome, evaluate_decisions, ConfusionCounts, EvalMetrics};
pub use filtering::FilteringDetector;
pub use method::{MethodId, MethodSet, ScoreColumns, ScoreVector};
pub use peak_excess::PeakExcessDetector;
pub use persist::checkpoint::{CorpusFingerprint, QuarantineRecord, ScanCheckpoint};
pub use scaling::ScalingDetector;
pub use scan::{scan_shard, ScanReport};
pub use steganalysis::SteganalysisDetector;
pub use stream::{
    stable_key_hash, BufferPool, CancelToken, DirectorySource, FnSource, ImageSource, ShardSpec,
    ShardedSource, SliceSource, StreamConfig, StreamSummary,
};
pub use threshold::{Direction, Threshold};
