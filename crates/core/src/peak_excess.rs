//! Alternative frequency-domain detector: windowed radial peak excess.
//!
//! An extension beyond the paper's three methods: instead of counting
//! blobs, measure how far the brightest off-centre spectral sample towers
//! over the radial background at its radius (after Hann windowing to
//! suppress boundary leakage). This score is continuous — unlike the
//! integer CSP count — which makes it calibrable with the same white-box /
//! black-box machinery as the spatial methods and a useful fourth ensemble
//! member against adaptive attackers.

use crate::detector::Detector;
use crate::threshold::Direction;
use crate::DetectError;
use decamouflage_imaging::{Image, Size};
use decamouflage_spectral::dft2d::centered_spectrum;
use decamouflage_spectral::radial::peak_excess;
use decamouflage_spectral::window::{apply_window, WindowKind};

/// Windowed radial peak-excess scorer.
#[derive(Debug, Clone)]
pub struct PeakExcessDetector {
    window: WindowKind,
    min_radius_frac: f64,
    max_radius_frac: f64,
}

impl PeakExcessDetector {
    /// Creates a detector with the default configuration (Hann window,
    /// radii between 10% and 90% of the half-minimum dimension).
    pub fn new() -> Self {
        Self { window: WindowKind::Hann, min_radius_frac: 0.1, max_radius_frac: 0.9 }
    }

    /// Creates a detector whose inner exclusion radius is derived from a
    /// known CNN input size (attack peaks appear no closer than
    /// `min(target dims)` pixels from the centre).
    pub fn for_target(target: Size) -> Self {
        let mut d = Self::new();
        // Expressed later as an absolute pixel floor via min_radius_frac
        // when scoring; store the fraction of the *target*.
        d.min_radius_frac = 0.5 * target.width.min(target.height) as f64;
        d.max_radius_frac = -1.0; // marker: absolute mode
        d
    }

    /// Overrides the window function.
    #[must_use]
    pub fn with_window(mut self, window: WindowKind) -> Self {
        self.window = window;
        self
    }

    /// The window function in use.
    pub const fn window(&self) -> WindowKind {
        self.window
    }

    /// The `(min_radius, max_radius)` search band for an image of this
    /// size. Shared with the engine's fused spectrum path so both score
    /// the identical radius range.
    pub(crate) fn radii_for(&self, image: &Image) -> (usize, usize) {
        let half_min = 0.5 * image.width().min(image.height()) as f64;
        if self.max_radius_frac < 0.0 {
            // Absolute mode (for_target): inner radius in pixels, outer at
            // 90% of the half-minimum dimension.
            let inner = self.min_radius_frac.min(half_min * 0.8);
            (inner as usize, (half_min * 0.9) as usize)
        } else {
            ((half_min * self.min_radius_frac) as usize, (half_min * self.max_radius_frac) as usize)
        }
    }
}

impl Default for PeakExcessDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for PeakExcessDetector {
    fn score(&self, image: &Image) -> Result<f64, DetectError> {
        // Gray inputs are windowed in place — no luma copy; RGB pays one
        // fused luma pass.
        let gray_storage;
        let gray = if image.channel_count() == 1 {
            image
        } else {
            gray_storage = image.to_gray();
            &gray_storage
        };
        let windowed = apply_window(gray, self.window);
        let spectrum = centered_spectrum(&windowed);
        let (min_r, max_r) = self.radii_for(image);
        Ok(peak_excess(&spectrum, min_r.max(1), max_r.max(2)))
    }

    fn direction(&self) -> Direction {
        Direction::AboveIsAttack
    }

    fn name(&self) -> String {
        "steganalysis/peak-excess".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_attack::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::{ScaleAlgorithm, Scaler};

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (124.0 + 55.0 * ((x as f64) * 0.06).sin() + 45.0 * ((y as f64) * 0.05).cos()).round()
        })
    }

    fn attack_image(src: usize, dst: usize) -> Image {
        let scaler =
            Scaler::new(Size::square(src), Size::square(dst), ScaleAlgorithm::Bilinear).unwrap();
        let target = Image::from_fn_gray(dst, dst, |x, y| ((x * 83 + y * 47) % 256) as f64);
        craft_attack(&smooth(src), &target, &scaler, &AttackConfig::default()).unwrap().image
    }

    #[test]
    fn attack_scores_above_benign() {
        let det = PeakExcessDetector::for_target(Size::square(32));
        let benign = det.score(&smooth(128)).unwrap();
        let attack = det.score(&attack_image(128, 32)).unwrap();
        assert!(attack > benign + 0.05, "benign {benign:.3}, attack {attack:.3}");
    }

    #[test]
    fn direction_and_name() {
        let det = PeakExcessDetector::new();
        assert_eq!(det.direction(), Direction::AboveIsAttack);
        assert_eq!(det.name(), "steganalysis/peak-excess");
    }

    #[test]
    fn builder_and_accessors() {
        let det = PeakExcessDetector::new().with_window(WindowKind::Blackman);
        assert_eq!(det.window(), WindowKind::Blackman);
        let d2 = PeakExcessDetector::default();
        assert_eq!(d2.window(), WindowKind::Hann);
    }

    #[test]
    fn scores_are_finite_on_degenerate_inputs() {
        let det = PeakExcessDetector::new();
        for img in [
            Image::filled(8, 8, decamouflage_imaging::Channels::Gray, 0.0),
            Image::filled(4, 4, decamouflage_imaging::Channels::Gray, 255.0),
            Image::from_fn_gray(16, 3, |x, y| ((x * y) % 256) as f64),
        ] {
            let s = det.score(&img).unwrap();
            assert!(s.is_finite() && s >= 0.0);
        }
    }

    #[test]
    fn target_mode_excludes_central_region() {
        let det = PeakExcessDetector::for_target(Size::square(32));
        let (min_r, max_r) = det.radii_for(&smooth(128));
        assert_eq!(min_r, 16);
        assert!(max_r > min_r);
    }
}
