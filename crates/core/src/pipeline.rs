//! Experiment pipeline: score corpora once, then calibrate and evaluate in
//! the white-box and black-box modes.
//!
//! The pipeline is deliberately decoupled from any dataset crate: images
//! are supplied through closures `index -> Image`, so the same machinery
//! works for synthetic corpora, files on disk, or fixtures in tests. Scores
//! are computed once per `(detector, corpus)` and reused across threshold
//! modes, percentiles and the ensemble — mirroring how the paper's offline
//! calibration amortises work. For corpora that do not fit in memory,
//! [`score_source`] scores a streaming [`ImageSource`] with bounded
//! residency, and the engine-level equivalents live in
//! [`crate::engine::DetectionEngine::score_stream`].

use crate::detector::Detector;
use crate::eval::{ConfusionCounts, EvalMetrics};
use crate::parallel::parallel_map_indices;
use crate::stream::{BufferPool, ImageSource};
use crate::threshold::{percentile_blackbox, search_whitebox, Direction, SearchPoint, Threshold};
use crate::DetectError;
use decamouflage_imaging::Image;
use decamouflage_metrics::SampleSummary;

/// Detection scores of one corpus: parallel benign and attack score
/// vectors, aligned by sample index.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCorpus {
    /// Scores of benign images, by index.
    pub benign: Vec<f64>,
    /// Scores of attack images, by index.
    pub attack: Vec<f64>,
}

impl ScoredCorpus {
    /// Number of `(benign, attack)` pairs.
    pub fn len(&self) -> usize {
        self.benign.len().min(self.attack.len())
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.benign.is_empty() && self.attack.is_empty()
    }

    /// Summary statistics of the benign scores (mean/std columns of the
    /// paper's black-box tables).
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidCalibration`] for an empty benign set.
    pub fn benign_summary(&self) -> Result<SampleSummary, DetectError> {
        SampleSummary::from_samples(&self.benign)
            .map_err(|e| DetectError::InvalidCalibration { message: e.to_string() })
    }
}

/// Scores `count` benign and `count` attack images with `detector`, fanning
/// out over `threads` workers. `benign_of` / `attack_of` map a sample index
/// to its image.
///
/// Both halves go out in a single `2 * count` fan-out (benign indices
/// first), so workers stay busy across the benign/attack boundary instead
/// of re-synchronising between two batches.
///
/// # Errors
///
/// Propagates the first scoring failure in index order (all benign indices
/// before all attack indices).
pub fn score_corpus<D: Detector>(
    detector: &D,
    benign_of: impl Fn(u64) -> Image + Sync,
    attack_of: impl Fn(u64) -> Image + Sync,
    count: usize,
    threads: usize,
) -> Result<ScoredCorpus, DetectError> {
    let results = parallel_map_indices(2 * count, threads, |i| {
        if i < count {
            detector.score(&benign_of(i as u64))
        } else {
            detector.score(&attack_of((i - count) as u64))
        }
    });
    let mut benign = Vec::with_capacity(count);
    let mut attack = Vec::with_capacity(count);
    for (i, result) in results.into_iter().enumerate() {
        let score = result?;
        if i < count {
            benign.push(score);
        } else {
            attack.push(score);
        }
    }
    Ok(ScoredCorpus { benign, attack })
}

/// Scores every image pulled from an [`ImageSource`] with one detector,
/// sequentially and with bounded memory: pixel buffers recycle through a
/// small [`BufferPool`], so at most one decoded image (plus the pool's
/// spare buffers) is ever resident. The streaming counterpart of
/// [`score_corpus`] for corpora that do not fit in memory — the scores
/// slot directly into [`ScoredCorpus`] halves, [`run_whitebox`] and
/// [`run_blackbox`].
///
/// # Errors
///
/// Propagates the first pull or scoring failure in stream order.
pub fn score_source<D: Detector>(
    detector: &D,
    source: &mut dyn ImageSource,
) -> Result<Vec<f64>, DetectError> {
    let mut pool = BufferPool::new(4);
    let mut scores = Vec::with_capacity(source.len_hint().unwrap_or(0));
    while let Some(item) = source.next_image(&mut pool) {
        let image = item?;
        scores.push(detector.score(&image)?);
        pool.recycle(image);
    }
    Ok(scores)
}

/// Evaluates a fixed threshold against a scored corpus.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] for an empty corpus.
pub fn evaluate_threshold(
    corpus: &ScoredCorpus,
    threshold: Threshold,
) -> Result<EvalMetrics, DetectError> {
    let mut counts = ConfusionCounts::default();
    for &s in &corpus.benign {
        counts.record(false, threshold.is_attack(s));
    }
    for &s in &corpus.attack {
        counts.record(true, threshold.is_attack(s));
    }
    counts.metrics()
}

/// Outcome of a white-box experiment: threshold searched on the training
/// corpus, quality measured on the evaluation corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct WhiteboxOutcome {
    /// The selected threshold.
    pub threshold: Threshold,
    /// Accuracy on the training corpus at the selected threshold.
    pub train_accuracy: f64,
    /// Quality on the (unseen) evaluation corpus.
    pub eval: EvalMetrics,
    /// Full accuracy-vs-threshold trace (Figure 7).
    pub trace: Vec<SearchPoint>,
}

/// Runs the white-box protocol: search the optimal threshold on `train`,
/// evaluate on `eval`.
///
/// # Errors
///
/// Propagates calibration failures (empty or NaN score sets).
pub fn run_whitebox(
    train: &ScoredCorpus,
    eval: &ScoredCorpus,
    direction: Direction,
) -> Result<WhiteboxOutcome, DetectError> {
    let search = search_whitebox(&train.benign, &train.attack, direction)?;
    let metrics = evaluate_threshold(eval, search.threshold)?;
    Ok(WhiteboxOutcome {
        threshold: search.threshold,
        train_accuracy: search.train_accuracy,
        eval: metrics,
        trace: search.trace,
    })
}

/// Outcome of a black-box experiment at one percentile.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxOutcome {
    /// The tail percentile used (1, 2 or 3 in the paper).
    pub tail_percent: f64,
    /// The percentile threshold derived from benign training scores.
    pub threshold: Threshold,
    /// Quality on the evaluation corpus.
    pub eval: EvalMetrics,
}

/// Runs the black-box protocol: derive a percentile threshold from the
/// *benign* training scores only, evaluate on `eval`.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn run_blackbox(
    train_benign: &[f64],
    eval: &ScoredCorpus,
    tail_percent: f64,
    direction: Direction,
) -> Result<BlackboxOutcome, DetectError> {
    let threshold = percentile_blackbox(train_benign, tail_percent, direction)?;
    let metrics = evaluate_threshold(eval, threshold)?;
    Ok(BlackboxOutcome { tail_percent, threshold, eval: metrics })
}

/// Evaluates a majority-vote ensemble from per-detector scored corpora and
/// their calibrated thresholds. All corpora must be index-aligned (sample
/// `i` is the same image in every member's corpus).
///
/// # Errors
///
/// Returns [`DetectError::InvalidConfig`] for an empty member list or
/// misaligned corpora.
pub fn evaluate_ensemble(
    members: &[(&ScoredCorpus, Threshold)],
) -> Result<EvalMetrics, DetectError> {
    if members.is_empty() {
        return Err(DetectError::InvalidConfig { message: "ensemble has no members".into() });
    }
    let n_benign = members[0].0.benign.len();
    let n_attack = members[0].0.attack.len();
    for (corpus, _) in members {
        if corpus.benign.len() != n_benign || corpus.attack.len() != n_attack {
            return Err(DetectError::InvalidConfig {
                message: "ensemble member corpora are misaligned".into(),
            });
        }
    }
    let majority = |index: usize, attack_side: bool| {
        let votes = members
            .iter()
            .filter(|(corpus, threshold)| {
                let s = if attack_side { corpus.attack[index] } else { corpus.benign[index] };
                threshold.is_attack(s)
            })
            .count();
        2 * votes > members.len()
    };
    let mut counts = ConfusionCounts::default();
    for i in 0..n_benign {
        counts.record(false, majority(i, false));
    }
    for i in 0..n_attack {
        counts.record(true, majority(i, true));
    }
    counts.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use decamouflage_imaging::Channels;

    /// Scores an image by its mean sample value.
    struct MeanDetector;

    impl Detector for MeanDetector {
        fn score(&self, image: &Image) -> Result<f64, DetectError> {
            Ok(image.mean_sample())
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "mean".into()
        }
    }

    fn flat(v: f64) -> Image {
        Image::filled(2, 2, Channels::Gray, v)
    }

    fn corpus(benign: &[f64], attack: &[f64]) -> ScoredCorpus {
        ScoredCorpus { benign: benign.to_vec(), attack: attack.to_vec() }
    }

    #[test]
    fn score_corpus_collects_scores_in_order() {
        let scored =
            score_corpus(&MeanDetector, |i| flat(i as f64), |i| flat(100.0 + i as f64), 4, 2)
                .unwrap();
        assert_eq!(scored.benign, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(scored.attack, vec![100.0, 101.0, 102.0, 103.0]);
        assert_eq!(scored.len(), 4);
        assert!(!scored.is_empty());
    }

    #[test]
    fn whitebox_transfers_threshold_to_eval() {
        let train = corpus(&[1.0, 2.0, 3.0], &[10.0, 11.0, 12.0]);
        let eval = corpus(&[1.5, 2.5], &[9.5, 13.0]);
        let out = run_whitebox(&train, &eval, Direction::AboveIsAttack).unwrap();
        assert_eq!(out.train_accuracy, 1.0);
        assert_eq!(out.eval.accuracy, 1.0);
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn whitebox_reports_imperfect_eval() {
        let train = corpus(&[1.0, 2.0], &[10.0, 11.0]);
        // One eval attack sits below the threshold: FAR 50%.
        let eval = corpus(&[1.0], &[2.0, 12.0]);
        let out = run_whitebox(&train, &eval, Direction::AboveIsAttack).unwrap();
        assert!((out.eval.far - 0.5).abs() < 1e-12);
    }

    #[test]
    fn blackbox_uses_benign_tail() {
        let train_benign: Vec<f64> = (1..=100).map(f64::from).collect();
        let eval = corpus(&[50.0, 98.0], &[150.0, 200.0]);
        let out = run_blackbox(&train_benign, &eval, 1.0, Direction::AboveIsAttack).unwrap();
        assert_eq!(out.eval.accuracy, 1.0);
        assert!((out.tail_percent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_threshold_counts_both_sides() {
        let c = corpus(&[1.0, 9.0], &[8.0, 12.0]);
        let m = evaluate_threshold(&c, Threshold::new(7.0, Direction::AboveIsAttack)).unwrap();
        // benign 9 is flagged (FRR 1/2), attacks both flagged.
        assert!((m.frr - 0.5).abs() < 1e-12);
        assert_eq!(m.far, 0.0);
    }

    #[test]
    fn ensemble_majority_beats_single_bad_member() {
        let good1 = corpus(&[1.0, 1.0], &[10.0, 10.0]);
        let good2 = corpus(&[2.0, 2.0], &[9.0, 9.0]);
        let bad = corpus(&[8.0, 8.0], &[1.0, 1.0]); // inverted detector
        let t = Threshold::new(5.0, Direction::AboveIsAttack);
        let m = evaluate_ensemble(&[(&good1, t), (&good2, t), (&bad, t)]).unwrap();
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn ensemble_validates_members() {
        assert!(evaluate_ensemble(&[]).is_err());
        let a = corpus(&[1.0], &[2.0]);
        let b = corpus(&[1.0, 2.0], &[2.0]);
        let t = Threshold::new(5.0, Direction::AboveIsAttack);
        assert!(evaluate_ensemble(&[(&a, t), (&b, t)]).is_err());
    }

    #[test]
    fn benign_summary_reports_mean_and_std() {
        let c = corpus(&[1.0, 2.0, 3.0], &[]);
        let s = c.benign_summary().unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn score_source_matches_eager_scoring() {
        use crate::stream::SliceSource;
        let images: Vec<Image> = (0..5).map(|i| flat(i as f64 * 10.0)).collect();
        let streamed = score_source(&MeanDetector, &mut SliceSource::new(&images)).unwrap();
        let eager: Vec<f64> = images.iter().map(|img| MeanDetector.score(img).unwrap()).collect();
        assert_eq!(streamed, eager);
    }

    #[test]
    fn score_corpus_propagates_errors() {
        struct Failing;
        impl Detector for Failing {
            fn score(&self, _image: &Image) -> Result<f64, DetectError> {
                Err(DetectError::InvalidConfig { message: "nope".into() })
            }
            fn direction(&self) -> Direction {
                Direction::AboveIsAttack
            }
            fn name(&self) -> String {
                "failing".into()
            }
        }
        assert!(score_corpus(&Failing, |_| flat(0.0), |_| flat(0.0), 2, 1).is_err());
    }
}
