//! Shared-intermediate batch detection engine.
//!
//! Scoring one image with the detection methods independently recomputes
//! everything from scratch: the scaling detectors build four resampling
//! plans and run two round trips, each SSIM evaluation blurs the *input*
//! image again, and both frequency-domain methods transform the image
//! separately. [`DetectionEngine`] scores an image with every enabled
//! method in one pass and shares the intermediates instead:
//!
//! * one round trip through cached resampling plans
//!   ([`ScalerCache`]) serves both scaling metrics,
//! * one rank-filter pass serves both filtering metrics,
//! * one [`SsimReference`] (precomputed `blur(I)`, `blur(I²)`) serves the
//!   scaling *and* filtering SSIM scores, with the blurs on the fast
//!   scratch-buffer convolution path,
//! * one planned DFT serves the CSP count (via the fused
//!   [`count_csp_in_spectrum_with_mags`] pipeline) **and** the radial
//!   peak-excess score, which also share one `log(1 + |F|)` buffer — with
//!   the engine's default rectangular peak window the windowing step is
//!   the identity, so no second transform runs.
//!
//! The methods themselves live in the typed registry
//! ([`MethodId`]): scores come back as a dense
//! [`ScoreVector`] and the set of methods to run is a [`MethodSet`]
//! ([`DetectionEngine::with_methods`]). A method without a fused fast path
//! falls back to its registry-constructed detector
//! ([`DetectionEngine::build_detector`] — the single constructor site a new
//! method has to touch).
//!
//! Every shared path is bit-identical to its staged counterpart, so engine
//! scores equal the individual [`Detector`]
//! implementations exactly — asserted by the tests in this module and the
//! crate's property tests. The naive detectors stay as the reference
//! implementation (and the honest cold baseline for the benchmark suite).

use crate::detector::{Detector, MetricKind};
use crate::ensemble::EnsembleDecision;
use crate::error::{ScoreError, ScoreFault};
use crate::faults::{FaultKind, FaultPlan};
use crate::filtering::FilteringDetector;
use crate::method::{MethodId, MethodSet, ScoreVector};
use crate::parallel::parallel_map_indices;
use crate::peak_excess::PeakExcessDetector;
use crate::persist::ThresholdSet;
use crate::scaling::ScalingDetector;
use crate::steganalysis::SteganalysisDetector;
use crate::stream::{ChunkDriver, FnSource, ImageSource, StreamConfig, StreamSummary};
use crate::threshold::Threshold;
use crate::DetectError;
use decamouflage_imaging::filter::{rank_filter, RankKind};
use decamouflage_imaging::scale::{ScaleAlgorithm, ScalerCache};
use decamouflage_imaging::{Image, Size};
use decamouflage_metrics::{mse, SsimConfig, SsimReference};
use decamouflage_spectral::csp::{count_csp_in_spectrum_with_mags, CspConfig};
use decamouflage_spectral::dft2d::dft2_planned;
use decamouflage_spectral::radial::peak_excess;
use decamouflage_spectral::window::{apply_window, WindowKind};
use decamouflage_telemetry::{Counter, HistogramHandle, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Pre-resolved telemetry handles for the engine's hot path. Resolving
/// the `(name, labels)` keys once at construction keeps scoring free of
/// registry lookups; with a disabled [`Telemetry`] every handle is a
/// no-op and no clock is ever read, so scores stay bit-identical (the
/// bench asserts this).
#[derive(Debug, Clone, Default)]
struct EngineMetrics {
    telemetry: Telemetry,
    /// `decam_engine_score_seconds`: full engine pass latency.
    score_seconds: HistogramHandle,
    /// `decam_engine_stage_seconds{stage=...}`: shared-stage latencies.
    validate: HistogramHandle,
    scale_round_trip: HistogramHandle,
    rank_filter: HistogramHandle,
    ssim_reference: HistogramHandle,
    dft: HistogramHandle,
    /// `decam_method_score_seconds{method=...}`, indexed by [`MethodId`].
    /// For fused methods this is the *incremental* cost on top of the
    /// shared stages above.
    method_seconds: [HistogramHandle; MethodId::COUNT],
    /// `decam_engine_scored_total`: successfully scored images.
    scored_total: Counter,
}

impl EngineMetrics {
    fn new(telemetry: Telemetry) -> Self {
        let stage = |name| telemetry.histogram("decam_engine_stage_seconds", &[("stage", name)]);
        Self {
            score_seconds: telemetry.histogram("decam_engine_score_seconds", &[]),
            validate: stage("validate"),
            scale_round_trip: stage("scale_round_trip"),
            rank_filter: stage("rank_filter"),
            ssim_reference: stage("ssim_reference"),
            dft: stage("dft"),
            method_seconds: std::array::from_fn(|index| {
                telemetry.histogram(
                    "decam_method_score_seconds",
                    &[("method", MethodId::ALL[index].name())],
                )
            }),
            scored_total: telemetry.counter("decam_engine_scored_total", &[]),
            telemetry,
        }
    }

    /// Counts one quarantined image under its fault-kind label. The
    /// label set is small and bounded by the [`ScoreFault`] taxonomy, so
    /// the registry lookup on this cold path is fine.
    fn quarantined(&self, fault: &ScoreFault) {
        self.telemetry.counter("decam_engine_quarantined_total", &[("fault", fault.kind())]).inc();
    }

    fn method(&self, id: MethodId) -> &HistogramHandle {
        &self.method_seconds[id as usize]
    }
}

/// The per-image scores the engine produces — an alias kept from the days
/// when this was a fixed five-field struct. Use the [`ScoreVector`] API
/// (`get`, `iter`, indexing by [`MethodId`]) or the field-style shims
/// (`scaling_mse()`, `csp()`, …).
pub type EngineScores = ScoreVector;

/// Scores plus the shared intermediate images, for callers that feed
/// additional scorers (PSNR, colour histograms, …) from the same round
/// trip.
#[derive(Debug, Clone)]
pub struct EngineArtifacts {
    /// The image downscaled to the CNN input size.
    pub downscaled: Image,
    /// The round-tripped image `upscale(downscale(I))`.
    pub round_tripped: Image,
    /// The rank-filtered image.
    pub filtered: Image,
    /// The centred log-magnitude spectrum the peak-excess score was read
    /// from. `Some` iff [`MethodId::PeakExcess`] is enabled.
    pub centered_spectrum: Option<Image>,
    /// The engine scores (`NaN` for disabled methods).
    pub scores: ScoreVector,
}

/// Engine scores for a full benign + attack corpus.
#[derive(Debug, Clone)]
pub struct EngineCorpus {
    /// Scores of the benign samples, in index order.
    pub benign: Vec<ScoreVector>,
    /// Scores of the attack samples, in index order.
    pub attack: Vec<ScoreVector>,
}

impl EngineCorpus {
    /// The benign scores of one method, in index order.
    pub fn benign_column(&self, id: MethodId) -> Vec<f64> {
        self.benign.iter().map(|s| s.get(id)).collect()
    }

    /// The attack scores of one method, in index order.
    pub fn attack_column(&self, id: MethodId) -> Vec<f64> {
        self.attack.iter().map(|s| s.get(id)).collect()
    }
}

/// Aggregate counters over a [`BatchOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchCounts {
    /// Images that scored successfully.
    pub scored: usize,
    /// Images quarantined with a [`ScoreError`], total.
    pub quarantined: usize,
    /// Quarantined images from the benign half.
    pub benign_quarantined: usize,
    /// Quarantined images from the attack half.
    pub attack_quarantined: usize,
}

/// Per-image results of a fault-isolated corpus scoring run
/// ([`DetectionEngine::score_corpus_resilient`]): every slot is either the
/// image's [`ScoreVector`] or the structured [`ScoreError`] that
/// quarantined it. One poisoned image costs exactly one slot.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-image results of the benign samples, in index order. Slot `i`
    /// corresponds to batch fan-out index `i`.
    pub benign: Vec<Result<ScoreVector, ScoreError>>,
    /// Per-image results of the attack samples, in index order. Slot `i`
    /// corresponds to batch fan-out index `count + i`.
    pub attack: Vec<Result<ScoreVector, ScoreError>>,
}

impl BatchOutcome {
    /// Aggregate scored/quarantined counters.
    pub fn counts(&self) -> BatchCounts {
        let benign_quarantined = self.benign.iter().filter(|r| r.is_err()).count();
        let attack_quarantined = self.attack.iter().filter(|r| r.is_err()).count();
        BatchCounts {
            scored: self.benign.len() + self.attack.len() - benign_quarantined - attack_quarantined,
            quarantined: benign_quarantined + attack_quarantined,
            benign_quarantined,
            attack_quarantined,
        }
    }

    /// The quarantine errors of both halves (benign first), in index order.
    pub fn quarantined(&self) -> impl Iterator<Item = &ScoreError> {
        self.benign.iter().chain(self.attack.iter()).filter_map(|result| result.as_ref().err())
    }

    /// The surviving benign scores of one method, skipping quarantined
    /// slots.
    pub fn benign_column(&self, id: MethodId) -> Vec<f64> {
        self.benign.iter().filter_map(|r| r.as_ref().ok()).map(|s| s.get(id)).collect()
    }

    /// The surviving attack scores of one method, skipping quarantined
    /// slots.
    pub fn attack_column(&self, id: MethodId) -> Vec<f64> {
        self.attack.iter().filter_map(|r| r.as_ref().ok()).map(|s| s.get(id)).collect()
    }

    /// Converts into a fully scored [`EngineCorpus`], failing fast on the
    /// first quarantined slot in fan-out order (all benign indices before
    /// all attack indices) — the contract of the pre-quarantine
    /// [`DetectionEngine::score_corpus`].
    ///
    /// # Errors
    ///
    /// The first [`ScoreError`] in fan-out order, converted through
    /// [`DetectError::from`] (a plain scoring failure unwraps back to the
    /// original [`DetectError`]).
    pub fn into_result(self) -> Result<EngineCorpus, DetectError> {
        let unwrap_half = |half: Vec<Result<ScoreVector, ScoreError>>| {
            half.into_iter().collect::<Result<Vec<ScoreVector>, ScoreError>>()
        };
        let benign = unwrap_half(self.benign)?;
        let attack = unwrap_half(self.attack)?;
        Ok(EngineCorpus { benign, attack })
    }
}

/// The naive single-method detectors equivalent to one engine
/// configuration. Scoring with any of them matches the corresponding
/// [`ScoreVector`] slot exactly.
#[derive(Debug, Clone)]
pub struct EngineDetectors {
    /// Scaling detection with the MSE metric.
    pub scaling_mse: ScalingDetector,
    /// Scaling detection with the SSIM metric.
    pub scaling_ssim: ScalingDetector,
    /// Filtering detection with the MSE metric.
    pub filtering_mse: FilteringDetector,
    /// Filtering detection with the SSIM metric.
    pub filtering_ssim: FilteringDetector,
    /// Steganalysis (CSP counting).
    pub steganalysis: SteganalysisDetector,
    /// Radial peak excess on the engine's peak window.
    pub peak_excess: PeakExcessDetector,
}

/// Calibrated thresholds for [`DetectionEngine::decide`]: a
/// [`MethodId`]-keyed map. Methods without an entry simply don't vote, so
/// the paper's three-member ensemble is a three-entry map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineThresholds {
    entries: [Option<Threshold>; MethodId::COUNT],
}

impl EngineThresholds {
    /// Creates an empty threshold map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insert.
    #[must_use]
    pub fn with(mut self, id: MethodId, threshold: Threshold) -> Self {
        self.set(id, threshold);
        self
    }

    /// Sets the threshold of one method, returning the previous value.
    pub fn set(&mut self, id: MethodId, threshold: Threshold) -> Option<Threshold> {
        self.entries[id as usize].replace(threshold)
    }

    /// The threshold of one method, if set.
    pub fn get(&self, id: MethodId) -> Option<Threshold> {
        self.entries[id as usize]
    }

    /// Iterates `(id, threshold)` entries in canonical method order.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, Threshold)> + '_ {
        MethodId::ALL.iter().filter_map(move |&id| self.entries[id as usize].map(|t| (id, t)))
    }

    /// Number of thresholds set.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether no threshold is set.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }

    /// Builds the map from a persisted [`ThresholdSet`].
    pub fn from_threshold_set(set: &ThresholdSet) -> Self {
        set.iter().fold(Self::new(), |map, (id, t)| map.with(id, t))
    }

    /// Converts the map into a persistable [`ThresholdSet`].
    pub fn to_threshold_set(&self) -> ThresholdSet {
        self.iter().collect()
    }
}

/// Scores one image with every enabled detection method while sharing
/// intermediates (see the module docs).
///
/// # Example
///
/// ```
/// use decamouflage_core::{DetectionEngine, MethodId};
/// use decamouflage_imaging::{Image, Size};
///
/// # fn main() -> Result<(), decamouflage_core::DetectError> {
/// let engine = DetectionEngine::new(Size::square(16));
/// let image = Image::from_fn_gray(64, 64, |x, y| (((x + y) * 2) % 200) as f64 + 20.0);
/// let scores = engine.score(&image)?;
/// assert!(scores.csp() >= 1.0);
/// assert!(scores.get(MethodId::PeakExcess).is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DetectionEngine {
    target: Size,
    algorithm: ScaleAlgorithm,
    ssim_config: SsimConfig,
    filter_window: usize,
    filter_rank: RankKind,
    csp_config: CspConfig,
    peak_window: WindowKind,
    methods: MethodSet,
    faults: Option<Arc<FaultPlan>>,
    metrics: EngineMetrics,
}

impl DetectionEngine {
    /// Creates an engine with the reproduction's standard configuration for
    /// a CNN input size: a bilinear defender round trip, the default SSIM
    /// window, the paper's 2×2 minimum filter, the target-tuned CSP
    /// configuration of [`SteganalysisDetector::for_target`], a rectangular
    /// peak-excess window (so the CSP spectrum is reused as-is) and every
    /// registered method enabled.
    pub fn new(target: Size) -> Self {
        Self {
            target,
            algorithm: ScaleAlgorithm::Bilinear,
            ssim_config: SsimConfig::default(),
            filter_window: 2,
            filter_rank: RankKind::Minimum,
            csp_config: SteganalysisDetector::for_target(target).config().clone(),
            peak_window: WindowKind::Rectangular,
            methods: MethodSet::all(),
            faults: None,
            metrics: EngineMetrics::new(decamouflage_telemetry::global()),
        }
    }

    /// Overrides the round-trip scaling algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: ScaleAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Overrides the SSIM parameters.
    #[must_use]
    pub fn with_ssim_config(mut self, config: SsimConfig) -> Self {
        self.ssim_config = config;
        self
    }

    /// Overrides the rank-filter window and kind.
    #[must_use]
    pub fn with_filter(mut self, window: usize, rank: RankKind) -> Self {
        self.filter_window = window;
        self.filter_rank = rank;
        self
    }

    /// Overrides the CSP configuration.
    #[must_use]
    pub fn with_csp_config(mut self, config: CspConfig) -> Self {
        self.csp_config = config;
        self
    }

    /// Overrides the peak-excess window function. Anything other than
    /// [`WindowKind::Rectangular`] costs a second DFT per image, because
    /// the CSP spectrum (computed on the unwindowed image) can no longer
    /// be shared.
    #[must_use]
    pub fn with_peak_window(mut self, window: WindowKind) -> Self {
        self.peak_window = window;
        self
    }

    /// Restricts which methods [`DetectionEngine::score`] runs. Disabled
    /// methods score `NaN`.
    #[must_use]
    pub fn with_methods(mut self, methods: MethodSet) -> Self {
        self.methods = methods;
        self
    }

    /// Arms a deterministic [`FaultPlan`] on the resilient batch and
    /// stream paths: [`DetectionEngine::score_stream`] (and therefore
    /// [`DetectionEngine::score_corpus_resilient`], its eager facade)
    /// fires the plan entry armed at each stream/fan-out index *inside*
    /// the per-image isolation boundary, so an injected panic travels the
    /// exact worker-pool → `catch_unwind` → quarantine route a real deep
    /// panic would. An armed fault outranks a failed pull at the same
    /// index. The fail-fast APIs and single-image scoring ignore the plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Attaches a [`Telemetry`] handle: an enabled handle records the
    /// engine's per-stage and per-method latencies, scored/quarantined
    /// counters into its registry; the default is the process-global
    /// handle at construction time
    /// ([`decamouflage_telemetry::global`]), which is disabled unless
    /// [`decamouflage_telemetry::install_global`] ran first. Telemetry
    /// never changes scores — only observes them.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.metrics = EngineMetrics::new(telemetry);
        self
    }

    /// The telemetry handle this engine records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.metrics.telemetry
    }

    /// The CNN input size the round trip passes through.
    pub const fn target(&self) -> Size {
        self.target
    }

    /// The round-trip scaling algorithm.
    pub const fn algorithm(&self) -> ScaleAlgorithm {
        self.algorithm
    }

    /// The peak-excess window function.
    pub const fn peak_window(&self) -> WindowKind {
        self.peak_window
    }

    /// The enabled methods.
    pub const fn methods(&self) -> MethodSet {
        self.methods
    }

    /// Constructs the naive standalone detector for one method under this
    /// engine's configuration.
    ///
    /// This is the registry's **single constructor site**: a new
    /// [`MethodId`] variant needs an arm here and nothing else — scoring
    /// (via the generic fallback), calibration, persistence, ensembles and
    /// the experiment harness all enumerate the registry.
    pub fn build_detector(&self, id: MethodId) -> Box<dyn Detector> {
        match id {
            MethodId::ScalingMse => Box::new(
                ScalingDetector::new(self.target, self.algorithm, MetricKind::Mse)
                    .with_ssim_config(self.ssim_config.clone()),
            ),
            MethodId::ScalingSsim => Box::new(
                ScalingDetector::new(self.target, self.algorithm, MetricKind::Ssim)
                    .with_ssim_config(self.ssim_config.clone()),
            ),
            MethodId::FilteringMse => Box::new(
                FilteringDetector::new(MetricKind::Mse)
                    .with_window(self.filter_window)
                    .with_rank(self.filter_rank)
                    .with_ssim_config(self.ssim_config.clone()),
            ),
            MethodId::FilteringSsim => Box::new(
                FilteringDetector::new(MetricKind::Ssim)
                    .with_window(self.filter_window)
                    .with_rank(self.filter_rank)
                    .with_ssim_config(self.ssim_config.clone()),
            ),
            MethodId::Csp => Box::new(SteganalysisDetector::with_config(self.csp_config.clone())),
            MethodId::PeakExcess => {
                Box::new(PeakExcessDetector::for_target(self.target).with_window(self.peak_window))
            }
            #[cfg(test)]
            MethodId::DummyMean => Box::new(crate::method::DummyMeanDetector),
        }
    }

    /// The equivalent naive detectors for this configuration, for threshold
    /// calibration, ensembles over `dyn Detector` and equality testing.
    pub fn detectors(&self) -> EngineDetectors {
        EngineDetectors {
            scaling_mse: ScalingDetector::new(self.target, self.algorithm, MetricKind::Mse)
                .with_ssim_config(self.ssim_config.clone()),
            scaling_ssim: ScalingDetector::new(self.target, self.algorithm, MetricKind::Ssim)
                .with_ssim_config(self.ssim_config.clone()),
            filtering_mse: FilteringDetector::new(MetricKind::Mse)
                .with_window(self.filter_window)
                .with_rank(self.filter_rank)
                .with_ssim_config(self.ssim_config.clone()),
            filtering_ssim: FilteringDetector::new(MetricKind::Ssim)
                .with_window(self.filter_window)
                .with_rank(self.filter_rank)
                .with_ssim_config(self.ssim_config.clone()),
            steganalysis: SteganalysisDetector::with_config(self.csp_config.clone()),
            peak_excess: PeakExcessDetector::for_target(self.target).with_window(self.peak_window),
        }
    }

    /// Scores `image` with every enabled method, returning the shared
    /// intermediates alongside the scores. The spatial intermediates
    /// (round trip, filtered image) are always produced — they are the
    /// artifact contract downstream scorers rely on.
    ///
    /// # Errors
    ///
    /// Propagates imaging and metric failures ([`DetectError::Imaging`] /
    /// [`DetectError::Metric`]).
    pub fn score_with_artifacts(&self, image: &Image) -> Result<EngineArtifacts, DetectError> {
        let _total = self.metrics.score_seconds.span();
        let cache = ScalerCache::global();
        let src = image.size();
        // One round trip through cached plans; `downscaled` is computed
        // once and reused for the upscale leg.
        let (downscaled, round_tripped) = {
            let _stage = self.metrics.scale_round_trip.span();
            let downscaled = cache.get(src, self.target, self.algorithm)?.apply(image)?;
            let round_tripped = cache.get(self.target, src, self.algorithm)?.apply(&downscaled)?;
            (downscaled, round_tripped)
        };
        let filtered = {
            let _stage = self.metrics.rank_filter.span();
            rank_filter(image, self.filter_window, self.filter_rank)?
        };

        let mut scores = ScoreVector::splat(f64::NAN);
        let mut fused = MethodSet::empty();

        if self.methods.contains(MethodId::ScalingMse) {
            let _method = self.metrics.method(MethodId::ScalingMse).span();
            scores.set(MethodId::ScalingMse, mse(image, &round_tripped)?);
            fused.insert(MethodId::ScalingMse);
        }
        if self.methods.contains(MethodId::FilteringMse) {
            let _method = self.metrics.method(MethodId::FilteringMse).span();
            scores.set(MethodId::FilteringMse, mse(image, &filtered)?);
            fused.insert(MethodId::FilteringMse);
        }
        if self.methods.contains(MethodId::ScalingSsim)
            || self.methods.contains(MethodId::FilteringSsim)
        {
            // One reference-side SSIM precomputation serves both comparisons.
            let reference = {
                let _stage = self.metrics.ssim_reference.span();
                SsimReference::new(image, &self.ssim_config)?
            };
            if self.methods.contains(MethodId::ScalingSsim) {
                let _method = self.metrics.method(MethodId::ScalingSsim).span();
                scores.set(MethodId::ScalingSsim, reference.score_against(&round_tripped)?);
                fused.insert(MethodId::ScalingSsim);
            }
            if self.methods.contains(MethodId::FilteringSsim) {
                let _method = self.metrics.method(MethodId::FilteringSsim).span();
                scores.set(MethodId::FilteringSsim, reference.score_against(&filtered)?);
                fused.insert(MethodId::FilteringSsim);
            }
        }

        let mut centered_spectrum = None;
        if self.methods.contains(MethodId::Csp) || self.methods.contains(MethodId::PeakExcess) {
            // One shared gray view serves both frequency-domain methods:
            // Gray inputs are borrowed as-is (zero copies), RGB inputs pay
            // for exactly one fused luma pass — never one per method.
            let gray: std::borrow::Cow<'_, Image> = if image.channel_count() == 1 {
                std::borrow::Cow::Borrowed(image)
            } else {
                std::borrow::Cow::Owned(
                    Image::from_gray_plane(
                        image.width(),
                        image.height(),
                        image.luma().into_owned(),
                    )
                    .expect("luma plane is sized width*height"),
                )
            };
            // One planned DFT serves both frequency-domain methods, and —
            // since both start from `log(1 + |F|)` of the same grid — one
            // log-magnitude buffer serves their fused passes (the logs are
            // the expensive half of each).
            let (spectrum, mags) = {
                let _stage = self.metrics.dft.span();
                let spectrum = dft2_planned(&gray);
                let mags = spectrum.log_magnitudes();
                (spectrum, mags)
            };
            if self.methods.contains(MethodId::Csp) {
                let _method = self.metrics.method(MethodId::Csp).span();
                scores.set(
                    MethodId::Csp,
                    count_csp_in_spectrum_with_mags(&spectrum, &mags, &self.csp_config).count
                        as f64,
                );
                fused.insert(MethodId::Csp);
            }
            if self.methods.contains(MethodId::PeakExcess) {
                let _method = self.metrics.method(MethodId::PeakExcess).span();
                let peak =
                    PeakExcessDetector::for_target(self.target).with_window(self.peak_window);
                let centred = if self.peak_window == WindowKind::Rectangular {
                    // A rectangular window is the identity, so the CSP
                    // plan's DFT *is* the windowed spectrum — shift and
                    // log-normalise its shared magnitudes instead of
                    // transforming again.
                    spectrum.centered_log_magnitude_from(&mags)
                } else {
                    dft2_planned(&apply_window(&gray, self.peak_window)).centered_log_magnitude()
                };
                let (min_r, max_r) = peak.radii_for(image);
                scores.set(MethodId::PeakExcess, peak_excess(&centred, min_r.max(1), max_r.max(2)));
                centered_spectrum = Some(centred);
                fused.insert(MethodId::PeakExcess);
            }
        }

        // Generic fallback: any enabled method without a fused fast path
        // above is scored through its registry-constructed detector. This
        // is what makes a freshly registered method work end-to-end before
        // (or without) anyone writing a shared-intermediate path for it.
        for id in self.methods.iter() {
            if !fused.contains(id) {
                let _method = self.metrics.method(id).span();
                scores.set(id, self.build_detector(id).score(image)?);
            }
        }

        self.metrics.scored_total.inc();
        Ok(EngineArtifacts { downscaled, round_tripped, filtered, centered_spectrum, scores })
    }

    /// Scores `image` with every enabled method.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DetectionEngine::score_with_artifacts`].
    pub fn score(&self, image: &Image) -> Result<ScoreVector, DetectError> {
        Ok(self.score_with_artifacts(image)?.scores)
    }

    /// Input quarantine: rejects images that cannot be scored meaningfully
    /// under this engine's configuration *before* any imaging or spectral
    /// primitive runs on them. Checks, in order:
    ///
    /// 1. zero-area pixel grids ([`ScoreFault::DegenerateDimensions`]),
    /// 2. NaN / infinite pixel samples ([`ScoreFault::NonFinitePixel`]) —
    ///    these would silently propagate into every score,
    /// 3. images smaller than the configured rank-filter window, SSIM
    ///    window, or spectrum plan for the respectively enabled methods
    ///    ([`ScoreFault::BelowMinimumSize`], attributed to the first
    ///    enabled offending [`MethodId`]).
    ///
    /// # Errors
    ///
    /// The first failed check as a structured [`ScoreError`] (index `0`;
    /// batch callers re-address it with [`ScoreError::at_index`]).
    pub fn validate_image(&self, image: &Image) -> Result<(), ScoreError> {
        let _stage = self.metrics.validate.span();
        let (width, height) = (image.width(), image.height());
        if width == 0 || height == 0 {
            return Err(ScoreError::new(ScoreFault::DegenerateDimensions { width, height }));
        }
        // Two-phase finite scan, one pass per channel plane: `x * 0.0` is
        // `0.0` exactly when `x` is finite (NaN/±inf yield NaN), so the
        // blockwise sum is NaN iff the block holds a non-finite sample.
        // The sum has no early exit and autovectorizes; the scalar
        // `position` scan runs only on the rare offending block. The
        // reported `sample` stays in interleaved units
        // (`pixel_index * channels + channel`), so single-channel callers
        // see the same index they always did.
        let ch = image.channel_count();
        for (c, plane) in image.planes().iter().enumerate() {
            for (block, samples) in plane.chunks(1024).enumerate() {
                let probe: f64 = samples.iter().map(|v| v * 0.0).sum();
                if !probe.is_finite() {
                    let offset =
                        samples.iter().position(|v| !v.is_finite()).expect("probe found one");
                    return Err(ScoreError::new(ScoreFault::NonFinitePixel {
                        sample: (block * 1024 + offset) * ch + c,
                    }));
                }
            }
        }
        let min_side = width.min(height);
        let too_small = |required: usize, requirement: &'static str, id: MethodId| {
            ScoreError::new(ScoreFault::BelowMinimumSize { width, height, required, requirement })
                .for_method(id)
        };
        let first_enabled =
            |ids: [MethodId; 2]| ids.into_iter().find(|&id| self.methods.contains(id));
        if let Some(id) = first_enabled([MethodId::FilteringMse, MethodId::FilteringSsim]) {
            if min_side < self.filter_window {
                return Err(too_small(self.filter_window, "rank-filter window", id));
            }
        }
        if let Some(id) = first_enabled([MethodId::ScalingSsim, MethodId::FilteringSsim]) {
            let side = 2 * self.ssim_config.radius + 1;
            if min_side < side {
                return Err(too_small(side, "SSIM window", id));
            }
        }
        if let Some(id) = first_enabled([MethodId::Csp, MethodId::PeakExcess]) {
            if min_side < 2 {
                return Err(too_small(2, "spectrum plan", id));
            }
        }
        Ok(())
    }

    /// Fault-isolated single-image scoring: validates the input
    /// ([`DetectionEngine::validate_image`]) and converts both scoring
    /// errors and payload panics into a structured [`ScoreError`] instead
    /// of letting them unwind into the caller.
    ///
    /// # Errors
    ///
    /// A [`ScoreError`] with index `0` for validation rejections, scoring
    /// failures ([`ScoreFault::Detect`]) or recovered panics
    /// ([`ScoreFault::Panicked`]).
    pub fn score_resilient(&self, image: &Image) -> Result<ScoreVector, ScoreError> {
        let attempt = self.validate_image(image).and_then(|()| {
            // The engine holds no interior mutability of its own and the
            // global scaler cache recovers lock poisoning, so observing
            // state after a caught panic is safe.
            match catch_unwind(AssertUnwindSafe(|| self.score(image))) {
                Ok(Ok(scores)) => Ok(scores),
                Ok(Err(err)) => Err(ScoreError::detect(0, err)),
                Err(payload) => Err(ScoreError::panicked(0, payload)),
            }
        });
        attempt.inspect_err(|err| self.metrics.quarantined(&err.cause))
    }

    /// One fault-isolated slot of a streamed fan-out: fires any armed
    /// fault, unwraps the pulled item (the stream is sequential, so every
    /// position — readable or not — consumes an index), validates and
    /// scores, all inside one `catch_unwind` boundary; a panic anywhere in
    /// the slot quarantines only that slot. The order — plan, item,
    /// validation, scoring — mirrors the pre-streaming eager slot exactly,
    /// which is what keeps streamed and eager scoring bit-identical.
    /// Returns the image alongside the result so the caller can recycle
    /// its buffer.
    fn score_slot(
        &self,
        index: usize,
        pulled: Result<Image, ScoreError>,
    ) -> (Result<ScoreVector, ScoreError>, Option<Image>) {
        type Slot = (Result<ScoreVector, ScoreError>, Option<Image>);
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Slot {
            if let Some(plan) = &self.faults {
                // The plan outranks pull failures, exactly as the eager
                // path fires it before `make_image` runs.
                match plan.get(index) {
                    Some(FaultKind::Panic) => panic!("injected panic at scoring index {index}"),
                    Some(FaultKind::Error) => {
                        return (Err(ScoreError::injected(index)), pulled.ok())
                    }
                    Some(FaultKind::NanScore) => {
                        return (Ok(ScoreVector::splat(f64::NAN)), pulled.ok())
                    }
                    None => {}
                }
            }
            let image = match pulled {
                Ok(image) => image,
                Err(err) => return (Err(err.at_index(index)), None),
            };
            if let Err(err) = self.validate_image(&image) {
                return (Err(err.at_index(index)), Some(image));
            }
            match self.score(&image) {
                Ok(scores) => (Ok(scores), Some(image)),
                Err(err) => (Err(ScoreError::detect(index, err)), Some(image)),
            }
        }));
        let (result, image) = match attempt {
            Ok(slot) => slot,
            Err(payload) => (Err(ScoreError::panicked(index, payload)), None),
        };
        (result.inspect_err(|err| self.metrics.quarantined(&err.cause)), image)
    }

    /// Bounded-memory streamed scoring: pulls `source` in chunks of
    /// [`StreamConfig::chunk_size`] images, fans each chunk through the
    /// worker pool with the same per-slot fault quarantine as
    /// [`DetectionEngine::score_corpus_resilient`], recycles image buffers
    /// through the driver's [`BufferPool`](crate::stream::BufferPool), and
    /// feeds `consume` incrementally in stream order. At no point are more
    /// than `chunk_size` decoded images (plus the bounded pool) resident,
    /// regardless of corpus length — corpora larger than memory, or
    /// unbounded upload streams, score in constant space.
    ///
    /// `consume(index, result)` is called once per stream position, in
    /// order (chunk by chunk, ascending index within each chunk). Scores
    /// are **bit-identical** to the eager batch path for any chunk size,
    /// and quarantine errors carry the same stream indices — the
    /// `stream_equivalence` property tests pin this down.
    pub fn score_stream(
        &self,
        source: &mut dyn ImageSource,
        config: &StreamConfig,
        mut consume: impl FnMut(usize, Result<ScoreVector, ScoreError>),
    ) -> StreamSummary {
        let mut driver = ChunkDriver::new(source, config, &self.metrics.telemetry);
        // With a single participant there is no fan-out to stage a chunk
        // for; score each slot as it is pulled. The per-slot sequence
        // (pull, fault plan, validation, scoring) and the consume order
        // are exactly those of the chunked path, so results, errors and
        // the stream summary are identical — only the staging memory
        // traffic (which makes every staged image cache-cold before it
        // scores) is gone.
        if config.threads <= 1 {
            while let Some((index, pulled)) = driver.next_item() {
                let (result, image) = self.score_slot(index, pulled);
                if let Some(image) = image {
                    driver.recycle(image);
                }
                consume(index, result);
                driver.item_done();
            }
            return driver.summary();
        }
        while let Some(chunk) = driver.next_chunk() {
            let results = parallel_map_indices(chunk.len(), config.threads, |offset| {
                self.score_slot(chunk.base() + offset, chunk.take(offset))
            });
            for (offset, (result, image)) in results.into_iter().enumerate() {
                if let Some(image) = image {
                    driver.recycle(image);
                }
                consume(chunk.base() + offset, result);
            }
            driver.finish_chunk();
        }
        driver.summary()
    }

    /// Fault-isolated batch scoring: the same single `2 * count` fan-out as
    /// [`DetectionEngine::score_corpus`] (benign indices first), but each
    /// image's slot is individually quarantined — validation rejections,
    /// scoring errors and payload panics land in that slot's
    /// [`ScoreError`] while every other image scores normally. The batch
    /// itself never fails and the worker pool keeps serving.
    ///
    /// This is now a facade over [`DetectionEngine::score_stream`] with a
    /// closure-backed source and a single `2 * count` chunk, so eager and
    /// streamed scoring share one scoring path (and are bit-identical by
    /// construction).
    pub fn score_corpus_resilient(
        &self,
        benign_of: impl Fn(u64) -> Image + Sync,
        attack_of: impl Fn(u64) -> Image + Sync,
        count: usize,
        threads: usize,
    ) -> BatchOutcome {
        let total = 2 * count;
        let mut source = FnSource::new(total, |i| {
            if (i as usize) < count {
                benign_of(i)
            } else {
                attack_of(i - count as u64)
            }
        });
        let config = StreamConfig::default()
            .with_chunk_size(total.max(1))
            .with_threads(threads)
            .with_pool_capacity(0);
        let mut results = Vec::with_capacity(total);
        self.score_stream(&mut source, &config, |index, result| {
            debug_assert_eq!(index, results.len(), "stream consumption is in order");
            results.push(result);
        });
        let attack = results.split_off(count);
        BatchOutcome { benign: results, attack }
    }

    /// Fault-isolated scoring of a resident corpus by reference: each
    /// slice element scores in place — no staging, no buffer copies — with
    /// the same per-slot quarantine as the streamed paths (validation
    /// rejections, scoring errors and payload panics land in that slot's
    /// [`ScoreError`], addressed by slice index). With `threads > 1` the
    /// slots fan out over the worker pool.
    ///
    /// This is the cheapest batch entry point when the images are already
    /// in memory: per slot it adds only validation and the unwind guard
    /// over [`DetectionEngine::score`]. Sources that must materialize
    /// images (generators, decoders, bounded-memory streams) go through
    /// [`DetectionEngine::score_corpus_resilient`] /
    /// [`DetectionEngine::score_stream`] instead.
    pub fn score_images(
        &self,
        images: &[Image],
        threads: usize,
    ) -> Vec<Result<ScoreVector, ScoreError>> {
        parallel_map_indices(images.len(), threads, |index| {
            // Mirror `score_slot`: validation and scoring both run inside
            // the unwind boundary, so a panic anywhere quarantines only
            // this slot.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let image = &images[index];
                if let Err(err) = self.validate_image(image) {
                    return Err(err.at_index(index));
                }
                self.score(image).map_err(|err| ScoreError::detect(index, err))
            }));
            let result = match attempt {
                Ok(result) => result,
                Err(payload) => Err(ScoreError::panicked(index, payload)),
            };
            result.inspect_err(|err| self.metrics.quarantined(&err.cause))
        })
    }

    /// Majority vote over the thresholded methods, scored in one engine
    /// pass. Every threshold whose method is enabled contributes one vote
    /// (named after [`MethodId::name`]); thresholds of disabled methods are
    /// ignored. The decision matches an [`Ensemble`](crate::Ensemble)
    /// built from the same detectors and thresholds.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] if no threshold applies to an
    /// enabled method; otherwise the same conditions as
    /// [`DetectionEngine::score_with_artifacts`].
    pub fn decide(
        &self,
        image: &Image,
        thresholds: &EngineThresholds,
    ) -> Result<EnsembleDecision, DetectError> {
        let scores = self.score(image)?;
        let votes: Vec<(String, bool)> = thresholds
            .iter()
            .filter(|(id, _)| self.methods.contains(*id))
            .map(|(id, t)| (id.name().to_string(), t.is_attack(scores.get(id))))
            .collect();
        if votes.is_empty() {
            return Err(DetectError::InvalidConfig {
                message: "no threshold applies to an enabled engine method".into(),
            });
        }
        let attack_votes = votes.iter().filter(|(_, vote)| *vote).count();
        let is_attack = 2 * attack_votes > votes.len();
        Ok(EnsembleDecision { votes, unavailable: Vec::new(), is_attack })
    }

    /// Scores `count` benign and `count` attack images in a single
    /// `2 * count` fan-out over the worker pool (benign indices first), so
    /// both halves of the corpus share one batch. This is the fail-fast
    /// facade over [`DetectionEngine::score_corpus_resilient`]: the scores
    /// are the same, but the first quarantined slot aborts the result.
    ///
    /// # Errors
    ///
    /// Propagates the first scoring failure in index order (all benign
    /// indices before all attack indices).
    pub fn score_corpus(
        &self,
        benign_of: impl Fn(u64) -> Image + Sync,
        attack_of: impl Fn(u64) -> Image + Sync,
        count: usize,
        threads: usize,
    ) -> Result<EngineCorpus, DetectError> {
        self.score_corpus_resilient(benign_of, attack_of, count, threads).into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::Ensemble;
    use crate::threshold::Direction;
    use decamouflage_attack::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::Scaler;
    use decamouflage_spectral::dft2d::centered_spectrum;

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (128.0 + 60.0 * ((x as f64) * 0.06).sin() + 40.0 * ((y as f64) * 0.045).cos()).round()
        })
    }

    fn smooth_rgb(n: usize) -> Image {
        Image::from_fn_rgb(n, n, |x, y| {
            let v = 128.0 + 60.0 * ((x as f64) * 0.06).sin();
            [v, (v * 0.8 + (y as f64)).min(255.0), 255.0 - v]
        })
    }

    fn attack_image(src: usize, dst: usize) -> Image {
        let scaler =
            Scaler::new(Size::square(src), Size::square(dst), ScaleAlgorithm::Bilinear).unwrap();
        let target = Image::from_fn_gray(dst, dst, |x, y| ((x * 83 + y * 47) % 256) as f64);
        craft_attack(&smooth(src), &target, &scaler, &AttackConfig::default()).unwrap().image
    }

    #[test]
    fn engine_scores_match_naive_detectors_exactly() {
        let engine = DetectionEngine::new(Size::square(16));
        for image in [smooth(64), attack_image(64, 16), smooth_rgb(48)] {
            let scores = engine.score(&image).unwrap();
            for &id in MethodId::ALL {
                assert_eq!(
                    scores.get(id),
                    engine.build_detector(id).score(&image).unwrap(),
                    "{id} diverged on {}x{}",
                    image.width(),
                    image.height()
                );
            }
        }
    }

    #[test]
    fn engine_peak_excess_matches_standalone_for_every_window() {
        for window in
            [WindowKind::Rectangular, WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman]
        {
            let engine = DetectionEngine::new(Size::square(16)).with_peak_window(window);
            let standalone = PeakExcessDetector::for_target(Size::square(16)).with_window(window);
            for image in [smooth(64), attack_image(64, 16), smooth_rgb(48)] {
                assert_eq!(
                    engine.score(&image).unwrap().peak_excess(),
                    standalone.score(&image).unwrap(),
                    "window {window:?}"
                );
            }
        }
    }

    #[test]
    fn artifacts_match_detector_intermediates() {
        let engine = DetectionEngine::new(Size::square(16));
        let detectors = engine.detectors();
        let image = smooth(48);
        let artifacts = engine.score_with_artifacts(&image).unwrap();
        assert_eq!(artifacts.round_tripped, detectors.scaling_mse.round_tripped(&image).unwrap());
        assert_eq!(artifacts.filtered, detectors.filtering_mse.filtered(&image).unwrap());
        assert_eq!(artifacts.downscaled.size(), Size::square(16));
        // The rectangular peak window shares the CSP spectrum, and the
        // shared spectrum equals the staged centered_spectrum bit-for-bit.
        let centred = artifacts.centered_spectrum.expect("peak excess enabled by default");
        assert_eq!(centred, centered_spectrum(&image));
    }

    #[test]
    fn engine_separates_benign_from_attack() {
        let engine = DetectionEngine::new(Size::square(16));
        let benign = engine.score(&smooth(64)).unwrap();
        let attack = engine.score(&attack_image(64, 16)).unwrap();
        assert!(attack.scaling_mse() > benign.scaling_mse() * 10.0);
        assert!(attack.scaling_ssim() < benign.scaling_ssim());
        assert!(attack.csp() >= 2.0, "attack CSP = {}", attack.csp());
    }

    #[test]
    fn method_set_gates_scoring() {
        let subset = MethodSet::of(&[MethodId::ScalingMse, MethodId::PeakExcess]);
        let engine = DetectionEngine::new(Size::square(16)).with_methods(subset);
        let full = DetectionEngine::new(Size::square(16));
        let image = smooth(48);
        let scores = engine.score(&image).unwrap();
        let reference = full.score(&image).unwrap();
        for &id in MethodId::ALL {
            if subset.contains(id) {
                assert_eq!(scores.get(id), reference.get(id), "{id}");
            } else {
                assert!(scores.get(id).is_nan(), "{id} should be disabled");
            }
        }
        // Without peak excess the artifacts carry no spectrum.
        let engine = DetectionEngine::new(Size::square(16))
            .with_methods(MethodSet::all().without(MethodId::PeakExcess));
        let artifacts = engine.score_with_artifacts(&image).unwrap();
        assert!(artifacts.centered_spectrum.is_none());
    }

    #[test]
    fn score_corpus_matches_individual_scoring() {
        let engine = DetectionEngine::new(Size::square(8));
        let benign_of = |i: u64| smooth(24 + (i as usize % 3) * 4);
        let attack_of = |i: u64| smooth(32 + (i as usize % 2) * 8).map(|v| 255.0 - v);
        let corpus = engine.score_corpus(benign_of, attack_of, 4, 4).unwrap();
        assert_eq!(corpus.benign.len(), 4);
        assert_eq!(corpus.attack.len(), 4);
        for i in 0..4u64 {
            assert_eq!(corpus.benign[i as usize], engine.score(&benign_of(i)).unwrap());
            assert_eq!(corpus.attack[i as usize], engine.score(&attack_of(i)).unwrap());
        }
        // Column accessors read the same data method-wise.
        for &id in MethodId::ALL {
            let column = corpus.benign_column(id);
            assert_eq!(column.len(), 4);
            assert_eq!(column[2], corpus.benign[2].get(id));
            assert_eq!(corpus.attack_column(id)[1], corpus.attack[1].get(id));
        }
    }

    #[test]
    fn score_images_matches_score_and_quarantines_per_slot() {
        let engine = DetectionEngine::new(Size::square(8));
        let mut poisoned = smooth(24);
        poisoned.set(3, 5, 0, f64::NAN);
        let images = vec![smooth(24), poisoned, smooth(32)];
        for threads in [1, 3] {
            let results = engine.score_images(&images, threads);
            assert_eq!(results.len(), 3);
            assert_eq!(*results[0].as_ref().unwrap(), engine.score(&images[0]).unwrap());
            assert_eq!(*results[2].as_ref().unwrap(), engine.score(&images[2]).unwrap());
            let err = results[1].as_ref().unwrap_err();
            assert_eq!(err.index, 1);
            assert!(matches!(err.cause, crate::error::ScoreFault::NonFinitePixel { .. }));
        }
        assert!(engine.score_images(&[], 1).is_empty());
    }

    #[test]
    fn score_corpus_propagates_configuration_errors() {
        let mut bad_ssim = SsimConfig::default();
        bad_ssim.sigma = 0.0;
        let engine = DetectionEngine::new(Size::square(8)).with_ssim_config(bad_ssim);
        let result = engine.score_corpus(|_| smooth(24), |_| smooth(24), 2, 2);
        assert!(result.is_err());
    }

    #[test]
    fn validate_image_classifies_degenerate_inputs() {
        use crate::error::ScoreFault;
        let engine = DetectionEngine::new(Size::square(8));

        // (Zero-area images cannot be constructed through the imaging
        // crate, so the DegenerateDimensions guard is pure defense-in-depth
        // and is exercised only at the ScoreFault display level.)

        let mut poisoned = smooth(24);
        poisoned.set(3, 5, 0, f64::NAN);
        let err = engine.validate_image(&poisoned).unwrap_err();
        match err.cause {
            ScoreFault::NonFinitePixel { sample } => assert_eq!(sample, 5 * 24 + 3),
            other => panic!("expected NonFinitePixel, got {other:?}"),
        }

        // 4x4 is below the default 11-pixel SSIM window; the error is
        // attributed to the first enabled SSIM method.
        let err = engine.validate_image(&smooth(4)).unwrap_err();
        match err.cause {
            ScoreFault::BelowMinimumSize { required: 11, requirement: "SSIM window", .. } => {}
            other => panic!("expected BelowMinimumSize, got {other:?}"),
        }
        assert_eq!(err.method, Some(MethodId::ScalingSsim));

        // With both SSIM methods disabled the same image passes the SSIM
        // check but still trips the larger-than-image filter window.
        let engine = DetectionEngine::new(Size::square(8))
            .with_filter(6, RankKind::Minimum)
            .with_methods(MethodSet::of(&[MethodId::FilteringMse, MethodId::Csp]));
        let err = engine.validate_image(&smooth(4)).unwrap_err();
        match err.cause {
            ScoreFault::BelowMinimumSize {
                required: 6, requirement: "rank-filter window", ..
            } => {}
            other => panic!("expected the filter-window bound, got {other:?}"),
        }
        assert_eq!(err.method, Some(MethodId::FilteringMse));

        // A fully spatial-free configuration only needs a 2x2 spectrum.
        let engine =
            DetectionEngine::new(Size::square(8)).with_methods(MethodSet::of(&[MethodId::Csp]));
        let err = engine.validate_image(&Image::zeros(1, 8, decamouflage_imaging::Channels::Gray));
        assert!(matches!(err.unwrap_err().cause, ScoreFault::BelowMinimumSize { .. }));
        engine.validate_image(&smooth(2)).expect("2x2 feeds a spectrum plan fine");
    }

    #[test]
    fn score_resilient_matches_score_on_clean_input() {
        let engine = DetectionEngine::new(Size::square(16));
        let image = smooth(48);
        assert_eq!(engine.score_resilient(&image).unwrap(), engine.score(&image).unwrap());
    }

    #[test]
    fn score_resilient_quarantines_invalid_input_with_typed_cause() {
        use crate::error::ScoreFault;
        let engine = DetectionEngine::new(Size::square(16));
        let mut poisoned = smooth(48);
        poisoned.set(0, 0, 0, f64::INFINITY);
        let err = engine.score_resilient(&poisoned).unwrap_err();
        assert!(matches!(err.cause, ScoreFault::NonFinitePixel { sample: 0 }));
        // Scoring errors are carried as the typed Detect cause.
        let mut bad_ssim = SsimConfig::default();
        bad_ssim.sigma = 0.0;
        let engine = DetectionEngine::new(Size::square(16)).with_ssim_config(bad_ssim);
        let err = engine.score_resilient(&smooth(48)).unwrap_err();
        assert!(matches!(err.cause, ScoreFault::Detect(_)));
    }

    #[test]
    fn resilient_corpus_quarantines_exactly_the_invalid_slot() {
        let engine = DetectionEngine::new(Size::square(8));
        let benign_of = |i: u64| {
            if i == 2 {
                // NaN pixels must quarantine this slot and nothing else.
                Image::filled(24, 24, decamouflage_imaging::Channels::Gray, f64::NAN)
            } else {
                smooth(24 + (i as usize % 3) * 4)
            }
        };
        let attack_of = |i: u64| smooth(32 + (i as usize % 2) * 8).map(|v| 255.0 - v);
        let outcome = engine.score_corpus_resilient(benign_of, attack_of, 4, 4);
        let counts = outcome.counts();
        assert_eq!(counts.quarantined, 1);
        assert_eq!(counts.benign_quarantined, 1);
        assert_eq!(counts.attack_quarantined, 0);
        assert_eq!(counts.scored, 7);
        assert!(outcome.benign[2].is_err());
        assert_eq!(outcome.quarantined().next().unwrap().index, 2);
        // Every surviving slot is bit-identical to individual scoring.
        for (i, slot) in outcome.benign.iter().enumerate() {
            if i != 2 {
                assert_eq!(slot.as_ref().unwrap(), &engine.score(&benign_of(i as u64)).unwrap());
            }
        }
        for (i, slot) in outcome.attack.iter().enumerate() {
            assert_eq!(slot.as_ref().unwrap(), &engine.score(&attack_of(i as u64)).unwrap());
        }
        // Surviving columns skip the quarantined slot.
        assert_eq!(outcome.benign_column(MethodId::ScalingMse).len(), 3);
        assert_eq!(outcome.attack_column(MethodId::ScalingMse).len(), 4);
        // The fail-fast facade reports the same batch as an error.
        assert!(engine.score_corpus(benign_of, attack_of, 4, 4).is_err());
    }

    #[test]
    fn fault_plan_fires_by_batch_fanout_index() {
        use crate::faults::{FaultKind, FaultPlan};
        // Index 1 = benign[1], index 4 + 1 = 5 = attack[1] in a count-4 batch.
        let plan = FaultPlan::new().with(1, FaultKind::Error).with(5, FaultKind::NanScore);
        let engine = DetectionEngine::new(Size::square(8)).with_fault_plan(plan);
        let benign_of = |i: u64| smooth(24 + (i as usize % 3) * 4);
        let attack_of = |i: u64| smooth(32 + (i as usize % 2) * 8).map(|v| 255.0 - v);
        let outcome = engine.score_corpus_resilient(benign_of, attack_of, 4, 4);
        let err = outcome.benign[1].as_ref().unwrap_err();
        assert!(matches!(err.cause, crate::error::ScoreFault::Injected));
        assert_eq!(err.index, 1);
        let nan_scores = outcome.attack[1].as_ref().unwrap();
        assert!(MethodId::ALL.iter().all(|&id| nan_scores.get(id).is_nan()));
        // Unarmed slots score bit-identically to a plan-free engine.
        let clean = DetectionEngine::new(Size::square(8));
        assert_eq!(outcome.benign[0].as_ref().unwrap(), &clean.score(&benign_of(0)).unwrap());
        assert_eq!(outcome.attack[0].as_ref().unwrap(), &clean.score(&attack_of(0)).unwrap());
    }

    #[test]
    fn decide_matches_equivalent_ensemble() {
        let engine = DetectionEngine::new(Size::square(16));
        let detectors = engine.detectors();
        let thresholds = EngineThresholds::new()
            .with(MethodId::ScalingMse, Threshold::new(200.0, Direction::AboveIsAttack))
            .with(MethodId::FilteringSsim, Threshold::new(0.6, Direction::BelowIsAttack))
            .with(MethodId::Csp, SteganalysisDetector::universal_threshold());
        let ensemble = Ensemble::new()
            .with_member(
                detectors.scaling_mse.clone(),
                thresholds.get(MethodId::ScalingMse).unwrap(),
            )
            .with_member(
                detectors.filtering_ssim.clone(),
                thresholds.get(MethodId::FilteringSsim).unwrap(),
            )
            .with_member(detectors.steganalysis.clone(), thresholds.get(MethodId::Csp).unwrap());
        for image in [smooth(64), attack_image(64, 16)] {
            assert_eq!(
                engine.decide(&image, &thresholds).unwrap(),
                ensemble.decide(&image).unwrap()
            );
        }
    }

    #[test]
    fn decide_ignores_disabled_methods_and_rejects_empty_votes() {
        let engine = DetectionEngine::new(Size::square(16))
            .with_methods(MethodSet::of(&[MethodId::ScalingMse]));
        let thresholds = EngineThresholds::new()
            .with(MethodId::ScalingMse, Threshold::new(200.0, Direction::AboveIsAttack))
            .with(MethodId::Csp, SteganalysisDetector::universal_threshold());
        let decision = engine.decide(&smooth(48), &thresholds).unwrap();
        assert_eq!(decision.votes.len(), 1, "CSP is disabled, so only scaling votes");
        assert_eq!(decision.votes[0].0, "scaling/mse");

        let none = EngineThresholds::new()
            .with(MethodId::Csp, SteganalysisDetector::universal_threshold());
        assert!(engine.decide(&smooth(48), &none).is_err());
    }

    #[test]
    fn thresholds_bridge_to_persisted_sets() {
        let thresholds = EngineThresholds::new()
            .with(MethodId::ScalingMse, Threshold::new(400.0, Direction::AboveIsAttack))
            .with(MethodId::PeakExcess, Threshold::new(0.4, Direction::AboveIsAttack));
        assert_eq!(thresholds.len(), 2);
        assert!(!thresholds.is_empty());
        let set = thresholds.to_threshold_set();
        assert_eq!(set.len(), 2);
        let back = EngineThresholds::from_threshold_set(&set);
        assert_eq!(back, thresholds);
        assert_eq!(
            thresholds.iter().map(|(id, _)| id).collect::<Vec<_>>(),
            vec![MethodId::ScalingMse, MethodId::PeakExcess]
        );
    }

    #[test]
    fn builders_propagate_into_detectors() {
        let mut csp = CspConfig::default();
        csp.binarize_threshold = 0.5;
        let mut ssim = SsimConfig::default();
        ssim.radius = 3;
        let engine = DetectionEngine::new(Size::square(8))
            .with_algorithm(ScaleAlgorithm::Nearest)
            .with_ssim_config(ssim)
            .with_filter(3, RankKind::Median)
            .with_csp_config(csp.clone())
            .with_peak_window(WindowKind::Hann);
        assert_eq!(engine.algorithm(), ScaleAlgorithm::Nearest);
        assert_eq!(engine.target(), Size::square(8));
        assert_eq!(engine.peak_window(), WindowKind::Hann);
        assert_eq!(engine.methods(), MethodSet::all());
        let detectors = engine.detectors();
        assert_eq!(detectors.steganalysis.config(), &csp);
        assert_eq!(detectors.filtering_mse.window(), 3);
        assert_eq!(detectors.peak_excess.window(), WindowKind::Hann);
        // Scores still agree under the customised configuration.
        let image = smooth(32);
        let scores = engine.score(&image).unwrap();
        assert_eq!(scores.scaling_mse(), detectors.scaling_mse.score(&image).unwrap());
        assert_eq!(scores.filtering_ssim(), detectors.filtering_ssim.score(&image).unwrap());
        assert_eq!(scores.csp(), detectors.steganalysis.score(&image).unwrap());
        assert_eq!(scores.peak_excess(), detectors.peak_excess.score(&image).unwrap());
    }

    /// The one-registration contract, end to end: `DummyMean` exists only
    /// as a `MethodId` variant and a [`DetectionEngine::build_detector`]
    /// arm, yet it scores, votes, calibrates and persists without any
    /// layer-specific wiring.
    #[test]
    fn dummy_method_flows_through_engine_decide_and_persistence() {
        let engine = DetectionEngine::new(Size::square(8));
        let image = smooth(24);
        let scores = engine.score(&image).unwrap();
        let mean = image.mean_sample();
        assert_eq!(scores.get(MethodId::DummyMean), mean, "generic fallback scored the dummy");

        // Votes under its registry name, together with a paper method.
        let thresholds = EngineThresholds::new()
            .with(MethodId::DummyMean, Threshold::new(0.0, Direction::AboveIsAttack))
            .with(MethodId::Csp, SteganalysisDetector::universal_threshold());
        let decision = engine.decide(&image, &thresholds).unwrap();
        assert!(decision.votes.iter().any(|(name, vote)| name == "test/dummy-mean" && *vote));

        // Persists and loads through the typed text format untouched.
        let set = thresholds.to_threshold_set();
        let restored = ThresholdSet::from_text(&set.to_text()).unwrap();
        assert_eq!(restored.get(MethodId::DummyMean), thresholds.get(MethodId::DummyMean));
    }
}
