//! Shared-intermediate batch detection engine.
//!
//! Scoring one image with the three detection methods independently
//! recomputes everything from scratch: the scaling detectors build four
//! resampling plans and run two round trips, each SSIM evaluation blurs the
//! *input* image again, and the steganalysis detector materialises four
//! intermediate spectrum images. [`DetectionEngine`] scores an image with
//! all methods in one pass and shares the intermediates instead:
//!
//! * one round trip through cached resampling plans
//!   ([`ScalerCache`]) serves both scaling metrics,
//! * one rank-filter pass serves both filtering metrics,
//! * one [`SsimReference`] (precomputed `blur(I)`, `blur(I²)`) serves the
//!   scaling *and* filtering SSIM scores, with the blurs on the fast
//!   scratch-buffer convolution path,
//! * the CSP count runs on the planned-DFT fused pipeline
//!   ([`count_csp_planned`]) without intermediate spectrum images.
//!
//! Every shared path is bit-identical to its staged counterpart, so engine
//! scores equal the individual [`Detector`](crate::Detector)
//! implementations exactly — asserted by the tests in this module and the
//! crate's property tests. The naive detectors stay as the reference
//! implementation (and the honest cold baseline for the benchmark suite).

use crate::detector::MetricKind;
use crate::ensemble::EnsembleDecision;
use crate::filtering::FilteringDetector;
use crate::parallel::parallel_map_indices;
use crate::scaling::ScalingDetector;
use crate::steganalysis::SteganalysisDetector;
use crate::threshold::Threshold;
use crate::DetectError;
use decamouflage_imaging::filter::{rank_filter, RankKind};
use decamouflage_imaging::scale::{ScaleAlgorithm, ScalerCache};
use decamouflage_imaging::{Image, Size};
use decamouflage_metrics::{mse, SsimConfig, SsimReference};
use decamouflage_spectral::csp::{count_csp_planned, CspConfig};

/// The five per-image scores the engine produces, one per
/// `(method, metric)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineScores {
    /// Scaling detection, MSE metric (`mse(I, roundtrip(I))`).
    pub scaling_mse: f64,
    /// Scaling detection, SSIM metric.
    pub scaling_ssim: f64,
    /// Filtering detection, MSE metric (`mse(I, minfilter(I))`).
    pub filtering_mse: f64,
    /// Filtering detection, SSIM metric.
    pub filtering_ssim: f64,
    /// Steganalysis: centered-spectrum-point count.
    pub csp: f64,
}

impl EngineScores {
    /// The score for one `(method, metric)` pair, with `metric` selecting
    /// between the MSE and SSIM variants of the scaling score.
    pub fn scaling(&self, metric: MetricKind) -> f64 {
        match metric {
            MetricKind::Mse => self.scaling_mse,
            MetricKind::Ssim => self.scaling_ssim,
        }
    }

    /// The filtering score under `metric`.
    pub fn filtering(&self, metric: MetricKind) -> f64 {
        match metric {
            MetricKind::Mse => self.filtering_mse,
            MetricKind::Ssim => self.filtering_ssim,
        }
    }
}

/// Scores plus the shared intermediate images, for callers that feed
/// additional scorers (PSNR, colour histograms, …) from the same round
/// trip.
#[derive(Debug, Clone)]
pub struct EngineArtifacts {
    /// The image downscaled to the CNN input size.
    pub downscaled: Image,
    /// The round-tripped image `upscale(downscale(I))`.
    pub round_tripped: Image,
    /// The rank-filtered image.
    pub filtered: Image,
    /// The five engine scores.
    pub scores: EngineScores,
}

/// Engine scores for a full benign + attack corpus.
#[derive(Debug, Clone)]
pub struct EngineCorpus {
    /// Scores of the benign samples, in index order.
    pub benign: Vec<EngineScores>,
    /// Scores of the attack samples, in index order.
    pub attack: Vec<EngineScores>,
}

/// The naive single-method detectors equivalent to one engine
/// configuration. Scoring with any of them matches the corresponding
/// [`EngineScores`] field exactly.
#[derive(Debug, Clone)]
pub struct EngineDetectors {
    /// Scaling detection with the MSE metric.
    pub scaling_mse: ScalingDetector,
    /// Scaling detection with the SSIM metric.
    pub scaling_ssim: ScalingDetector,
    /// Filtering detection with the MSE metric.
    pub filtering_mse: FilteringDetector,
    /// Filtering detection with the SSIM metric.
    pub filtering_ssim: FilteringDetector,
    /// Steganalysis (CSP counting).
    pub steganalysis: SteganalysisDetector,
}

/// Calibrated thresholds for [`DetectionEngine::decide`]: one method each,
/// with the metric choice for the scaling and filtering members.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineThresholds {
    /// Metric of the scaling member.
    pub scaling_metric: MetricKind,
    /// Threshold of the scaling member.
    pub scaling: Threshold,
    /// Metric of the filtering member.
    pub filtering_metric: MetricKind,
    /// Threshold of the filtering member.
    pub filtering: Threshold,
    /// Threshold of the steganalysis member (the paper's `CSP_T = 2`).
    pub steganalysis: Threshold,
}

/// Scores one image with all three detection methods while sharing
/// intermediates (see the module docs).
///
/// # Example
///
/// ```
/// use decamouflage_core::DetectionEngine;
/// use decamouflage_imaging::{Image, Size};
///
/// # fn main() -> Result<(), decamouflage_core::DetectError> {
/// let engine = DetectionEngine::new(Size::square(16));
/// let image = Image::from_fn_gray(64, 64, |x, y| (((x + y) * 2) % 200) as f64 + 20.0);
/// let scores = engine.score(&image)?;
/// assert!(scores.csp >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DetectionEngine {
    target: Size,
    algorithm: ScaleAlgorithm,
    ssim_config: SsimConfig,
    filter_window: usize,
    filter_rank: RankKind,
    csp_config: CspConfig,
}

impl DetectionEngine {
    /// Creates an engine with the reproduction's standard configuration for
    /// a CNN input size: a bilinear defender round trip, the default SSIM
    /// window, the paper's 2×2 minimum filter and the target-tuned CSP
    /// configuration of [`SteganalysisDetector::for_target`].
    pub fn new(target: Size) -> Self {
        Self {
            target,
            algorithm: ScaleAlgorithm::Bilinear,
            ssim_config: SsimConfig::default(),
            filter_window: 2,
            filter_rank: RankKind::Minimum,
            csp_config: SteganalysisDetector::for_target(target).config().clone(),
        }
    }

    /// Overrides the round-trip scaling algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: ScaleAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Overrides the SSIM parameters.
    #[must_use]
    pub fn with_ssim_config(mut self, config: SsimConfig) -> Self {
        self.ssim_config = config;
        self
    }

    /// Overrides the rank-filter window and kind.
    #[must_use]
    pub fn with_filter(mut self, window: usize, rank: RankKind) -> Self {
        self.filter_window = window;
        self.filter_rank = rank;
        self
    }

    /// Overrides the CSP configuration.
    #[must_use]
    pub fn with_csp_config(mut self, config: CspConfig) -> Self {
        self.csp_config = config;
        self
    }

    /// The CNN input size the round trip passes through.
    pub const fn target(&self) -> Size {
        self.target
    }

    /// The round-trip scaling algorithm.
    pub const fn algorithm(&self) -> ScaleAlgorithm {
        self.algorithm
    }

    /// The equivalent naive detectors for this configuration, for threshold
    /// calibration, ensembles over `dyn Detector` and equality testing.
    pub fn detectors(&self) -> EngineDetectors {
        EngineDetectors {
            scaling_mse: ScalingDetector::new(self.target, self.algorithm, MetricKind::Mse)
                .with_ssim_config(self.ssim_config.clone()),
            scaling_ssim: ScalingDetector::new(self.target, self.algorithm, MetricKind::Ssim)
                .with_ssim_config(self.ssim_config.clone()),
            filtering_mse: FilteringDetector::new(MetricKind::Mse)
                .with_window(self.filter_window)
                .with_rank(self.filter_rank)
                .with_ssim_config(self.ssim_config.clone()),
            filtering_ssim: FilteringDetector::new(MetricKind::Ssim)
                .with_window(self.filter_window)
                .with_rank(self.filter_rank)
                .with_ssim_config(self.ssim_config.clone()),
            steganalysis: SteganalysisDetector::with_config(self.csp_config.clone()),
        }
    }

    /// Scores `image` with all three methods, returning the shared
    /// intermediates alongside the scores.
    ///
    /// # Errors
    ///
    /// Propagates imaging and metric failures ([`DetectError::Imaging`] /
    /// [`DetectError::Metric`]).
    pub fn score_with_artifacts(&self, image: &Image) -> Result<EngineArtifacts, DetectError> {
        let cache = ScalerCache::global();
        let src = image.size();
        // One round trip through cached plans; `downscaled` is computed
        // once and reused for the upscale leg.
        let downscaled = cache.get(src, self.target, self.algorithm)?.apply(image)?;
        let round_tripped = cache.get(self.target, src, self.algorithm)?.apply(&downscaled)?;
        let scaling_mse = mse(image, &round_tripped)?;

        // One reference-side SSIM precomputation serves both comparisons.
        let reference = SsimReference::new(image, &self.ssim_config)?;
        let scaling_ssim = reference.score_against(&round_tripped)?;

        let filtered = rank_filter(image, self.filter_window, self.filter_rank)?;
        let filtering_mse = mse(image, &filtered)?;
        let filtering_ssim = reference.score_against(&filtered)?;

        let csp = count_csp_planned(image, &self.csp_config).count as f64;

        Ok(EngineArtifacts {
            downscaled,
            round_tripped,
            filtered,
            scores: EngineScores { scaling_mse, scaling_ssim, filtering_mse, filtering_ssim, csp },
        })
    }

    /// Scores `image` with all three methods.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DetectionEngine::score_with_artifacts`].
    pub fn score(&self, image: &Image) -> Result<EngineScores, DetectError> {
        Ok(self.score_with_artifacts(image)?.scores)
    }

    /// Majority vote over the three methods, scored in one engine pass.
    /// The decision (member names included) matches an
    /// [`Ensemble`](crate::Ensemble) built from [`DetectionEngine::detectors`]
    /// with the same thresholds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DetectionEngine::score_with_artifacts`].
    pub fn decide(
        &self,
        image: &Image,
        thresholds: &EngineThresholds,
    ) -> Result<EnsembleDecision, DetectError> {
        let scores = self.score(image)?;
        let votes = vec![
            (
                format!("scaling/{}", thresholds.scaling_metric),
                thresholds.scaling.is_attack(scores.scaling(thresholds.scaling_metric)),
            ),
            (
                format!("filtering/{}", thresholds.filtering_metric),
                thresholds.filtering.is_attack(scores.filtering(thresholds.filtering_metric)),
            ),
            ("steganalysis/csp".to_string(), thresholds.steganalysis.is_attack(scores.csp)),
        ];
        let attack_votes = votes.iter().filter(|(_, vote)| *vote).count();
        Ok(EnsembleDecision { votes, is_attack: 2 * attack_votes > 3 })
    }

    /// Scores `count` benign and `count` attack images in a single
    /// `2 * count` fan-out over the worker pool (benign indices first), so
    /// both halves of the corpus share one batch.
    ///
    /// # Errors
    ///
    /// Propagates the first scoring failure in index order (all benign
    /// indices before all attack indices).
    pub fn score_corpus(
        &self,
        benign_of: impl Fn(u64) -> Image + Sync,
        attack_of: impl Fn(u64) -> Image + Sync,
        count: usize,
        threads: usize,
    ) -> Result<EngineCorpus, DetectError> {
        let results = parallel_map_indices(2 * count, threads, |i| {
            if i < count {
                self.score(&benign_of(i as u64))
            } else {
                self.score(&attack_of((i - count) as u64))
            }
        });
        let mut benign = Vec::with_capacity(count);
        let mut attack = Vec::with_capacity(count);
        for (i, result) in results.into_iter().enumerate() {
            let scores = result?;
            if i < count {
                benign.push(scores);
            } else {
                attack.push(scores);
            }
        }
        Ok(EngineCorpus { benign, attack })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::Ensemble;
    use crate::threshold::Direction;
    use crate::Detector;
    use decamouflage_attack::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::Scaler;

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (128.0 + 60.0 * ((x as f64) * 0.06).sin() + 40.0 * ((y as f64) * 0.045).cos()).round()
        })
    }

    fn smooth_rgb(n: usize) -> Image {
        Image::from_fn_rgb(n, n, |x, y| {
            let v = 128.0 + 60.0 * ((x as f64) * 0.06).sin();
            [v, (v * 0.8 + (y as f64)).min(255.0), 255.0 - v]
        })
    }

    fn attack_image(src: usize, dst: usize) -> Image {
        let scaler =
            Scaler::new(Size::square(src), Size::square(dst), ScaleAlgorithm::Bilinear).unwrap();
        let target = Image::from_fn_gray(dst, dst, |x, y| ((x * 83 + y * 47) % 256) as f64);
        craft_attack(&smooth(src), &target, &scaler, &AttackConfig::default()).unwrap().image
    }

    #[test]
    fn engine_scores_match_naive_detectors_exactly() {
        let engine = DetectionEngine::new(Size::square(16));
        let detectors = engine.detectors();
        for image in [smooth(64), attack_image(64, 16), smooth_rgb(48)] {
            let scores = engine.score(&image).unwrap();
            assert_eq!(scores.scaling_mse, detectors.scaling_mse.score(&image).unwrap());
            assert_eq!(scores.scaling_ssim, detectors.scaling_ssim.score(&image).unwrap());
            assert_eq!(scores.filtering_mse, detectors.filtering_mse.score(&image).unwrap());
            assert_eq!(scores.filtering_ssim, detectors.filtering_ssim.score(&image).unwrap());
            assert_eq!(scores.csp, detectors.steganalysis.score(&image).unwrap());
        }
    }

    #[test]
    fn artifacts_match_detector_intermediates() {
        let engine = DetectionEngine::new(Size::square(16));
        let detectors = engine.detectors();
        let image = smooth(48);
        let artifacts = engine.score_with_artifacts(&image).unwrap();
        assert_eq!(
            artifacts.round_tripped.as_slice(),
            detectors.scaling_mse.round_tripped(&image).unwrap().as_slice()
        );
        assert_eq!(
            artifacts.filtered.as_slice(),
            detectors.filtering_mse.filtered(&image).unwrap().as_slice()
        );
        assert_eq!(artifacts.downscaled.size(), Size::square(16));
    }

    #[test]
    fn engine_separates_benign_from_attack() {
        let engine = DetectionEngine::new(Size::square(16));
        let benign = engine.score(&smooth(64)).unwrap();
        let attack = engine.score(&attack_image(64, 16)).unwrap();
        assert!(attack.scaling_mse > benign.scaling_mse * 10.0);
        assert!(attack.scaling_ssim < benign.scaling_ssim);
        assert!(attack.csp >= 2.0, "attack CSP = {}", attack.csp);
    }

    #[test]
    fn score_corpus_matches_individual_scoring() {
        let engine = DetectionEngine::new(Size::square(8));
        let benign_of = |i: u64| smooth(24 + (i as usize % 3) * 4);
        let attack_of = |i: u64| smooth(32 + (i as usize % 2) * 8).map(|v| 255.0 - v);
        let corpus = engine.score_corpus(benign_of, attack_of, 4, 4).unwrap();
        assert_eq!(corpus.benign.len(), 4);
        assert_eq!(corpus.attack.len(), 4);
        for i in 0..4u64 {
            assert_eq!(corpus.benign[i as usize], engine.score(&benign_of(i)).unwrap());
            assert_eq!(corpus.attack[i as usize], engine.score(&attack_of(i)).unwrap());
        }
    }

    #[test]
    fn score_corpus_propagates_configuration_errors() {
        let mut bad_ssim = SsimConfig::default();
        bad_ssim.sigma = 0.0;
        let engine = DetectionEngine::new(Size::square(8)).with_ssim_config(bad_ssim);
        let result = engine.score_corpus(|_| smooth(24), |_| smooth(24), 2, 2);
        assert!(result.is_err());
    }

    #[test]
    fn decide_matches_equivalent_ensemble() {
        let engine = DetectionEngine::new(Size::square(16));
        let detectors = engine.detectors();
        let thresholds = EngineThresholds {
            scaling_metric: MetricKind::Mse,
            scaling: Threshold::new(200.0, Direction::AboveIsAttack),
            filtering_metric: MetricKind::Ssim,
            filtering: Threshold::new(0.6, Direction::BelowIsAttack),
            steganalysis: SteganalysisDetector::universal_threshold(),
        };
        let ensemble = Ensemble::new()
            .with_member(detectors.scaling_mse.clone(), thresholds.scaling)
            .with_member(detectors.filtering_ssim.clone(), thresholds.filtering)
            .with_member(detectors.steganalysis.clone(), thresholds.steganalysis);
        for image in [smooth(64), attack_image(64, 16)] {
            assert_eq!(
                engine.decide(&image, &thresholds).unwrap(),
                ensemble.decide(&image).unwrap()
            );
        }
    }

    #[test]
    fn builders_propagate_into_detectors() {
        let mut csp = CspConfig::default();
        csp.binarize_threshold = 0.5;
        let mut ssim = SsimConfig::default();
        ssim.radius = 3;
        let engine = DetectionEngine::new(Size::square(8))
            .with_algorithm(ScaleAlgorithm::Nearest)
            .with_ssim_config(ssim)
            .with_filter(3, RankKind::Median)
            .with_csp_config(csp.clone());
        assert_eq!(engine.algorithm(), ScaleAlgorithm::Nearest);
        assert_eq!(engine.target(), Size::square(8));
        let detectors = engine.detectors();
        assert_eq!(detectors.steganalysis.config(), &csp);
        assert_eq!(detectors.filtering_mse.window(), 3);
        // Scores still agree under the customised configuration.
        let image = smooth(32);
        let scores = engine.score(&image).unwrap();
        assert_eq!(scores.scaling_mse, detectors.scaling_mse.score(&image).unwrap());
        assert_eq!(scores.filtering_ssim, detectors.filtering_ssim.score(&image).unwrap());
        assert_eq!(scores.csp, detectors.steganalysis.score(&image).unwrap());
    }
}
