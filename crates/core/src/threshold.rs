//! Threshold types and the two calibration modes of the paper.
//!
//! * **White-box** ([`search_whitebox`]): with labelled benign and attack
//!   scores available, scan every decision boundary between adjacent sorted
//!   scores and keep the accuracy-maximising one. This finds the exact
//!   optimum that the paper's iterative "gradient descent" search converges
//!   to, and exposes the full accuracy-vs-threshold trace for Figure 7.
//! * **Black-box** ([`percentile_blackbox`]): with only benign scores
//!   available, place the threshold at a tail percentile of the benign
//!   distribution (the paper evaluates 1%, 2% and 3%).

use crate::DetectError;
use decamouflage_metrics::percentile;

/// Which side of the threshold is classified as an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Scores `>=` the threshold are attacks (MSE-like metrics, CSP).
    AboveIsAttack,
    /// Scores `<=` the threshold are attacks (SSIM-like similarities).
    BelowIsAttack,
}

/// A calibrated decision threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    value: f64,
    direction: Direction,
}

impl Threshold {
    /// Creates a threshold.
    pub const fn new(value: f64, direction: Direction) -> Self {
        Self { value, direction }
    }

    /// The numeric boundary.
    pub const fn value(&self) -> f64 {
        self.value
    }

    /// The decision direction.
    pub const fn direction(&self) -> Direction {
        self.direction
    }

    /// Classifies a score.
    pub fn is_attack(&self, score: f64) -> bool {
        match self.direction {
            Direction::AboveIsAttack => score >= self.value,
            Direction::BelowIsAttack => score <= self.value,
        }
    }
}

/// One point of the white-box threshold-search trace (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchPoint {
    /// Candidate threshold value.
    pub threshold: f64,
    /// Classification accuracy over the training scores at this candidate.
    pub accuracy: f64,
}

/// Outcome of a white-box threshold search.
#[derive(Debug, Clone, PartialEq)]
pub struct WhiteboxSearch {
    /// The accuracy-maximising threshold.
    pub threshold: Threshold,
    /// Training accuracy achieved at [`WhiteboxSearch::threshold`].
    pub train_accuracy: f64,
    /// The full candidate trace in ascending threshold order.
    pub trace: Vec<SearchPoint>,
}

/// White-box calibration: exhaustively evaluates every boundary between
/// adjacent scores (benign ∪ attack, sorted) and returns the
/// accuracy-maximising midpoint.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] when either score set is
/// empty or contains NaN.
pub fn search_whitebox(
    benign_scores: &[f64],
    attack_scores: &[f64],
    direction: Direction,
) -> Result<WhiteboxSearch, DetectError> {
    validate_scores(benign_scores, "benign")?;
    validate_scores(attack_scores, "attack")?;

    let mut all: Vec<f64> = benign_scores.iter().chain(attack_scores.iter()).copied().collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("validated non-NaN"));
    all.dedup();

    // Candidate boundaries: midpoints of adjacent distinct scores, plus one
    // candidate below the minimum and one above the maximum.
    let mut candidates = Vec::with_capacity(all.len() + 1);
    candidates.push(all[0] - 1.0);
    for pair in all.windows(2) {
        candidates.push(0.5 * (pair[0] + pair[1]));
    }
    candidates.push(all[all.len() - 1] + 1.0);

    let total = (benign_scores.len() + attack_scores.len()) as f64;
    let mut trace = Vec::with_capacity(candidates.len());
    let mut best = SearchPoint { threshold: candidates[0], accuracy: -1.0 };
    for &c in &candidates {
        let t = Threshold::new(c, direction);
        let correct = attack_scores.iter().filter(|&&s| t.is_attack(s)).count()
            + benign_scores.iter().filter(|&&s| !t.is_attack(s)).count();
        let accuracy = correct as f64 / total;
        trace.push(SearchPoint { threshold: c, accuracy });
        if accuracy > best.accuracy {
            best = SearchPoint { threshold: c, accuracy };
        }
    }

    Ok(WhiteboxSearch {
        threshold: Threshold::new(best.threshold, direction),
        train_accuracy: best.accuracy,
        trace,
    })
}

/// Black-box calibration: the threshold is the `tail_percent` tail of the
/// *benign* score distribution on the attack side.
///
/// For [`Direction::AboveIsAttack`] the threshold is the
/// `(100 − tail_percent)`-th percentile; for
/// [`Direction::BelowIsAttack`] the `tail_percent`-th percentile. By
/// construction roughly `tail_percent` percent of benign training images
/// fall on the attack side (the FRR the paper trades for a usable FAR).
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] for an empty or NaN-bearing
/// score set or a `tail_percent` outside `(0, 50]`.
pub fn percentile_blackbox(
    benign_scores: &[f64],
    tail_percent: f64,
    direction: Direction,
) -> Result<Threshold, DetectError> {
    validate_scores(benign_scores, "benign")?;
    if !(tail_percent > 0.0 && tail_percent <= 50.0) {
        return Err(DetectError::InvalidCalibration {
            message: format!("tail percent must be in (0, 50], got {tail_percent}"),
        });
    }
    let p = match direction {
        Direction::AboveIsAttack => 100.0 - tail_percent,
        Direction::BelowIsAttack => tail_percent,
    };
    let value = percentile(benign_scores, p)?;
    Ok(Threshold::new(value, direction))
}

fn validate_scores(scores: &[f64], label: &str) -> Result<(), DetectError> {
    if scores.is_empty() {
        return Err(DetectError::InvalidCalibration {
            message: format!("{label} score set is empty"),
        });
    }
    if scores.iter().any(|s| s.is_nan()) {
        return Err(DetectError::InvalidCalibration {
            message: format!("{label} score set contains NaN"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_decisions_above() {
        let t = Threshold::new(10.0, Direction::AboveIsAttack);
        assert!(t.is_attack(10.0));
        assert!(t.is_attack(11.0));
        assert!(!t.is_attack(9.9));
    }

    #[test]
    fn threshold_decisions_below() {
        let t = Threshold::new(0.5, Direction::BelowIsAttack);
        assert!(t.is_attack(0.5));
        assert!(t.is_attack(0.1));
        assert!(!t.is_attack(0.6));
        assert_eq!(t.value(), 0.5);
        assert_eq!(t.direction(), Direction::BelowIsAttack);
    }

    #[test]
    fn whitebox_separable_scores_reach_perfect_accuracy() {
        let benign = [1.0, 2.0, 3.0];
        let attack = [10.0, 11.0, 12.0];
        let result = search_whitebox(&benign, &attack, Direction::AboveIsAttack).unwrap();
        assert_eq!(result.train_accuracy, 1.0);
        let t = result.threshold.value();
        assert!(t > 3.0 && t <= 10.0, "threshold {t}");
    }

    #[test]
    fn whitebox_below_direction() {
        let benign = [0.9, 0.95, 0.99]; // SSIM-like: benign high
        let attack = [0.1, 0.2, 0.3];
        let result = search_whitebox(&benign, &attack, Direction::BelowIsAttack).unwrap();
        assert_eq!(result.train_accuracy, 1.0);
        let t = result.threshold.value();
        assert!(t >= 0.3 && t < 0.9, "threshold {t}");
    }

    #[test]
    fn whitebox_overlapping_scores_maximise_accuracy() {
        let benign = [1.0, 2.0, 3.0, 8.0]; // one benign outlier
        let attack = [5.0, 6.0, 7.0, 9.0];
        let result = search_whitebox(&benign, &attack, Direction::AboveIsAttack).unwrap();
        // Best split at 3.5..5: 7 of 8 correct.
        assert!((result.train_accuracy - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn whitebox_trace_is_ascending_and_covers_extremes() {
        let benign = [1.0, 2.0];
        let attack = [4.0, 5.0];
        let result = search_whitebox(&benign, &attack, Direction::AboveIsAttack).unwrap();
        for pair in result.trace.windows(2) {
            assert!(pair[0].threshold < pair[1].threshold);
        }
        // Extreme candidates classify everything one way: accuracy 0.5.
        assert_eq!(result.trace.first().unwrap().accuracy, 0.5);
        assert_eq!(result.trace.last().unwrap().accuracy, 0.5);
    }

    #[test]
    fn whitebox_rejects_bad_input() {
        assert!(search_whitebox(&[], &[1.0], Direction::AboveIsAttack).is_err());
        assert!(search_whitebox(&[1.0], &[], Direction::AboveIsAttack).is_err());
        assert!(search_whitebox(&[f64::NAN], &[1.0], Direction::AboveIsAttack).is_err());
    }

    #[test]
    fn blackbox_above_uses_upper_tail() {
        let benign: Vec<f64> = (1..=100).map(f64::from).collect();
        let t = percentile_blackbox(&benign, 1.0, Direction::AboveIsAttack).unwrap();
        // 99th percentile of 1..=100 ~ 99.01.
        assert!(t.value() > 98.9 && t.value() < 99.2, "{}", t.value());
        // Roughly 1% of benign scores land on the attack side.
        let frr = benign.iter().filter(|&&s| t.is_attack(s)).count();
        assert!(frr <= 2);
    }

    #[test]
    fn blackbox_below_uses_lower_tail() {
        let benign: Vec<f64> = (1..=100).map(f64::from).collect();
        let t = percentile_blackbox(&benign, 2.0, Direction::BelowIsAttack).unwrap();
        assert!(t.value() > 2.5 && t.value() < 3.5, "{}", t.value());
    }

    #[test]
    fn blackbox_rejects_bad_percent() {
        let benign = [1.0, 2.0];
        assert!(percentile_blackbox(&benign, 0.0, Direction::AboveIsAttack).is_err());
        assert!(percentile_blackbox(&benign, 51.0, Direction::AboveIsAttack).is_err());
        assert!(percentile_blackbox(&[], 1.0, Direction::AboveIsAttack).is_err());
    }

    #[test]
    fn larger_tail_percent_moves_threshold_inward() {
        let benign: Vec<f64> = (1..=1000).map(|i| i as f64 / 10.0).collect();
        let t1 = percentile_blackbox(&benign, 1.0, Direction::AboveIsAttack).unwrap();
        let t3 = percentile_blackbox(&benign, 3.0, Direction::AboveIsAttack).unwrap();
        assert!(t3.value() < t1.value());
    }
}
