//! High-level calibration: turn a [`Detector`] plus sample images directly
//! into a calibrated threshold (and optionally an ensemble member),
//! without touching score vectors by hand.
//!
//! ```
//! use decamouflage_core::calibrate::calibrate_whitebox;
//! use decamouflage_core::{MetricKind, ScalingDetector};
//! use decamouflage_imaging::{Image, Size, scale::ScaleAlgorithm};
//!
//! # fn main() -> Result<(), decamouflage_core::DetectError> {
//! let detector = ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Mse);
//! let benign: Vec<Image> =
//!     (0..4).map(|i| Image::from_fn_gray(32, 32, |x, y| ((x + y + i) % 200) as f64)).collect();
//! let attacks: Vec<Image> =
//!     (0..4).map(|i| Image::from_fn_gray(32, 32, |x, y| ((x * y + i * 7) % 256) as f64)).collect();
//! let calibration = calibrate_whitebox(&detector, &benign, &attacks)?;
//! assert!(calibration.train_accuracy > 0.5);
//! # Ok(())
//! # }
//! ```

use crate::detector::Detector;
use crate::engine::DetectionEngine;
use crate::ensemble::EnsembleMember;
use crate::method::ScoreColumns;
use crate::persist::ThresholdSet;
use crate::stream::{ImageSource, SliceSource, StreamConfig};
use crate::threshold::{percentile_blackbox, search_whitebox, Threshold};
use crate::{DetectError, ScoreError};
use decamouflage_imaging::Image;

/// Result of a white-box calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The selected threshold.
    pub threshold: Threshold,
    /// Accuracy over the calibration samples at that threshold.
    pub train_accuracy: f64,
    /// Scores of the benign calibration images (for reporting).
    pub benign_scores: Vec<f64>,
    /// Scores of the attack calibration images (empty for black-box).
    pub attack_scores: Vec<f64>,
}

fn score_all<D: Detector>(detector: &D, images: &[Image]) -> Result<Vec<f64>, DetectError> {
    images.iter().map(|img| detector.score(img)).collect()
}

/// White-box calibration: score both sample sets and run the optimal
/// threshold search.
///
/// # Errors
///
/// Propagates scoring failures and calibration-input errors (empty sets).
pub fn calibrate_whitebox<D: Detector>(
    detector: &D,
    benign: &[Image],
    attacks: &[Image],
) -> Result<Calibration, DetectError> {
    let benign_scores = score_all(detector, benign)?;
    let attack_scores = score_all(detector, attacks)?;
    let search = search_whitebox(&benign_scores, &attack_scores, detector.direction())?;
    Ok(Calibration {
        threshold: search.threshold,
        train_accuracy: search.train_accuracy,
        benign_scores,
        attack_scores,
    })
}

/// Black-box calibration: score the benign set only and place the
/// threshold at the `tail_percent` percentile on the attack side.
///
/// # Errors
///
/// Propagates scoring failures and calibration-input errors.
pub fn calibrate_blackbox<D: Detector>(
    detector: &D,
    benign: &[Image],
    tail_percent: f64,
) -> Result<Calibration, DetectError> {
    let benign_scores = score_all(detector, benign)?;
    let threshold = percentile_blackbox(&benign_scores, tail_percent, detector.direction())?;
    // Training accuracy on benign only: 1 - FRR at this threshold.
    let frr = benign_scores.iter().filter(|&&s| threshold.is_attack(s)).count() as f64
        / benign_scores.len() as f64;
    Ok(Calibration {
        threshold,
        train_accuracy: 1.0 - frr,
        benign_scores,
        attack_scores: Vec::new(),
    })
}

/// Convenience: white-box calibrate a detector and wrap it as an ensemble
/// member in one step.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn calibrated_member<D: Detector + 'static>(
    detector: D,
    benign: &[Image],
    attacks: &[Image],
) -> Result<EnsembleMember, DetectError> {
    let calibration = calibrate_whitebox(&detector, benign, attacks)?;
    Ok(EnsembleMember::new(detector, calibration.threshold))
}

/// Streams `source` through the engine, accumulating the per-method score
/// columns in one pass and failing fast on the first quarantined position
/// (in stream order) — the strict calibration contract.
fn score_source_strict(
    engine: &DetectionEngine,
    source: &mut dyn ImageSource,
    config: &StreamConfig,
) -> Result<ScoreColumns, DetectError> {
    let mut columns = ScoreColumns::new(engine.methods());
    let mut first_err: Option<ScoreError> = None;
    engine.score_stream(source, config, |_, result| match result {
        Ok(scores) if first_err.is_none() => columns.push(&scores),
        Err(err) if first_err.is_none() => first_err = Some(err),
        _ => {}
    });
    match first_err {
        Some(err) => Err(err.into()),
        None => Ok(columns),
    }
}

/// Runs the white-box threshold search of every enabled engine method over
/// pre-transposed score columns.
fn search_column_set(
    engine: &DetectionEngine,
    benign: &ScoreColumns,
    attacks: &ScoreColumns,
) -> Result<ThresholdSet, DetectError> {
    let mut set = ThresholdSet::new();
    for id in engine.methods().iter() {
        let search = search_whitebox(benign.column(id), attacks.column(id), id.direction())?;
        set.insert(id, search.threshold);
    }
    Ok(set)
}

/// White-box calibration of **every enabled engine method** in one engine
/// pass per image: each image is scored once, the per-method columns are
/// accumulated in a single pass ([`ScoreColumns`]), and each method's
/// threshold comes from its own column under its registry direction
/// ([`crate::MethodId::direction`]). A facade over the streaming path with
/// a slice-backed source.
///
/// # Errors
///
/// Propagates scoring failures and calibration-input errors (empty sets).
pub fn calibrate_engine_whitebox(
    engine: &DetectionEngine,
    benign: &[Image],
    attacks: &[Image],
) -> Result<ThresholdSet, DetectError> {
    let config = StreamConfig::default();
    let benign_columns = score_source_strict(engine, &mut SliceSource::new(benign), &config)?;
    let attack_columns = score_source_strict(engine, &mut SliceSource::new(attacks), &config)?;
    search_column_set(engine, &benign_columns, &attack_columns)
}

/// A [`calibrate_engine_whitebox`] run that survived bad samples: the
/// thresholds from the surviving images plus the quarantine ledger.
#[derive(Debug)]
pub struct ResilientCalibration {
    /// Per-method thresholds from the images that scored successfully.
    pub thresholds: ThresholdSet,
    /// The quarantine errors of the benign samples, `(sample index, error)`.
    pub benign_quarantined: Vec<(usize, crate::ScoreError)>,
    /// The quarantine errors of the attack samples, `(sample index, error)`.
    pub attack_quarantined: Vec<(usize, crate::ScoreError)>,
}

impl ResilientCalibration {
    /// Total number of quarantined calibration samples.
    pub fn quarantined(&self) -> usize {
        self.benign_quarantined.len() + self.attack_quarantined.len()
    }
}

/// Streams `source` through the engine resiliently: survivors accumulate
/// into one-pass score columns, quarantined positions land in the ledger
/// with their stream index.
fn score_source_resilient(
    engine: &DetectionEngine,
    source: &mut dyn ImageSource,
    config: &StreamConfig,
    quarantined: &mut Vec<(usize, ScoreError)>,
) -> ScoreColumns {
    let mut columns = ScoreColumns::new(engine.methods());
    engine.score_stream(source, config, |index, result| match result {
        Ok(scores) => columns.push(&scores),
        Err(err) => quarantined.push((index, err)),
    });
    columns
}

/// White-box calibration over arbitrary [`ImageSource`]s with bounded
/// memory: both streams are scored chunk by chunk
/// ([`DetectionEngine::score_stream`]), survivors feed the one-pass score
/// columns, and quarantined positions are collected with their stream
/// index. This is the calibration entry point for corpora that do not fit
/// in memory — directories stream through
/// [`DirectorySource`](crate::stream::DirectorySource), synthetic corpora
/// through [`FnSource`](crate::stream::FnSource).
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] when either class has no
/// surviving samples; propagates threshold-search errors.
pub fn calibrate_engine_whitebox_sources(
    engine: &DetectionEngine,
    benign: &mut dyn ImageSource,
    attacks: &mut dyn ImageSource,
    config: &StreamConfig,
) -> Result<ResilientCalibration, DetectError> {
    let mut benign_quarantined = Vec::new();
    let mut attack_quarantined = Vec::new();
    let benign_columns = score_source_resilient(engine, benign, config, &mut benign_quarantined);
    let attack_columns = score_source_resilient(engine, attacks, config, &mut attack_quarantined);
    let thresholds = search_column_set(engine, &benign_columns, &attack_columns)?;
    Ok(ResilientCalibration { thresholds, benign_quarantined, attack_quarantined })
}

/// White-box calibration that quarantines unusable samples instead of
/// aborting: every image streams through the resilient scoring path,
/// failures are collected with their sample index, and the threshold
/// search runs on whatever survived. One corrupt file in a calibration
/// corpus no longer costs the whole run — but inspect
/// [`ResilientCalibration::quarantined`] before trusting the thresholds,
/// because a heavily quarantined corpus is itself a signal. A facade over
/// [`calibrate_engine_whitebox_sources`] with slice-backed sources.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] when either class has no
/// surviving samples; propagates threshold-search errors.
pub fn calibrate_engine_whitebox_resilient(
    engine: &DetectionEngine,
    benign: &[Image],
    attacks: &[Image],
) -> Result<ResilientCalibration, DetectError> {
    calibrate_engine_whitebox_sources(
        engine,
        &mut SliceSource::new(benign),
        &mut SliceSource::new(attacks),
        &StreamConfig::default(),
    )
}

/// Black-box calibration over an arbitrary benign [`ImageSource`] with
/// bounded memory; strict — the first unscorable position aborts.
///
/// # Errors
///
/// Propagates scoring failures and calibration-input errors.
pub fn calibrate_engine_blackbox_source(
    engine: &DetectionEngine,
    benign: &mut dyn ImageSource,
    tail_percent: f64,
    config: &StreamConfig,
) -> Result<ThresholdSet, DetectError> {
    let benign_columns = score_source_strict(engine, benign, config)?;
    let mut set = ThresholdSet::new();
    for id in engine.methods().iter() {
        let threshold = match id.fixed_blackbox_threshold() {
            Some(fixed) => fixed,
            None => percentile_blackbox(benign_columns.column(id), tail_percent, id.direction())?,
        };
        set.insert(id, threshold);
    }
    Ok(set)
}

/// Black-box calibration of every enabled engine method from benign
/// samples only. Methods carrying a universal threshold
/// ([`crate::MethodId::fixed_blackbox_threshold`] — the paper's
/// `CSP_T = 2`) keep it without touching the scores; every other method
/// gets the `tail_percent` benign percentile under its registry direction.
/// A facade over [`calibrate_engine_blackbox_source`] with a slice-backed
/// source.
///
/// # Errors
///
/// Propagates scoring failures and calibration-input errors.
pub fn calibrate_engine_blackbox(
    engine: &DetectionEngine,
    benign: &[Image],
    tail_percent: f64,
) -> Result<ThresholdSet, DetectError> {
    calibrate_engine_blackbox_source(
        engine,
        &mut SliceSource::new(benign),
        tail_percent,
        &StreamConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::Direction;

    /// Scores an image by its mean (deterministic, fast).
    struct MeanDetector;

    impl Detector for MeanDetector {
        fn score(&self, image: &Image) -> Result<f64, DetectError> {
            Ok(image.mean_sample())
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "mean".into()
        }
    }

    fn flats(levels: &[f64]) -> Vec<Image> {
        levels
            .iter()
            .map(|&v| Image::filled(2, 2, decamouflage_imaging::Channels::Gray, v))
            .collect()
    }

    #[test]
    fn whitebox_separates_flat_levels() {
        let benign = flats(&[10.0, 20.0, 30.0]);
        let attacks = flats(&[200.0, 210.0]);
        let c = calibrate_whitebox(&MeanDetector, &benign, &attacks).unwrap();
        assert_eq!(c.train_accuracy, 1.0);
        assert!(c.threshold.value() > 30.0 && c.threshold.value() <= 200.0);
        assert_eq!(c.benign_scores.len(), 3);
        assert_eq!(c.attack_scores.len(), 2);
    }

    #[test]
    fn blackbox_uses_percentile_of_benign() {
        let benign = flats(&(1..=100).map(f64::from).collect::<Vec<_>>());
        let c = calibrate_blackbox(&MeanDetector, &benign, 2.0).unwrap();
        assert!(c.attack_scores.is_empty());
        assert!(c.threshold.value() > 97.0);
        assert!(c.train_accuracy >= 0.97);
    }

    #[test]
    fn calibrated_member_votes_correctly() {
        let benign = flats(&[10.0, 20.0]);
        let attacks = flats(&[200.0, 220.0]);
        let member = calibrated_member(MeanDetector, &benign, &attacks).unwrap();
        assert!(!member
            .is_attack(&Image::filled(2, 2, decamouflage_imaging::Channels::Gray, 15.0))
            .unwrap());
        assert!(member
            .is_attack(&Image::filled(2, 2, decamouflage_imaging::Channels::Gray, 210.0))
            .unwrap());
        assert_eq!(member.name(), "mean");
    }

    #[test]
    fn empty_sets_are_rejected() {
        assert!(calibrate_whitebox(&MeanDetector, &[], &flats(&[1.0])).is_err());
        assert!(calibrate_blackbox(&MeanDetector, &[], 1.0).is_err());
    }

    use crate::method::MethodId;
    use decamouflage_imaging::Size;

    fn scenes(shift: f64, count: usize) -> Vec<Image> {
        (0..count)
            .map(|i| {
                Image::from_fn_gray(24, 24, move |x, y| {
                    (90.0
                        + shift
                        + 50.0 * ((x as f64 + i as f64) * 0.07).sin()
                        + 30.0 * ((y as f64) * 0.05).cos())
                    .round()
                })
            })
            .collect()
    }

    #[test]
    fn engine_whitebox_covers_every_enabled_method() {
        let engine = DetectionEngine::new(Size::square(8));
        let benign = scenes(0.0, 3);
        let attacks: Vec<Image> = scenes(40.0, 3).iter().map(|i| i.map(|v| 255.0 - v)).collect();
        let set = calibrate_engine_whitebox(&engine, &benign, &attacks).unwrap();
        assert_eq!(set.len(), engine.methods().len());
        for id in engine.methods().iter() {
            let t = set.get(id).expect("every enabled method is calibrated");
            assert_eq!(t.direction(), id.direction());
        }
        // The registry's test-only dummy method calibrated too — no
        // calibrate-layer change was needed to include it.
        assert!(set.get(MethodId::DummyMean).is_some());
    }

    #[test]
    fn engine_blackbox_keeps_fixed_csp_threshold() {
        let engine = DetectionEngine::new(Size::square(8));
        let benign = scenes(0.0, 4);
        let set = calibrate_engine_blackbox(&engine, &benign, 5.0).unwrap();
        assert_eq!(set.len(), engine.methods().len());
        assert_eq!(set.get(MethodId::Csp), Some(SteganalysisDetector::universal_threshold()));
        let peak = set.get(MethodId::PeakExcess).unwrap();
        assert_eq!(peak.direction(), Direction::AboveIsAttack);
        assert!(peak.value().is_finite());
    }

    use crate::steganalysis::SteganalysisDetector;

    #[test]
    fn resilient_whitebox_skips_quarantined_samples() {
        let engine = DetectionEngine::new(Size::square(8));
        let mut benign = scenes(0.0, 3);
        // Poison one benign sample with a NaN pixel.
        benign[1].set(2, 2, 0, f64::NAN);
        let attacks: Vec<Image> = scenes(40.0, 3).iter().map(|i| i.map(|v| 255.0 - v)).collect();

        let resilient = calibrate_engine_whitebox_resilient(&engine, &benign, &attacks).unwrap();
        assert_eq!(resilient.quarantined(), 1);
        assert_eq!(resilient.benign_quarantined[0].0, 1, "sample index is reported");
        assert!(resilient.attack_quarantined.is_empty());

        // The thresholds match a strict calibration on the clean subset.
        let clean: Vec<Image> = vec![benign[0].clone(), benign[2].clone()];
        let strict = calibrate_engine_whitebox(&engine, &clean, &attacks).unwrap();
        for id in engine.methods().iter() {
            assert_eq!(resilient.thresholds.get(id), strict.get(id));
        }

        // The strict path refuses the same poisoned corpus outright.
        assert!(calibrate_engine_whitebox(&engine, &benign, &attacks).is_err());

        // A class with no survivors fails the calibration.
        let mut all_bad = scenes(0.0, 2);
        for image in &mut all_bad {
            image.set(0, 0, 0, f64::NAN);
        }
        assert!(calibrate_engine_whitebox_resilient(&engine, &all_bad, &attacks).is_err());
    }

    #[test]
    fn engine_calibration_rejects_empty_sets() {
        let engine = DetectionEngine::new(Size::square(8));
        assert!(calibrate_engine_whitebox(&engine, &[], &scenes(0.0, 2)).is_err());
        assert!(calibrate_engine_blackbox(&engine, &[], 1.0).is_err());
    }
}
