//! High-level calibration: turn a [`Detector`] plus sample images directly
//! into a calibrated threshold (and optionally an ensemble member),
//! without touching score vectors by hand.
//!
//! ```
//! use decamouflage_core::calibrate::calibrate_whitebox;
//! use decamouflage_core::{MetricKind, ScalingDetector};
//! use decamouflage_imaging::{Image, Size, scale::ScaleAlgorithm};
//!
//! # fn main() -> Result<(), decamouflage_core::DetectError> {
//! let detector = ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Mse);
//! let benign: Vec<Image> =
//!     (0..4).map(|i| Image::from_fn_gray(32, 32, |x, y| ((x + y + i) % 200) as f64)).collect();
//! let attacks: Vec<Image> =
//!     (0..4).map(|i| Image::from_fn_gray(32, 32, |x, y| ((x * y + i * 7) % 256) as f64)).collect();
//! let calibration = calibrate_whitebox(&detector, &benign, &attacks)?;
//! assert!(calibration.train_accuracy > 0.5);
//! # Ok(())
//! # }
//! ```

use crate::detector::Detector;
use crate::ensemble::EnsembleMember;
use crate::threshold::{percentile_blackbox, search_whitebox, Threshold};
use crate::DetectError;
use decamouflage_imaging::Image;

/// Result of a white-box calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The selected threshold.
    pub threshold: Threshold,
    /// Accuracy over the calibration samples at that threshold.
    pub train_accuracy: f64,
    /// Scores of the benign calibration images (for reporting).
    pub benign_scores: Vec<f64>,
    /// Scores of the attack calibration images (empty for black-box).
    pub attack_scores: Vec<f64>,
}

fn score_all<D: Detector>(detector: &D, images: &[Image]) -> Result<Vec<f64>, DetectError> {
    images.iter().map(|img| detector.score(img)).collect()
}

/// White-box calibration: score both sample sets and run the optimal
/// threshold search.
///
/// # Errors
///
/// Propagates scoring failures and calibration-input errors (empty sets).
pub fn calibrate_whitebox<D: Detector>(
    detector: &D,
    benign: &[Image],
    attacks: &[Image],
) -> Result<Calibration, DetectError> {
    let benign_scores = score_all(detector, benign)?;
    let attack_scores = score_all(detector, attacks)?;
    let search = search_whitebox(&benign_scores, &attack_scores, detector.direction())?;
    Ok(Calibration {
        threshold: search.threshold,
        train_accuracy: search.train_accuracy,
        benign_scores,
        attack_scores,
    })
}

/// Black-box calibration: score the benign set only and place the
/// threshold at the `tail_percent` percentile on the attack side.
///
/// # Errors
///
/// Propagates scoring failures and calibration-input errors.
pub fn calibrate_blackbox<D: Detector>(
    detector: &D,
    benign: &[Image],
    tail_percent: f64,
) -> Result<Calibration, DetectError> {
    let benign_scores = score_all(detector, benign)?;
    let threshold = percentile_blackbox(&benign_scores, tail_percent, detector.direction())?;
    // Training accuracy on benign only: 1 - FRR at this threshold.
    let frr = benign_scores.iter().filter(|&&s| threshold.is_attack(s)).count() as f64
        / benign_scores.len() as f64;
    Ok(Calibration {
        threshold,
        train_accuracy: 1.0 - frr,
        benign_scores,
        attack_scores: Vec::new(),
    })
}

/// Convenience: white-box calibrate a detector and wrap it as an ensemble
/// member in one step.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn calibrated_member<D: Detector + 'static>(
    detector: D,
    benign: &[Image],
    attacks: &[Image],
) -> Result<EnsembleMember, DetectError> {
    let calibration = calibrate_whitebox(&detector, benign, attacks)?;
    Ok(EnsembleMember::new(detector, calibration.threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::Direction;

    /// Scores an image by its mean (deterministic, fast).
    struct MeanDetector;

    impl Detector for MeanDetector {
        fn score(&self, image: &Image) -> Result<f64, DetectError> {
            Ok(image.mean_sample())
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "mean".into()
        }
    }

    fn flats(levels: &[f64]) -> Vec<Image> {
        levels
            .iter()
            .map(|&v| Image::filled(2, 2, decamouflage_imaging::Channels::Gray, v))
            .collect()
    }

    #[test]
    fn whitebox_separates_flat_levels() {
        let benign = flats(&[10.0, 20.0, 30.0]);
        let attacks = flats(&[200.0, 210.0]);
        let c = calibrate_whitebox(&MeanDetector, &benign, &attacks).unwrap();
        assert_eq!(c.train_accuracy, 1.0);
        assert!(c.threshold.value() > 30.0 && c.threshold.value() <= 200.0);
        assert_eq!(c.benign_scores.len(), 3);
        assert_eq!(c.attack_scores.len(), 2);
    }

    #[test]
    fn blackbox_uses_percentile_of_benign() {
        let benign = flats(&(1..=100).map(f64::from).collect::<Vec<_>>());
        let c = calibrate_blackbox(&MeanDetector, &benign, 2.0).unwrap();
        assert!(c.attack_scores.is_empty());
        assert!(c.threshold.value() > 97.0);
        assert!(c.train_accuracy >= 0.97);
    }

    #[test]
    fn calibrated_member_votes_correctly() {
        let benign = flats(&[10.0, 20.0]);
        let attacks = flats(&[200.0, 220.0]);
        let member = calibrated_member(MeanDetector, &benign, &attacks).unwrap();
        assert!(!member
            .is_attack(&Image::filled(2, 2, decamouflage_imaging::Channels::Gray, 15.0))
            .unwrap());
        assert!(member
            .is_attack(&Image::filled(2, 2, decamouflage_imaging::Channels::Gray, 210.0))
            .unwrap());
        assert_eq!(member.name(), "mean");
    }

    #[test]
    fn empty_sets_are_rejected() {
        assert!(calibrate_whitebox(&MeanDetector, &[], &flats(&[1.0])).is_err());
        assert!(calibrate_blackbox(&MeanDetector, &[], 1.0).is_err());
    }
}
