//! Framework configuration and paper-reference constants.

use decamouflage_imaging::Size;

/// Fixed input sizes of popular CNN models (the paper's Table 1). These are
/// the downscale targets an attacker aims at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelInputSize {
    /// Model family name.
    pub model: &'static str,
    /// Expected input size in pixels.
    pub input: Size,
}

impl ModelInputSize {
    /// The paper's Table 1 catalogue.
    pub const TABLE: [ModelInputSize; 5] = [
        ModelInputSize { model: "LeNet-5", input: Size::new(32, 32) },
        ModelInputSize { model: "VGG, ResNet, GoogleNet, MobileNet", input: Size::new(224, 224) },
        ModelInputSize { model: "AlexNet", input: Size::new(227, 227) },
        ModelInputSize { model: "Inception V3/V4", input: Size::new(299, 299) },
        ModelInputSize { model: "DAVE-2 Self-Driving", input: Size::new(200, 66) },
    ];
}

/// Threshold values reported by the paper for its datasets, kept for
/// side-by-side comparison in `EXPERIMENTS.md`. They are *not* used by this
/// reproduction's detectors — thresholds are recalibrated on the synthetic
/// profiles, exactly as the paper's own procedure prescribes for a new
/// dataset.
pub mod paper {
    /// White-box scaling-detection MSE threshold (NeurIPS-2017 training set).
    pub const SCALING_MSE_THRESHOLD: f64 = 1714.96;
    /// White-box scaling-detection SSIM threshold.
    pub const SCALING_SSIM_THRESHOLD: f64 = 0.61;
    /// White-box filtering-detection MSE threshold.
    pub const FILTERING_MSE_THRESHOLD: f64 = 5682.79;
    /// White-box filtering-detection SSIM threshold.
    pub const FILTERING_SSIM_THRESHOLD: f64 = 0.38;
    /// The universal steganalysis threshold (`CSP_T`).
    pub const CSP_THRESHOLD: f64 = 2.0;

    /// Paper-reported run-time overheads (milliseconds, i5-7500) for the
    /// run-time table: `(method, metric, mean_ms, std_ms)`.
    pub const RUNTIME_MS: [(&str, &str, f64, f64); 5] = [
        ("scaling", "mse", 11.0, 5.0),
        ("scaling", "ssim", 137.0, 4.0),
        ("filtering", "mse", 11.0, 3.0),
        ("filtering", "ssim", 174.0, 6.0),
        ("steganalysis", "csp", 3.0, 1.0),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        assert_eq!(ModelInputSize::TABLE.len(), 5);
        assert_eq!(ModelInputSize::TABLE[0].input, Size::new(32, 32));
        assert_eq!(ModelInputSize::TABLE[1].input, Size::new(224, 224));
        assert_eq!(ModelInputSize::TABLE[4].input, Size::new(200, 66));
        assert!(ModelInputSize::TABLE[4].model.contains("DAVE-2"));
    }

    #[test]
    fn paper_constants_are_plausible() {
        assert!(paper::SCALING_MSE_THRESHOLD > 0.0);
        assert!(paper::SCALING_SSIM_THRESHOLD > 0.0 && paper::SCALING_SSIM_THRESHOLD < 1.0);
        assert!(paper::FILTERING_SSIM_THRESHOLD < paper::SCALING_SSIM_THRESHOLD);
        assert_eq!(paper::CSP_THRESHOLD, 2.0);
        assert_eq!(paper::RUNTIME_MS.len(), 5);
    }
}
