//! Prevention baselines — the *competing* defenses the paper argues
//! against (§1, §7; Quiring et al., USENIX Security 2020).
//!
//! Two mechanisms are implemented so the repro can quantify the paper's
//! criticism:
//!
//! * [`reconstruct_sampled_pixels`] — the *image reconstruction* defense:
//!   every pixel the scaler actually reads is replaced by the median of its
//!   non-sampled neighbours, destroying any embedded target before scaling.
//!   Effective, but it rewrites pixels of *every* image, degrading benign
//!   inputs too (the quality cost the paper cites as motivation for a
//!   detection-only approach).
//! * *Robust scaling* — simply scaling with
//!   [`decamouflage_imaging::scale::ScaleAlgorithm::Area`], which reads
//!   every source pixel; covered by the attack crate's verification and
//!   the `ablate-robust-scaler` experiment.

use crate::DetectError;
use decamouflage_imaging::scale::Scaler;
use decamouflage_imaging::Image;

/// Applies the image-reconstruction prevention defense: pixels at sampled
/// (row, column) intersections are replaced by the median of the
/// *non-sampled* pixels in a `(2 radius + 1)²` neighbourhood.
///
/// Returns the sanitised image. Scaling the sanitised image afterwards is
/// safe against the image-scaling attack (the attacker's payload pixels
/// are gone), at the cost of altering benign content at the same
/// positions.
///
/// # Errors
///
/// Returns [`DetectError::InvalidConfig`] if `image` does not match the
/// scaler's source size or `radius` is zero.
pub fn reconstruct_sampled_pixels(
    image: &Image,
    scaler: &Scaler,
    radius: usize,
) -> Result<Image, DetectError> {
    if image.size() != scaler.src_size() {
        return Err(DetectError::InvalidConfig {
            message: format!(
                "image {} does not match scaler source {}",
                image.size(),
                scaler.src_size()
            ),
        });
    }
    if radius == 0 {
        return Err(DetectError::InvalidConfig {
            message: "reconstruction radius must be >= 1".into(),
        });
    }

    // Sampled rows/columns: the positions the scaler reads.
    let mut col_sampled = vec![false; image.width()];
    for &j in &scaler.horizontal_coeffs().touched_sources() {
        col_sampled[j] = true;
    }
    let mut row_sampled = vec![false; image.height()];
    for &j in &scaler.vertical_coeffs().touched_sources() {
        row_sampled[j] = true;
    }

    let is_sampled = |x: usize, y: usize| row_sampled[y] && col_sampled[x];
    let mut out = image.clone();
    let mut neighbourhood: Vec<f64> = Vec::with_capacity((2 * radius + 1).pow(2));
    for y in 0..image.height() {
        for x in 0..image.width() {
            if !is_sampled(x, y) {
                continue;
            }
            for c in 0..image.channel_count() {
                neighbourhood.clear();
                for dy in -(radius as isize)..=radius as isize {
                    for dx in -(radius as isize)..=radius as isize {
                        let nx = x as isize + dx;
                        let ny = y as isize + dy;
                        if nx < 0
                            || ny < 0
                            || nx >= image.width() as isize
                            || ny >= image.height() as isize
                        {
                            continue;
                        }
                        let (nx, ny) = (nx as usize, ny as usize);
                        if !is_sampled(nx, ny) {
                            neighbourhood.push(image.get(nx, ny, c));
                        }
                    }
                }
                if neighbourhood.is_empty() {
                    continue; // nothing trustworthy nearby; keep the pixel
                }
                neighbourhood.sort_by(|a, b| a.partial_cmp(b).expect("image samples are not NaN"));
                let median = neighbourhood[neighbourhood.len() / 2];
                out.set(x, y, c, median);
            }
        }
    }
    Ok(out)
}

/// Quality cost of a prevention pass on a benign image: the MSE between
/// the original and the sanitised image (the degradation the paper's
/// detection-only approach avoids).
///
/// # Errors
///
/// Propagates errors from [`reconstruct_sampled_pixels`].
pub fn prevention_quality_cost(
    image: &Image,
    scaler: &Scaler,
    radius: usize,
) -> Result<f64, DetectError> {
    let sanitised = reconstruct_sampled_pixels(image, scaler, radius)?;
    Ok(decamouflage_metrics::mse(image, &sanitised)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_attack::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::ScaleAlgorithm;
    use decamouflage_imaging::Size;

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (128.0 + 50.0 * ((x as f64) * 0.07).sin() + 45.0 * ((y as f64) * 0.06).cos()).round()
        })
    }

    fn busy_target(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| ((x * 83 + y * 47) % 256) as f64)
    }

    #[test]
    fn reconstruction_neutralises_the_attack() {
        let scaler =
            Scaler::new(Size::square(64), Size::square(16), ScaleAlgorithm::Bilinear).unwrap();
        let original = smooth(64);
        let target = busy_target(16);
        let attack =
            craft_attack(&original, &target, &scaler, &AttackConfig::default()).unwrap().image;

        // Before prevention: downscale hits the target.
        let before = scaler.apply(&attack).unwrap();
        let dev_before: f64 = before
            .planes()
            .iter()
            .flatten()
            .zip(target.planes().iter().flatten())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(dev_before <= 4.0, "attack should work before prevention");

        // After prevention: the payload is destroyed.
        let sanitised = reconstruct_sampled_pixels(&attack, &scaler, 2).unwrap();
        let after = scaler.apply(&sanitised).unwrap();
        let mse_after: f64 = after
            .planes()
            .iter()
            .flatten()
            .zip(target.planes().iter().flatten())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / (target.plane_len() * target.channel_count()) as f64;
        assert!(mse_after > 500.0, "downscale still close to the attack target (MSE {mse_after})");

        // And the sanitised downscale resembles the benign downscale.
        let benign_down = scaler.apply(&original).unwrap();
        let mse_vs_benign: f64 = after
            .planes()
            .iter()
            .flatten()
            .zip(benign_down.planes().iter().flatten())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / (benign_down.plane_len() * benign_down.channel_count()) as f64;
        assert!(mse_vs_benign < mse_after, "sanitised output should look benign");
    }

    #[test]
    fn prevention_degrades_benign_images() {
        // The paper's argument: prevention is not free — benign inputs are
        // rewritten too.
        let scaler =
            Scaler::new(Size::square(64), Size::square(16), ScaleAlgorithm::Bilinear).unwrap();
        let benign = Image::from_fn_gray(64, 64, |x, y| ((x * 17 + y * 29) % 251) as f64);
        let cost = prevention_quality_cost(&benign, &scaler, 2).unwrap();
        assert!(cost > 0.0, "reconstruction must alter sampled pixels");
    }

    #[test]
    fn smooth_benign_images_cost_little() {
        let scaler =
            Scaler::new(Size::square(64), Size::square(16), ScaleAlgorithm::Bilinear).unwrap();
        let benign = smooth(64);
        let cost = prevention_quality_cost(&benign, &scaler, 2).unwrap();
        // Smooth content: the median of neighbours is close to the pixel.
        assert!(cost < 50.0, "cost {cost}");
    }

    #[test]
    fn validates_inputs() {
        let scaler =
            Scaler::new(Size::square(64), Size::square(16), ScaleAlgorithm::Bilinear).unwrap();
        let wrong_size = smooth(32);
        assert!(reconstruct_sampled_pixels(&wrong_size, &scaler, 2).is_err());
        assert!(reconstruct_sampled_pixels(&smooth(64), &scaler, 0).is_err());
    }

    #[test]
    fn untouched_pixels_are_preserved() {
        let scaler =
            Scaler::new(Size::square(64), Size::square(16), ScaleAlgorithm::Nearest).unwrap();
        let img = smooth(64);
        let out = reconstruct_sampled_pixels(&img, &scaler, 1).unwrap();
        // Nearest at factor 4 samples 16 rows x 16 cols: all other pixels
        // must be bit-identical.
        let mut col_sampled = vec![false; 64];
        for &j in &scaler.horizontal_coeffs().touched_sources() {
            col_sampled[j] = true;
        }
        let mut row_sampled = vec![false; 64];
        for &j in &scaler.vertical_coeffs().touched_sources() {
            row_sampled[j] = true;
        }
        for y in 0..64 {
            for x in 0..64 {
                if !(row_sampled[y] && col_sampled[x]) {
                    assert_eq!(out.get(x, y, 0), img.get(x, y, 0), "({x},{y}) changed");
                }
            }
        }
    }
}
