use crate::threshold::Direction;
use crate::DetectError;
use decamouflage_imaging::Image;
use std::fmt;

/// The similarity metric a spatial-domain detector compares with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Mean squared error — large values indicate an attack.
    Mse,
    /// Structural similarity — small values indicate an attack.
    Ssim,
}

impl MetricKind {
    /// The decision direction this metric implies.
    pub const fn direction(&self) -> Direction {
        match self {
            MetricKind::Mse => Direction::AboveIsAttack,
            MetricKind::Ssim => Direction::BelowIsAttack,
        }
    }

    /// Stable lowercase name used in reports.
    pub const fn name(&self) -> &'static str {
        match self {
            MetricKind::Mse => "mse",
            MetricKind::Ssim => "ssim",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scoring detector: maps an input image to a scalar whose position
/// relative to a calibrated [`crate::Threshold`] decides attack vs benign.
///
/// Implementations must be [`Send`] + [`Sync`] so corpora can be scored in
/// parallel.
pub trait Detector: Send + Sync {
    /// Computes the detection score of an image.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError`] if an underlying imaging or metric
    /// computation fails (e.g. the input is smaller than the detector's
    /// target size in a way the scaler rejects).
    fn score(&self, image: &Image) -> Result<f64, DetectError>;

    /// Which side of a threshold indicates an attack for this detector.
    fn direction(&self) -> Direction;

    /// Stable human-readable name, e.g. `"scaling/mse"`.
    fn name(&self) -> String;
}

impl<D: Detector + ?Sized> Detector for &D {
    fn score(&self, image: &Image) -> Result<f64, DetectError> {
        (**self).score(image)
    }

    fn direction(&self) -> Direction {
        (**self).direction()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<D: Detector + ?Sized> Detector for Box<D> {
    fn score(&self, image: &Image) -> Result<f64, DetectError> {
        (**self).score(image)
    }

    fn direction(&self) -> Direction {
        (**self).direction()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstDetector(f64);

    impl Detector for ConstDetector {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Ok(self.0)
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "const".into()
        }
    }

    #[test]
    fn metric_kind_directions() {
        assert_eq!(MetricKind::Mse.direction(), Direction::AboveIsAttack);
        assert_eq!(MetricKind::Ssim.direction(), Direction::BelowIsAttack);
        assert_eq!(MetricKind::Mse.to_string(), "mse");
        assert_eq!(MetricKind::Ssim.name(), "ssim");
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = ConstDetector(7.0);
        let img = Image::zeros(2, 2, decamouflage_imaging::Channels::Gray);
        let by_ref: &dyn Detector = &d;
        assert_eq!(by_ref.score(&img).unwrap(), 7.0);
        assert_eq!(by_ref.name(), "const");
        let boxed: Box<dyn Detector> = Box::new(ConstDetector(9.0));
        assert_eq!(boxed.score(&img).unwrap(), 9.0);
        assert_eq!((&boxed).direction(), Direction::AboveIsAttack);
    }
}
