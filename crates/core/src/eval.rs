//! Detection-quality evaluation: the five measures reported in every table
//! of the paper (accuracy, precision, recall, FAR, FRR).

use crate::engine::{BatchCounts, BatchOutcome, DetectionEngine, EngineCorpus};
use crate::method::MethodId;
use crate::persist::ThresholdSet;
use crate::stream::{ImageSource, StreamConfig};
use crate::threshold::Threshold;
use crate::DetectError;

/// Confusion-matrix counts with the paper's orientation: *positive* =
/// attack image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// Attack images classified as attacks.
    pub true_positives: usize,
    /// Benign images classified as attacks.
    pub false_positives: usize,
    /// Benign images classified as benign.
    pub true_negatives: usize,
    /// Attack images classified as benign.
    pub false_negatives: usize,
}

impl ConfusionCounts {
    /// Accumulates one decision.
    pub fn record(&mut self, is_attack_truth: bool, flagged_as_attack: bool) {
        match (is_attack_truth, flagged_as_attack) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Total number of recorded decisions.
    pub const fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Derives the five quality measures.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidCalibration`] when no decisions were
    /// recorded.
    pub fn metrics(&self) -> Result<EvalMetrics, DetectError> {
        let total = self.total();
        if total == 0 {
            return Err(DetectError::InvalidCalibration {
                message: "no decisions recorded".into(),
            });
        }
        let tp = self.true_positives as f64;
        let fp = self.false_positives as f64;
        let tn = self.true_negatives as f64;
        let fn_ = self.false_negatives as f64;
        let ratio = |num: f64, den: f64| if den == 0.0 { 0.0 } else { num / den };
        Ok(EvalMetrics {
            accuracy: (tp + tn) / total as f64,
            precision: ratio(tp, tp + fp),
            recall: ratio(tp, tp + fn_),
            far: ratio(fn_, tp + fn_),
            frr: ratio(fp, fp + tn),
        })
    }
}

/// The paper's five detection-quality measures, each in `[0, 1]`.
///
/// * `FAR` (false acceptance rate) — fraction of **attack** images that
///   were accepted as benign (a security failure),
/// * `FRR` (false rejection rate) — fraction of **benign** images that were
///   rejected as attacks (a reliability cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Fraction of correctly classified images.
    pub accuracy: f64,
    /// Of the images flagged as attacks, the fraction that really were.
    pub precision: f64,
    /// Fraction of attack images that were flagged.
    pub recall: f64,
    /// False acceptance rate (missed attacks / all attacks).
    pub far: f64,
    /// False rejection rate (flagged benign / all benign).
    pub frr: f64,
}

impl EvalMetrics {
    /// Formats the metrics as the percentage row used by the report tables,
    /// e.g. `"99.9% | 100.0% | 99.9% | 0.0% | 0.1%"`.
    pub fn as_percent_row(&self) -> String {
        format!(
            "{:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}%",
            self.accuracy * 100.0,
            self.precision * 100.0,
            self.recall * 100.0,
            self.far * 100.0,
            self.frr * 100.0
        )
    }
}

/// Evaluates a batch of `(truth, decision)` pairs.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] for an empty batch.
pub fn evaluate_decisions(
    decisions: impl IntoIterator<Item = (bool, bool)>,
) -> Result<EvalMetrics, DetectError> {
    let mut counts = ConfusionCounts::default();
    for (truth, flagged) in decisions {
        counts.record(truth, flagged);
    }
    counts.metrics()
}

/// Evaluates a scored engine corpus per method: one `(id, metrics)` entry
/// for every threshold in `thresholds`, derived from the corpus's score
/// columns. Registry-driven — a newly registered method shows up here as
/// soon as a threshold exists for it.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] for an empty corpus.
pub fn evaluate_engine_corpus(
    corpus: &EngineCorpus,
    thresholds: &ThresholdSet,
) -> Result<Vec<(MethodId, EvalMetrics)>, DetectError> {
    thresholds
        .iter()
        .map(|(id, t)| {
            let decisions = corpus
                .benign
                .iter()
                .map(|s| (false, t.is_attack(s.get(id))))
                .chain(corpus.attack.iter().map(|s| (true, t.is_attack(s.get(id)))));
            evaluate_decisions(decisions).map(|m| (id, m))
        })
        .collect()
}

/// Evaluates a resilient batch outcome per method, skipping quarantined
/// images: only the slots that scored successfully contribute decisions, so
/// one poisoned upload cannot abort — or skew — the whole evaluation. Check
/// [`BatchOutcome::counts`] alongside the metrics to see how many images
/// were excluded.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] when every image of the
/// batch was quarantined (no decisions remain).
pub fn evaluate_batch_outcome(
    outcome: &BatchOutcome,
    thresholds: &ThresholdSet,
) -> Result<Vec<(MethodId, EvalMetrics)>, DetectError> {
    thresholds
        .iter()
        .map(|(id, t)| {
            // Borrow the surviving score vectors directly rather than
            // collecting a column per method.
            let decisions = outcome
                .benign
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .map(|s| (false, t.is_attack(s.get(id))))
                .chain(
                    outcome
                        .attack
                        .iter()
                        .filter_map(|r| r.as_ref().ok())
                        .map(|s| (true, t.is_attack(s.get(id)))),
                );
            evaluate_decisions(decisions).map(|m| (id, m))
        })
        .collect()
}

/// Streaming per-method evaluation over arbitrary [`ImageSource`]s with
/// bounded memory: both streams are scored chunk by chunk
/// ([`DetectionEngine::score_stream`]) and every surviving score feeds the
/// per-threshold confusion counts incrementally — no score column is ever
/// materialised. Quarantined positions are skipped and tallied in the
/// returned [`BatchCounts`], mirroring [`evaluate_batch_outcome`].
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] when every streamed image
/// was quarantined (no decisions remain).
pub fn evaluate_engine_sources(
    engine: &DetectionEngine,
    thresholds: &ThresholdSet,
    benign: &mut dyn ImageSource,
    attacks: &mut dyn ImageSource,
    config: &StreamConfig,
) -> Result<(Vec<(MethodId, EvalMetrics)>, BatchCounts), DetectError> {
    let entries: Vec<(MethodId, Threshold)> = thresholds.iter().collect();
    let mut confusion = vec![ConfusionCounts::default(); entries.len()];
    let mut counts = BatchCounts::default();
    let mut tally = |source: &mut dyn ImageSource, truth: bool, quarantine_slot: &mut usize| {
        engine.score_stream(source, config, |_, result| match result {
            Ok(scores) => {
                counts.scored += 1;
                for ((id, t), c) in entries.iter().zip(confusion.iter_mut()) {
                    c.record(truth, t.is_attack(scores.get(*id)));
                }
            }
            Err(_) => *quarantine_slot += 1,
        });
    };
    let mut benign_quarantined = 0;
    let mut attack_quarantined = 0;
    tally(benign, false, &mut benign_quarantined);
    tally(attacks, true, &mut attack_quarantined);
    counts.benign_quarantined = benign_quarantined;
    counts.attack_quarantined = attack_quarantined;
    counts.quarantined = benign_quarantined + attack_quarantined;
    let rows = entries
        .iter()
        .zip(confusion.iter())
        .map(|((id, _), c)| c.metrics().map(|m| (*id, m)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((rows, counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = evaluate_decisions([(true, true), (false, false), (true, true)]).unwrap();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.far, 0.0);
        assert_eq!(m.frr, 0.0);
    }

    #[test]
    fn always_benign_classifier() {
        // 2 attacks + 2 benign, everything accepted.
        let m = evaluate_decisions([(true, false), (true, false), (false, false), (false, false)])
            .unwrap();
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.far, 1.0);
        assert_eq!(m.frr, 0.0);
    }

    #[test]
    fn always_attack_classifier() {
        let m = evaluate_decisions([(true, true), (false, true)]).unwrap();
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.far, 0.0);
        assert_eq!(m.frr, 1.0);
        assert_eq!(m.precision, 0.5);
    }

    #[test]
    fn mixed_counts() {
        let mut c = ConfusionCounts::default();
        // 8 attacks: 7 caught; 12 benign: 11 accepted.
        for _ in 0..7 {
            c.record(true, true);
        }
        c.record(true, false);
        for _ in 0..11 {
            c.record(false, false);
        }
        c.record(false, true);
        assert_eq!(c.total(), 20);
        let m = c.metrics().unwrap();
        assert!((m.accuracy - 18.0 / 20.0).abs() < 1e-12);
        assert!((m.far - 1.0 / 8.0).abs() < 1e-12);
        assert!((m.frr - 1.0 / 12.0).abs() < 1e-12);
        assert!((m.precision - 7.0 / 8.0).abs() < 1e-12);
        assert!((m.recall - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert!(evaluate_decisions(std::iter::empty()).is_err());
        assert!(ConfusionCounts::default().metrics().is_err());
    }

    #[test]
    fn percent_row_formatting() {
        let m = evaluate_decisions([(true, true), (false, false)]).unwrap();
        assert_eq!(m.as_percent_row(), "100.0% | 100.0% | 100.0% | 0.0% | 0.0%");
    }

    #[test]
    fn engine_corpus_evaluates_per_method() {
        use crate::method::ScoreVector;
        use crate::threshold::{Direction, Threshold};
        // Two methods thresholded; scores hand-built so scaling/mse is
        // perfect and csp misses one attack.
        let mut benign_scores = ScoreVector::splat(0.0);
        benign_scores.set(MethodId::Csp, 1.0);
        let mut caught = ScoreVector::splat(1000.0);
        caught.set(MethodId::Csp, 3.0);
        let mut missed = ScoreVector::splat(1000.0);
        missed.set(MethodId::Csp, 1.0);
        let corpus = EngineCorpus {
            benign: vec![benign_scores.clone(), benign_scores],
            attack: vec![caught, missed],
        };
        let mut thresholds = ThresholdSet::new();
        thresholds.insert(MethodId::ScalingMse, Threshold::new(500.0, Direction::AboveIsAttack));
        thresholds.insert(MethodId::Csp, Threshold::new(2.0, Direction::AboveIsAttack));
        let rows = evaluate_engine_corpus(&corpus, &thresholds).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, MethodId::ScalingMse);
        assert_eq!(rows[0].1.accuracy, 1.0);
        assert_eq!(rows[1].0, MethodId::Csp);
        assert_eq!(rows[1].1.accuracy, 0.75);
        assert_eq!(rows[1].1.far, 0.5);

        let empty = EngineCorpus { benign: vec![], attack: vec![] };
        assert!(evaluate_engine_corpus(&empty, &thresholds).is_err());
    }

    #[test]
    fn batch_outcome_evaluation_skips_quarantined_slots() {
        use crate::error::{ScoreError, ScoreFault};
        use crate::method::ScoreVector;
        use crate::threshold::{Direction, Threshold};

        let benign = ScoreVector::splat(0.0);
        let attack = ScoreVector::splat(1000.0);
        let quarantine = || Err(ScoreError::new(ScoreFault::NonFinitePixel { sample: 0 }));
        // One of three benign and one of two attack slots quarantined; the
        // surviving four classify perfectly.
        let outcome = BatchOutcome {
            benign: vec![Ok(benign.clone()), quarantine(), Ok(benign)],
            attack: vec![Ok(attack.clone()), quarantine()],
        };
        let mut thresholds = ThresholdSet::new();
        thresholds.insert(MethodId::ScalingMse, Threshold::new(500.0, Direction::AboveIsAttack));
        let rows = evaluate_batch_outcome(&outcome, &thresholds).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.accuracy, 1.0);
        assert_eq!(outcome.counts().quarantined, 2);

        // Fully quarantined batches cannot be evaluated.
        let empty = BatchOutcome { benign: vec![quarantine()], attack: vec![quarantine()] };
        assert!(evaluate_batch_outcome(&empty, &thresholds).is_err());
    }

    #[test]
    fn source_evaluation_matches_the_eager_batch_path() {
        use crate::stream::SliceSource;
        use crate::threshold::{Direction, Threshold};
        use decamouflage_imaging::{Image, Size};

        let benign: Vec<Image> = (0..3)
            .map(|i| {
                Image::from_fn_gray(16, 16, move |x, y| {
                    (120.0 + 40.0 * ((x + y + i) as f64 * 0.06).sin()).round()
                })
            })
            .collect();
        let attack: Vec<Image> = (0..3)
            .map(|i| {
                Image::from_fn_gray(16, 16, move |x, y| ((x * 13 + y * 7 + i * 3) % 251) as f64)
            })
            .collect();
        let mut thresholds = ThresholdSet::new();
        thresholds.insert(MethodId::ScalingMse, Threshold::new(10.0, Direction::AboveIsAttack));
        thresholds.insert(MethodId::Csp, Threshold::new(0.5, Direction::AboveIsAttack));

        let engine = DetectionEngine::new(Size::square(8));
        let config = StreamConfig::default().with_chunk_size(2).with_threads(2);
        let (rows, counts) = evaluate_engine_sources(
            &engine,
            &thresholds,
            &mut SliceSource::new(&benign),
            &mut SliceSource::new(&attack),
            &config,
        )
        .unwrap();

        let outcome = engine.score_corpus_resilient(
            |i| benign[i as usize].clone(),
            |i| attack[i as usize].clone(),
            benign.len(),
            2,
        );
        assert_eq!(rows, evaluate_batch_outcome(&outcome, &thresholds).unwrap());
        assert_eq!(counts.scored, 6);
        assert_eq!(counts.quarantined, 0);
    }

    #[test]
    fn source_evaluation_tallies_quarantined_slots_per_class() {
        use crate::faults::{FaultKind, FaultPlan};
        use crate::stream::SliceSource;
        use crate::threshold::{Direction, Threshold};
        use decamouflage_imaging::{Image, Size};

        let images: Vec<Image> = (0..3)
            .map(|i| {
                Image::from_fn_gray(16, 16, move |x, y| {
                    (120.0 + 40.0 * ((x + y + i) as f64 * 0.06).sin()).round()
                })
            })
            .collect();
        let mut thresholds = ThresholdSet::new();
        thresholds.insert(MethodId::ScalingMse, Threshold::new(10.0, Direction::AboveIsAttack));

        // Stream indices restart per source, so one armed slot quarantines
        // position 1 of the benign stream *and* position 1 of the attack one.
        let engine = DetectionEngine::new(Size::square(8))
            .with_fault_plan(FaultPlan::new().with(1, FaultKind::Error));
        let config = StreamConfig::default().with_chunk_size(2).with_threads(2);
        let (rows, counts) = evaluate_engine_sources(
            &engine,
            &thresholds,
            &mut SliceSource::new(&images),
            &mut SliceSource::new(&images),
            &config,
        )
        .unwrap();

        assert_eq!(rows.len(), 1);
        assert_eq!(counts.scored, 4);
        assert_eq!(counts.quarantined, 2);
        assert_eq!(counts.benign_quarantined, 1);
        assert_eq!(counts.attack_quarantined, 1);
    }

    #[test]
    fn degenerate_single_class_batches() {
        // Only benign images: precision/recall/FAR degenerate to 0.
        let m = evaluate_decisions([(false, false), (false, false)]).unwrap();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.far, 0.0);
    }
}
