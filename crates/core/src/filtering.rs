//! The filtering-detection method (paper §3.2, Algorithm 2).
//!
//! Apply a minimum filter to the input and compare with the input. The
//! target pixels embedded by an image-scaling attack are local outliers in
//! an otherwise smooth neighbourhood, so the filter changes an attack image
//! far more than a benign one.

use crate::detector::{Detector, MetricKind};
use crate::threshold::Direction;
use crate::DetectError;
use decamouflage_imaging::filter::{rank_filter, RankKind};
use decamouflage_imaging::Image;
use decamouflage_metrics::{mse, ssim, SsimConfig};

/// Filtering-detection scorer: `metric(I, rank_filter(I))`.
#[derive(Debug, Clone)]
pub struct FilteringDetector {
    window: usize,
    kind: RankKind,
    metric: MetricKind,
    ssim_config: SsimConfig,
}

impl FilteringDetector {
    /// Creates the paper's configuration: a 2x2 **minimum** filter compared
    /// with `metric`.
    pub fn new(metric: MetricKind) -> Self {
        Self { window: 2, kind: RankKind::Minimum, metric, ssim_config: SsimConfig::default() }
    }

    /// Overrides the filter window side (default 2).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be >= 1");
        self.window = window;
        self
    }

    /// Overrides the rank kind (default [`RankKind::Minimum`]; the paper
    /// shows minimum reveals the target best — median/maximum are exposed
    /// for the comparison figure).
    pub fn with_rank(mut self, kind: RankKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the SSIM parameters (ignored for the MSE metric).
    pub fn with_ssim_config(mut self, config: SsimConfig) -> Self {
        self.ssim_config = config;
        self
    }

    /// Filter window side.
    pub const fn window(&self) -> usize {
        self.window
    }

    /// Rank statistic used.
    pub const fn rank(&self) -> RankKind {
        self.kind
    }

    /// The comparison metric.
    pub const fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The filtered image `F` — exposed for visual inspection (the paper's
    /// filter-comparison figure).
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Imaging`] for an invalid window.
    pub fn filtered(&self, image: &Image) -> Result<Image, DetectError> {
        Ok(rank_filter(image, self.window, self.kind)?)
    }
}

impl Detector for FilteringDetector {
    fn score(&self, image: &Image) -> Result<f64, DetectError> {
        let filtered = self.filtered(image)?;
        let value = match self.metric {
            MetricKind::Mse => mse(image, &filtered)?,
            MetricKind::Ssim => ssim(image, &filtered, &self.ssim_config)?,
        };
        Ok(value)
    }

    fn direction(&self) -> Direction {
        self.metric.direction()
    }

    fn name(&self) -> String {
        format!("filtering/{}", self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_attack::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::{ScaleAlgorithm, Scaler};
    use decamouflage_imaging::Size;

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (128.0 + 55.0 * ((x as f64) * 0.05).sin() + 45.0 * ((y as f64) * 0.04).cos()).round()
        })
    }

    fn attack_image(src: usize, dst: usize) -> Image {
        let scaler =
            Scaler::new(Size::square(src), Size::square(dst), ScaleAlgorithm::Bilinear).unwrap();
        let target = Image::from_fn_gray(dst, dst, |x, y| ((x * 83 + y * 47) % 256) as f64);
        craft_attack(&smooth(src), &target, &scaler, &AttackConfig::default()).unwrap().image
    }

    #[test]
    fn attack_images_score_higher_mse() {
        let det = FilteringDetector::new(MetricKind::Mse);
        let benign = det.score(&smooth(64)).unwrap();
        let attack = det.score(&attack_image(64, 16)).unwrap();
        assert!(attack > 2.0 * benign, "benign {benign}, attack {attack}");
    }

    #[test]
    fn attack_images_score_lower_ssim() {
        let det = FilteringDetector::new(MetricKind::Ssim);
        let benign = det.score(&smooth(64)).unwrap();
        let attack = det.score(&attack_image(64, 16)).unwrap();
        assert!(attack < benign, "benign {benign}, attack {attack}");
    }

    #[test]
    fn directions_and_names() {
        assert_eq!(FilteringDetector::new(MetricKind::Mse).direction(), Direction::AboveIsAttack);
        assert_eq!(FilteringDetector::new(MetricKind::Ssim).direction(), Direction::BelowIsAttack);
        assert_eq!(FilteringDetector::new(MetricKind::Mse).name(), "filtering/mse");
    }

    #[test]
    fn default_is_two_by_two_minimum() {
        let det = FilteringDetector::new(MetricKind::Mse);
        assert_eq!(det.window(), 2);
        assert_eq!(det.rank(), RankKind::Minimum);
        assert_eq!(det.metric(), MetricKind::Mse);
    }

    #[test]
    fn builders_override_settings() {
        let det = FilteringDetector::new(MetricKind::Ssim)
            .with_window(3)
            .with_rank(RankKind::Median)
            .with_ssim_config(SsimConfig { radius: 3, ..SsimConfig::default() });
        assert_eq!(det.window(), 3);
        assert_eq!(det.rank(), RankKind::Median);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = FilteringDetector::new(MetricKind::Mse).with_window(0);
    }

    #[test]
    fn every_rank_kind_separates_attacks_from_benign() {
        // The paper picks the minimum filter for its visual target reveal;
        // quantitatively all three rank filters must put attack images
        // clearly above benign ones under MSE.
        let benign = smooth(64);
        let attack = attack_image(64, 16);
        for kind in [RankKind::Minimum, RankKind::Median, RankKind::Maximum] {
            let det = FilteringDetector::new(MetricKind::Mse).with_rank(kind);
            let ratio = det.score(&attack).unwrap() / det.score(&benign).unwrap().max(1e-9);
            assert!(ratio > 2.0, "{kind:?} ratio only {ratio}");
        }
    }

    #[test]
    fn filtered_image_exposed() {
        let det = FilteringDetector::new(MetricKind::Mse);
        let img = smooth(16);
        let f = det.filtered(&img).unwrap();
        assert_eq!(f.size(), img.size());
    }
}
