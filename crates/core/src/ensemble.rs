//! Majority-vote ensemble of calibrated detectors (the full *Decamouflage*
//! system of the paper's Figure 6 and Table "ensemble").

use crate::detector::Detector;
use crate::threshold::Threshold;
use crate::DetectError;
use decamouflage_imaging::Image;

/// A detector paired with its calibrated threshold, as a named ensemble
/// member.
pub struct EnsembleMember {
    name: String,
    detector: Box<dyn Detector>,
    threshold: Threshold,
}

impl EnsembleMember {
    /// Wraps a detector and its threshold.
    pub fn new(detector: impl Detector + 'static, threshold: Threshold) -> Self {
        Self { name: detector.name(), detector: Box::new(detector), threshold }
    }

    /// The member's detector name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member's calibrated threshold.
    pub const fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// Scores and classifies one image.
    ///
    /// # Errors
    ///
    /// Propagates the detector's [`DetectError`].
    pub fn is_attack(&self, image: &Image) -> Result<bool, DetectError> {
        Ok(self.threshold.is_attack(self.detector.score(image)?))
    }
}

impl std::fmt::Debug for EnsembleMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleMember")
            .field("name", &self.name)
            .field("threshold", &self.threshold)
            .finish()
    }
}

/// Per-member votes plus the majority decision for one image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleDecision {
    /// `(member name, voted attack?)` in member order.
    pub votes: Vec<(String, bool)>,
    /// Majority verdict (strictly more than half the members).
    pub is_attack: bool,
}

/// Majority-vote ensemble.
///
/// The paper combines the three detection methods so that an adaptive
/// attacker must defeat a majority of them *simultaneously*; with the
/// default three members, two votes decide.
#[derive(Debug, Default)]
pub struct Ensemble {
    members: Vec<EnsembleMember>,
}

impl Ensemble {
    /// Creates an empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a calibrated member (builder style).
    #[must_use]
    pub fn with_member(mut self, detector: impl Detector + 'static, threshold: Threshold) -> Self {
        self.members.push(EnsembleMember::new(detector, threshold));
        self
    }

    /// Adds a calibrated member.
    pub fn push(&mut self, member: EnsembleMember) {
        self.members.push(member);
    }

    /// The members, in insertion order.
    pub fn members(&self) -> &[EnsembleMember] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Classifies an image by strict majority vote.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for an empty ensemble and
    /// propagates the first member failure.
    pub fn decide(&self, image: &Image) -> Result<EnsembleDecision, DetectError> {
        if self.members.is_empty() {
            return Err(DetectError::InvalidConfig { message: "ensemble has no members".into() });
        }
        let mut votes = Vec::with_capacity(self.members.len());
        let mut attack_votes = 0usize;
        for member in &self.members {
            let vote = member.is_attack(image)?;
            attack_votes += usize::from(vote);
            votes.push((member.name.clone(), vote));
        }
        Ok(EnsembleDecision { votes, is_attack: 2 * attack_votes > self.members.len() })
    }

    /// Convenience: the majority verdict only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ensemble::decide`].
    pub fn is_attack(&self, image: &Image) -> Result<bool, DetectError> {
        Ok(self.decide(image)?.is_attack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::Direction;

    struct FixedScore(f64, &'static str);

    impl Detector for FixedScore {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Ok(self.0)
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            self.1.into()
        }
    }

    struct FailingDetector;

    impl Detector for FailingDetector {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Err(DetectError::InvalidConfig { message: "boom".into() })
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "failing".into()
        }
    }

    fn img() -> Image {
        Image::zeros(2, 2, decamouflage_imaging::Channels::Gray)
    }

    fn above(v: f64) -> Threshold {
        Threshold::new(v, Direction::AboveIsAttack)
    }

    #[test]
    fn two_of_three_majority_flags_attack() {
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0)) // votes attack
            .with_member(FixedScore(10.0, "b"), above(5.0)) // votes attack
            .with_member(FixedScore(1.0, "c"), above(5.0)); // votes benign
        let d = e.decide(&img()).unwrap();
        assert!(d.is_attack);
        assert_eq!(d.votes.len(), 3);
        assert_eq!(d.votes[2], ("c".to_string(), false));
    }

    #[test]
    fn one_of_three_is_benign() {
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0))
            .with_member(FixedScore(1.0, "c"), above(5.0));
        assert!(!e.is_attack(&img()).unwrap());
    }

    #[test]
    fn tie_on_even_ensemble_is_benign() {
        // Strict majority: 1 of 2 does not flag.
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0));
        assert!(!e.is_attack(&img()).unwrap());
    }

    #[test]
    fn empty_ensemble_errors() {
        let e = Ensemble::new();
        assert!(e.is_empty());
        assert!(e.decide(&img()).is_err());
    }

    #[test]
    fn member_failure_propagates() {
        let e = Ensemble::new()
            .with_member(FailingDetector, above(5.0))
            .with_member(FixedScore(10.0, "b"), above(5.0));
        assert!(e.decide(&img()).is_err());
    }

    #[test]
    fn member_accessors() {
        let mut e = Ensemble::new();
        e.push(EnsembleMember::new(FixedScore(1.0, "solo"), above(0.5)));
        assert_eq!(e.len(), 1);
        assert_eq!(e.members()[0].name(), "solo");
        assert_eq!(e.members()[0].threshold().value(), 0.5);
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn below_direction_members_vote_correctly() {
        let e = Ensemble::new()
            .with_member(
                FixedScore(0.3, "ssim-like"),
                Threshold::new(0.5, Direction::BelowIsAttack),
            )
            .with_member(FixedScore(9.0, "mse-like"), above(5.0))
            .with_member(FixedScore(1.0, "csp-like"), above(2.0));
        // Votes: attack, attack, benign -> attack.
        assert!(e.is_attack(&img()).unwrap());
    }
}
