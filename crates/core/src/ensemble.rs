//! Majority-vote ensemble of calibrated detectors (the full *Decamouflage*
//! system of the paper's Figure 6 and Table "ensemble").
//!
//! Members can be *engine-backed*: bind a member to a [`MethodId`] and
//! attach a shared [`DetectionEngine`], and [`Ensemble::decide`] scores the
//! image **once** through the engine's [`ScoreVector`] instead of running
//! one full detector per member. Unbound members keep their own detector.

use crate::detector::Detector;
use crate::engine::DetectionEngine;
use crate::method::{MethodId, ScoreVector};
use crate::threshold::Threshold;
use crate::DetectError;
use decamouflage_imaging::Image;
use decamouflage_telemetry::Telemetry;

/// A detector paired with its calibrated threshold, as a named ensemble
/// member.
pub struct EnsembleMember {
    name: String,
    detector: Box<dyn Detector>,
    threshold: Threshold,
    method: Option<MethodId>,
}

impl EnsembleMember {
    /// Wraps a detector and its threshold.
    pub fn new(detector: impl Detector + 'static, threshold: Threshold) -> Self {
        Self { name: detector.name(), detector: Box::new(detector), threshold, method: None }
    }

    /// Binds the member to a registry method, so an ensemble with a shared
    /// [`DetectionEngine`] reads this member's score from the engine's
    /// [`ScoreVector`] instead of invoking the member's own detector.
    #[must_use]
    pub fn with_method(mut self, id: MethodId) -> Self {
        self.method = Some(id);
        self
    }

    /// The registry method this member is bound to, if any.
    pub const fn method(&self) -> Option<MethodId> {
        self.method
    }

    /// The member's detector name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member's calibrated threshold.
    pub const fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// Scores and classifies one image.
    ///
    /// # Errors
    ///
    /// Propagates the detector's [`DetectError`].
    pub fn is_attack(&self, image: &Image) -> Result<bool, DetectError> {
        Ok(self.threshold.is_attack(self.detector.score(image)?))
    }
}

impl std::fmt::Debug for EnsembleMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleMember")
            .field("name", &self.name)
            .field("threshold", &self.threshold)
            .field("method", &self.method)
            .finish()
    }
}

/// Per-member votes plus the majority decision for one image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleDecision {
    /// `(member name, voted attack?)` in member order. Members that could
    /// not vote (see [`EnsembleDecision::unavailable`]) are absent.
    pub votes: Vec<(String, bool)>,
    /// `(member name, reason)` for every member whose score was missing,
    /// non-finite or errored, in member order. Always empty under
    /// [`DegradePolicy::Strict`], which turns the first such member into an
    /// error instead.
    pub unavailable: Vec<(String, String)>,
    /// The verdict: a strict majority of the voting members under
    /// [`DegradePolicy::Strict`] / [`DegradePolicy::MajorityOfAvailable`];
    /// forced to `true` by [`DegradePolicy::FailClosed`] when any member is
    /// unavailable.
    pub is_attack: bool,
}

impl EnsembleDecision {
    /// Whether every member voted.
    pub fn is_complete(&self) -> bool {
        self.unavailable.is_empty()
    }
}

/// What [`Ensemble::decide`] does when a member cannot vote — its score is
/// missing (method disabled in the attached engine), non-finite, or its
/// detector returned an error.
///
/// NaN scores deserve emphasis: a threshold comparison against NaN is
/// always `false`, so before this policy existed a NaN-scoring member
/// *silently voted benign* — precisely the failure an adversary feeding
/// degenerate inputs would hope for. Every policy now surfaces the
/// condition; they differ only in how the remaining members decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Fail fast: the first unavailable member aborts the decision with a
    /// [`DetectError`] (the pre-fault-tolerance behaviour, and the
    /// default).
    #[default]
    Strict,
    /// Unavailable members abstain and a strict majority of the *available*
    /// votes decides — the paper's 2-of-3 ensemble on whatever voters
    /// remain. With every member unavailable the decision fails closed
    /// (`is_attack = true`): an image nothing could score is not accepted.
    MajorityOfAvailable,
    /// Any unavailable member flags the image as an attack outright — the
    /// security default for screening untrusted uploads, where "this input
    /// broke a detector" is itself a strong attack signal.
    FailClosed,
}

impl DegradePolicy {
    /// Stable kebab-case name, used as the `policy` label on the
    /// `decam_ensemble_degraded_total` telemetry counter.
    pub const fn name(self) -> &'static str {
        match self {
            Self::Strict => "strict",
            Self::MajorityOfAvailable => "majority-of-available",
            Self::FailClosed => "fail-closed",
        }
    }
}

/// Majority-vote ensemble.
///
/// The paper combines the three detection methods so that an adaptive
/// attacker must defeat a majority of them *simultaneously*; with the
/// default three members, two votes decide.
#[derive(Debug, Default)]
pub struct Ensemble {
    members: Vec<EnsembleMember>,
    engine: Option<DetectionEngine>,
    policy: DegradePolicy,
    telemetry: Telemetry,
}

impl Ensemble {
    /// Creates an empty ensemble recording into the process-global
    /// telemetry handle (disabled unless
    /// [`decamouflage_telemetry::install_global`] ran first).
    pub fn new() -> Self {
        Self { telemetry: decamouflage_telemetry::global(), ..Self::default() }
    }

    /// Attaches a [`Telemetry`] handle: an enabled handle records votes
    /// by member, unavailable members, degrade-policy activations and
    /// verdict counts. Telemetry never changes decisions — only observes
    /// them.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the degradation policy for members that cannot vote
    /// (default: [`DegradePolicy::Strict`]).
    #[must_use]
    pub fn with_degrade_policy(mut self, policy: DegradePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active degradation policy.
    pub const fn degrade_policy(&self) -> DegradePolicy {
        self.policy
    }

    /// Attaches a shared engine: method-bound members are scored through
    /// one engine pass per image instead of one detector run per member.
    #[must_use]
    pub fn with_engine(mut self, engine: DetectionEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Adds a calibrated member (builder style).
    #[must_use]
    pub fn with_member(mut self, detector: impl Detector + 'static, threshold: Threshold) -> Self {
        self.members.push(EnsembleMember::new(detector, threshold));
        self
    }

    /// Adds a member for one registry method of the attached engine
    /// (builder style): the detector comes from
    /// [`DetectionEngine::build_detector`] and the member is bound to `id`.
    ///
    /// # Panics
    ///
    /// Panics if no engine was attached with [`Ensemble::with_engine`]
    /// first.
    #[must_use]
    pub fn with_engine_member(mut self, id: MethodId, threshold: Threshold) -> Self {
        let engine = self.engine.as_ref().expect("attach an engine with with_engine() first");
        let member = EnsembleMember::new(engine.build_detector(id), threshold).with_method(id);
        self.members.push(member);
        self
    }

    /// Adds a calibrated member.
    pub fn push(&mut self, member: EnsembleMember) {
        self.members.push(member);
    }

    /// The members, in insertion order.
    pub fn members(&self) -> &[EnsembleMember] {
        &self.members
    }

    /// The shared engine, if one is attached.
    pub fn engine(&self) -> Option<&DetectionEngine> {
        self.engine.as_ref()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Classifies an image by strict majority vote, degrading per the
    /// configured [`DegradePolicy`] when a member cannot vote.
    ///
    /// With an attached engine, all method-bound members share one
    /// [`DetectionEngine::score`] pass; only unbound members invoke their
    /// own detector. A non-finite member score never votes benign
    /// silently — it is handled by the policy like a member error.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for an empty ensemble. Under
    /// [`DegradePolicy::Strict`] (the default), additionally propagates the
    /// first member failure — a detector error, a non-finite score, or a
    /// bound method the attached engine disables. The other policies fold
    /// those members into [`EnsembleDecision::unavailable`] instead.
    pub fn decide(&self, image: &Image) -> Result<EnsembleDecision, DetectError> {
        if self.members.is_empty() {
            return Err(DetectError::InvalidConfig { message: "ensemble has no members".into() });
        }
        let wants_shared = self.members.iter().any(|m| m.method.is_some());
        let shared: Option<(crate::method::MethodSet, Option<ScoreVector>)> = match &self.engine {
            Some(engine) if wants_shared => {
                // Under a degrading policy an engine failure degrades every
                // bound member instead of killing the decision.
                let scores = match engine.score(image) {
                    Ok(scores) => Some(scores),
                    Err(err) if self.policy == DegradePolicy::Strict => return Err(err),
                    Err(_) => None,
                };
                Some((engine.methods(), scores))
            }
            _ => None,
        };
        let mut votes = Vec::with_capacity(self.members.len());
        let mut unavailable = Vec::new();
        let mut attack_votes = 0usize;
        for member in &self.members {
            let score: Result<f64, DetectError> = match (member.method, &shared) {
                (Some(id), Some((methods, scores))) => {
                    if !methods.contains(id) {
                        Err(DetectError::InvalidConfig {
                            message: format!(
                                "member {:?} is bound to {id}, which the attached engine disables",
                                member.name
                            ),
                        })
                    } else {
                        match scores {
                            Some(scores) => Ok(scores.get(id)),
                            None => Err(DetectError::InvalidConfig {
                                message: "shared engine pass failed".into(),
                            }),
                        }
                    }
                }
                _ => member.detector.score(image),
            };
            let reason = match score {
                Ok(s) if s.is_finite() => {
                    let vote = member.threshold.is_attack(s);
                    attack_votes += usize::from(vote);
                    votes.push((member.name.clone(), vote));
                    continue;
                }
                Ok(s) => {
                    if self.policy == DegradePolicy::Strict {
                        return Err(DetectError::Score(Box::new(crate::ScoreError::new(
                            crate::ScoreFault::NonFiniteScore { score: s },
                        ))));
                    }
                    format!("non-finite score {s}")
                }
                Err(err) => {
                    if self.policy == DegradePolicy::Strict {
                        return Err(err);
                    }
                    err.to_string()
                }
            };
            unavailable.push((member.name.clone(), reason));
        }
        let is_attack = match self.policy {
            DegradePolicy::FailClosed if !unavailable.is_empty() => true,
            // All members unavailable: nothing could score the image, so a
            // degrading ensemble refuses to accept it.
            _ if votes.is_empty() => true,
            _ => 2 * attack_votes > votes.len(),
        };
        self.record_decision(&votes, &unavailable, is_attack);
        Ok(EnsembleDecision { votes, unavailable, is_attack })
    }

    /// Records one decision's telemetry: votes by member, unavailable
    /// members, a degrade activation when any member could not vote, and
    /// the verdict. A no-op with disabled telemetry.
    fn record_decision(
        &self,
        votes: &[(String, bool)],
        unavailable: &[(String, String)],
        is_attack: bool,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for (member, vote) in votes {
            let vote = if *vote { "attack" } else { "benign" };
            self.telemetry
                .counter("decam_ensemble_votes_total", &[("member", member), ("vote", vote)])
                .inc();
        }
        for (member, _) in unavailable {
            self.telemetry.counter("decam_ensemble_unavailable_total", &[("member", member)]).inc();
        }
        if !unavailable.is_empty() {
            self.telemetry
                .counter("decam_ensemble_degraded_total", &[("policy", self.policy.name())])
                .inc();
        }
        let verdict = if is_attack { "attack" } else { "benign" };
        self.telemetry.counter("decam_ensemble_decisions_total", &[("verdict", verdict)]).inc();
    }

    /// Convenience: the majority verdict only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ensemble::decide`].
    pub fn is_attack(&self, image: &Image) -> Result<bool, DetectError> {
        Ok(self.decide(image)?.is_attack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::Direction;
    use decamouflage_imaging::Size;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct FixedScore(f64, &'static str);

    impl Detector for FixedScore {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Ok(self.0)
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            self.1.into()
        }
    }

    struct FailingDetector;

    impl Detector for FailingDetector {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Err(DetectError::InvalidConfig { message: "boom".into() })
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "failing".into()
        }
    }

    /// Wraps a detector and counts how often `score` runs.
    struct CountingDetector<D> {
        inner: D,
        calls: Arc<AtomicUsize>,
    }

    impl<D: Detector> Detector for CountingDetector<D> {
        fn score(&self, image: &Image) -> Result<f64, DetectError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.inner.score(image)
        }
        fn direction(&self) -> Direction {
            self.inner.direction()
        }
        fn name(&self) -> String {
            self.inner.name()
        }
    }

    fn img() -> Image {
        Image::zeros(2, 2, decamouflage_imaging::Channels::Gray)
    }

    fn above(v: f64) -> Threshold {
        Threshold::new(v, Direction::AboveIsAttack)
    }

    #[test]
    fn two_of_three_majority_flags_attack() {
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0)) // votes attack
            .with_member(FixedScore(10.0, "b"), above(5.0)) // votes attack
            .with_member(FixedScore(1.0, "c"), above(5.0)); // votes benign
        let d = e.decide(&img()).unwrap();
        assert!(d.is_attack);
        assert_eq!(d.votes.len(), 3);
        assert_eq!(d.votes[2], ("c".to_string(), false));
    }

    #[test]
    fn one_of_three_is_benign() {
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0))
            .with_member(FixedScore(1.0, "c"), above(5.0));
        assert!(!e.is_attack(&img()).unwrap());
    }

    #[test]
    fn tie_on_even_ensemble_is_benign() {
        // Strict majority: 1 of 2 does not flag.
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0));
        assert!(!e.is_attack(&img()).unwrap());
    }

    #[test]
    fn empty_ensemble_errors() {
        let e = Ensemble::new();
        assert!(e.is_empty());
        assert!(e.decide(&img()).is_err());
    }

    #[test]
    fn member_failure_propagates() {
        let e = Ensemble::new()
            .with_member(FailingDetector, above(5.0))
            .with_member(FixedScore(10.0, "b"), above(5.0));
        assert!(e.decide(&img()).is_err());
    }

    #[test]
    fn member_accessors() {
        let mut e = Ensemble::new();
        e.push(EnsembleMember::new(FixedScore(1.0, "solo"), above(0.5)));
        assert_eq!(e.len(), 1);
        assert_eq!(e.members()[0].name(), "solo");
        assert_eq!(e.members()[0].threshold().value(), 0.5);
        assert_eq!(e.members()[0].method(), None);
        assert!(e.engine().is_none());
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn below_direction_members_vote_correctly() {
        let e = Ensemble::new()
            .with_member(
                FixedScore(0.3, "ssim-like"),
                Threshold::new(0.5, Direction::BelowIsAttack),
            )
            .with_member(FixedScore(9.0, "mse-like"), above(5.0))
            .with_member(FixedScore(1.0, "csp-like"), above(2.0));
        // Votes: attack, attack, benign -> attack.
        assert!(e.is_attack(&img()).unwrap());
    }

    fn scene() -> Image {
        Image::from_fn_gray(48, 48, |x, y| {
            (128.0 + 60.0 * ((x as f64) * 0.06).sin() + 40.0 * ((y as f64) * 0.045).cos()).round()
        })
    }

    #[test]
    fn engine_backed_members_skip_their_own_detectors() {
        let engine = DetectionEngine::new(Size::square(16));
        let calls = Arc::new(AtomicUsize::new(0));
        let mut bound = Ensemble::new().with_engine(engine.clone());
        let mut unbound = Ensemble::new();
        for (id, threshold) in [
            (MethodId::ScalingMse, above(200.0)),
            (MethodId::Csp, above(2.0)),
            (MethodId::PeakExcess, above(0.5)),
        ] {
            let counting =
                CountingDetector { inner: engine.build_detector(id), calls: Arc::clone(&calls) };
            bound.push(EnsembleMember::new(counting, threshold).with_method(id));
            let counting =
                CountingDetector { inner: engine.build_detector(id), calls: Arc::clone(&calls) };
            unbound.push(EnsembleMember::new(counting, threshold));
        }
        let image = scene();

        // Regression: with an engine and bound members, the per-member
        // detectors are never invoked — one engine pass serves all votes.
        let bound_decision = bound.decide(&image).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 0, "members re-scored the image");

        // Without bindings every member runs its own detector...
        let unbound_decision = unbound.decide(&image).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), unbound.len());
        // ...and (bit-identical scores) both routes agree vote-for-vote.
        assert_eq!(bound_decision, unbound_decision);
    }

    #[test]
    fn with_engine_member_builds_bound_members() {
        let engine = DetectionEngine::new(Size::square(16));
        let e = Ensemble::new()
            .with_engine(engine)
            .with_engine_member(MethodId::ScalingMse, above(200.0))
            .with_engine_member(
                MethodId::FilteringSsim,
                Threshold::new(0.6, Direction::BelowIsAttack),
            )
            .with_engine_member(MethodId::Csp, above(2.0));
        assert_eq!(e.len(), 3);
        assert_eq!(e.members()[0].method(), Some(MethodId::ScalingMse));
        assert_eq!(e.members()[0].name(), "scaling/mse");
        let d = e.decide(&scene()).unwrap();
        assert_eq!(d.votes.len(), 3);
        assert!(!d.is_attack, "benign scene should pass");
    }

    #[test]
    fn bound_member_with_disabled_method_errors() {
        let engine = DetectionEngine::new(Size::square(16))
            .with_methods(crate::method::MethodSet::of(&[MethodId::ScalingMse]));
        let e = Ensemble::new()
            .with_engine(engine)
            .with_engine_member(MethodId::ScalingMse, above(200.0))
            .with_engine_member(MethodId::Csp, above(2.0));
        assert!(e.decide(&scene()).is_err());
    }

    #[test]
    fn strict_policy_errors_on_nan_score_instead_of_voting_benign() {
        // Regression for the silent-benign hole: threshold(NaN) is always
        // false, so a NaN voter used to pass attacks. Strict now errors.
        let e = Ensemble::new()
            .with_member(FixedScore(f64::NAN, "nan"), above(5.0))
            .with_member(FixedScore(10.0, "b"), above(5.0))
            .with_member(FixedScore(10.0, "c"), above(5.0));
        assert_eq!(e.degrade_policy(), DegradePolicy::Strict);
        let err = e.decide(&img()).unwrap_err();
        assert!(err.to_string().contains("non-finite score"), "{err}");
    }

    #[test]
    fn majority_of_available_votes_on_the_remaining_members() {
        // One voter down, the other two agree on attack -> attack.
        let e = Ensemble::new()
            .with_degrade_policy(DegradePolicy::MajorityOfAvailable)
            .with_member(FailingDetector, above(5.0))
            .with_member(FixedScore(10.0, "b"), above(5.0))
            .with_member(FixedScore(10.0, "c"), above(5.0));
        let d = e.decide(&img()).unwrap();
        assert!(d.is_attack);
        assert!(!d.is_complete());
        assert_eq!(d.votes.len(), 2);
        assert_eq!(d.unavailable.len(), 1);
        assert_eq!(d.unavailable[0].0, "failing");
        assert!(d.unavailable[0].1.contains("boom"), "{}", d.unavailable[0].1);

        // One voter down, the other two split 1-1: no strict majority.
        let e = Ensemble::new()
            .with_degrade_policy(DegradePolicy::MajorityOfAvailable)
            .with_member(FixedScore(f64::NAN, "nan"), above(5.0))
            .with_member(FixedScore(10.0, "b"), above(5.0))
            .with_member(FixedScore(1.0, "c"), above(5.0));
        let d = e.decide(&img()).unwrap();
        assert!(!d.is_attack);
        assert_eq!(d.unavailable[0].1, "non-finite score NaN");
    }

    #[test]
    fn majority_of_available_fails_closed_when_nobody_can_vote() {
        let e = Ensemble::new()
            .with_degrade_policy(DegradePolicy::MajorityOfAvailable)
            .with_member(FailingDetector, above(5.0))
            .with_member(FixedScore(f64::INFINITY, "inf"), above(5.0));
        let d = e.decide(&img()).unwrap();
        assert!(d.is_attack, "an image nothing could score must not pass");
        assert!(d.votes.is_empty());
        assert_eq!(d.unavailable.len(), 2);
    }

    #[test]
    fn fail_closed_flags_attack_on_any_unavailable_member() {
        // Both surviving voters say benign; the failed one decides anyway.
        let e = Ensemble::new()
            .with_degrade_policy(DegradePolicy::FailClosed)
            .with_member(FailingDetector, above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0))
            .with_member(FixedScore(1.0, "c"), above(5.0));
        let d = e.decide(&img()).unwrap();
        assert!(d.is_attack);
        assert_eq!(d.votes, vec![("b".to_string(), false), ("c".to_string(), false)]);

        // With every member healthy, FailClosed is an ordinary majority.
        let e = Ensemble::new()
            .with_degrade_policy(DegradePolicy::FailClosed)
            .with_member(FixedScore(1.0, "a"), above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0))
            .with_member(FixedScore(10.0, "c"), above(5.0));
        let d = e.decide(&img()).unwrap();
        assert!(!d.is_attack);
        assert!(d.is_complete());
    }

    #[test]
    fn degraded_policies_tolerate_a_disabled_bound_method() {
        let engine = DetectionEngine::new(Size::square(16))
            .with_methods(crate::method::MethodSet::of(&[MethodId::ScalingMse]));
        let e = Ensemble::new()
            .with_engine(engine)
            .with_engine_member(MethodId::ScalingMse, above(200.0))
            .with_engine_member(MethodId::Csp, above(2.0))
            .with_degrade_policy(DegradePolicy::MajorityOfAvailable);
        let d = e.decide(&scene()).unwrap();
        assert_eq!(d.votes.len(), 1, "only the enabled binding votes");
        assert_eq!(d.unavailable.len(), 1);
        assert!(d.unavailable[0].1.contains("disables"), "{}", d.unavailable[0].1);
    }

    #[test]
    fn degraded_policies_survive_a_failed_shared_engine_pass() {
        // A sigma of zero makes every SSIM scoring pass fail, which under a
        // degrading policy marks all bound members unavailable instead of
        // erroring the decision.
        let mut bad_ssim = decamouflage_metrics::SsimConfig::default();
        bad_ssim.sigma = 0.0;
        let engine = DetectionEngine::new(Size::square(16)).with_ssim_config(bad_ssim);
        let e = Ensemble::new()
            .with_engine(engine)
            .with_engine_member(
                MethodId::ScalingSsim,
                Threshold::new(0.6, Direction::BelowIsAttack),
            )
            .with_degrade_policy(DegradePolicy::FailClosed)
            .with_member(FixedScore(1.0, "healthy"), above(5.0));
        let d = e.decide(&scene()).unwrap();
        assert!(d.is_attack, "FailClosed flags the failed engine pass");
        assert_eq!(d.votes, vec![("healthy".to_string(), false)]);
        assert_eq!(d.unavailable.len(), 1);

        // Strict still propagates the same failure as an error.
        let strict = Ensemble::new()
            .with_engine({
                let mut bad_ssim = decamouflage_metrics::SsimConfig::default();
                bad_ssim.sigma = 0.0;
                DetectionEngine::new(Size::square(16)).with_ssim_config(bad_ssim)
            })
            .with_engine_member(
                MethodId::ScalingSsim,
                Threshold::new(0.6, Direction::BelowIsAttack),
            );
        assert!(strict.decide(&scene()).is_err());
    }

    #[test]
    fn bound_members_without_engine_fall_back_to_their_detector() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counting = CountingDetector { inner: FixedScore(10.0, "a"), calls: Arc::clone(&calls) };
        let mut e = Ensemble::new();
        e.push(EnsembleMember::new(counting, above(5.0)).with_method(MethodId::ScalingMse));
        assert!(e.is_attack(&img()).unwrap());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
