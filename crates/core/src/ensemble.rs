//! Majority-vote ensemble of calibrated detectors (the full *Decamouflage*
//! system of the paper's Figure 6 and Table "ensemble").
//!
//! Members can be *engine-backed*: bind a member to a [`MethodId`] and
//! attach a shared [`DetectionEngine`], and [`Ensemble::decide`] scores the
//! image **once** through the engine's [`ScoreVector`] instead of running
//! one full detector per member. Unbound members keep their own detector.

use crate::detector::Detector;
use crate::engine::DetectionEngine;
use crate::method::{MethodId, ScoreVector};
use crate::threshold::Threshold;
use crate::DetectError;
use decamouflage_imaging::Image;

/// A detector paired with its calibrated threshold, as a named ensemble
/// member.
pub struct EnsembleMember {
    name: String,
    detector: Box<dyn Detector>,
    threshold: Threshold,
    method: Option<MethodId>,
}

impl EnsembleMember {
    /// Wraps a detector and its threshold.
    pub fn new(detector: impl Detector + 'static, threshold: Threshold) -> Self {
        Self { name: detector.name(), detector: Box::new(detector), threshold, method: None }
    }

    /// Binds the member to a registry method, so an ensemble with a shared
    /// [`DetectionEngine`] reads this member's score from the engine's
    /// [`ScoreVector`] instead of invoking the member's own detector.
    #[must_use]
    pub fn with_method(mut self, id: MethodId) -> Self {
        self.method = Some(id);
        self
    }

    /// The registry method this member is bound to, if any.
    pub const fn method(&self) -> Option<MethodId> {
        self.method
    }

    /// The member's detector name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member's calibrated threshold.
    pub const fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// Scores and classifies one image.
    ///
    /// # Errors
    ///
    /// Propagates the detector's [`DetectError`].
    pub fn is_attack(&self, image: &Image) -> Result<bool, DetectError> {
        Ok(self.threshold.is_attack(self.detector.score(image)?))
    }
}

impl std::fmt::Debug for EnsembleMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleMember")
            .field("name", &self.name)
            .field("threshold", &self.threshold)
            .field("method", &self.method)
            .finish()
    }
}

/// Per-member votes plus the majority decision for one image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleDecision {
    /// `(member name, voted attack?)` in member order.
    pub votes: Vec<(String, bool)>,
    /// Majority verdict (strictly more than half the members).
    pub is_attack: bool,
}

/// Majority-vote ensemble.
///
/// The paper combines the three detection methods so that an adaptive
/// attacker must defeat a majority of them *simultaneously*; with the
/// default three members, two votes decide.
#[derive(Debug, Default)]
pub struct Ensemble {
    members: Vec<EnsembleMember>,
    engine: Option<DetectionEngine>,
}

impl Ensemble {
    /// Creates an empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a shared engine: method-bound members are scored through
    /// one engine pass per image instead of one detector run per member.
    #[must_use]
    pub fn with_engine(mut self, engine: DetectionEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Adds a calibrated member (builder style).
    #[must_use]
    pub fn with_member(mut self, detector: impl Detector + 'static, threshold: Threshold) -> Self {
        self.members.push(EnsembleMember::new(detector, threshold));
        self
    }

    /// Adds a member for one registry method of the attached engine
    /// (builder style): the detector comes from
    /// [`DetectionEngine::build_detector`] and the member is bound to `id`.
    ///
    /// # Panics
    ///
    /// Panics if no engine was attached with [`Ensemble::with_engine`]
    /// first.
    #[must_use]
    pub fn with_engine_member(mut self, id: MethodId, threshold: Threshold) -> Self {
        let engine = self.engine.as_ref().expect("attach an engine with with_engine() first");
        let member = EnsembleMember::new(engine.build_detector(id), threshold).with_method(id);
        self.members.push(member);
        self
    }

    /// Adds a calibrated member.
    pub fn push(&mut self, member: EnsembleMember) {
        self.members.push(member);
    }

    /// The members, in insertion order.
    pub fn members(&self) -> &[EnsembleMember] {
        &self.members
    }

    /// The shared engine, if one is attached.
    pub fn engine(&self) -> Option<&DetectionEngine> {
        self.engine.as_ref()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Classifies an image by strict majority vote.
    ///
    /// With an attached engine, all method-bound members share one
    /// [`DetectionEngine::score`] pass; only unbound members invoke their
    /// own detector.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for an empty ensemble, or if
    /// a bound member's method is disabled in the attached engine;
    /// propagates the first member failure.
    pub fn decide(&self, image: &Image) -> Result<EnsembleDecision, DetectError> {
        if self.members.is_empty() {
            return Err(DetectError::InvalidConfig { message: "ensemble has no members".into() });
        }
        let shared: Option<(crate::method::MethodSet, ScoreVector)> = match &self.engine {
            Some(engine) if self.members.iter().any(|m| m.method.is_some()) => {
                Some((engine.methods(), engine.score(image)?))
            }
            _ => None,
        };
        let mut votes = Vec::with_capacity(self.members.len());
        let mut attack_votes = 0usize;
        for member in &self.members {
            let vote = match (member.method, &shared) {
                (Some(id), Some((methods, scores))) => {
                    if !methods.contains(id) {
                        return Err(DetectError::InvalidConfig {
                            message: format!(
                                "member {:?} is bound to {id}, which the attached engine disables",
                                member.name
                            ),
                        });
                    }
                    member.threshold.is_attack(scores.get(id))
                }
                _ => member.is_attack(image)?,
            };
            attack_votes += usize::from(vote);
            votes.push((member.name.clone(), vote));
        }
        Ok(EnsembleDecision { votes, is_attack: 2 * attack_votes > self.members.len() })
    }

    /// Convenience: the majority verdict only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ensemble::decide`].
    pub fn is_attack(&self, image: &Image) -> Result<bool, DetectError> {
        Ok(self.decide(image)?.is_attack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::Direction;
    use decamouflage_imaging::Size;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct FixedScore(f64, &'static str);

    impl Detector for FixedScore {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Ok(self.0)
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            self.1.into()
        }
    }

    struct FailingDetector;

    impl Detector for FailingDetector {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Err(DetectError::InvalidConfig { message: "boom".into() })
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "failing".into()
        }
    }

    /// Wraps a detector and counts how often `score` runs.
    struct CountingDetector<D> {
        inner: D,
        calls: Arc<AtomicUsize>,
    }

    impl<D: Detector> Detector for CountingDetector<D> {
        fn score(&self, image: &Image) -> Result<f64, DetectError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.inner.score(image)
        }
        fn direction(&self) -> Direction {
            self.inner.direction()
        }
        fn name(&self) -> String {
            self.inner.name()
        }
    }

    fn img() -> Image {
        Image::zeros(2, 2, decamouflage_imaging::Channels::Gray)
    }

    fn above(v: f64) -> Threshold {
        Threshold::new(v, Direction::AboveIsAttack)
    }

    #[test]
    fn two_of_three_majority_flags_attack() {
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0)) // votes attack
            .with_member(FixedScore(10.0, "b"), above(5.0)) // votes attack
            .with_member(FixedScore(1.0, "c"), above(5.0)); // votes benign
        let d = e.decide(&img()).unwrap();
        assert!(d.is_attack);
        assert_eq!(d.votes.len(), 3);
        assert_eq!(d.votes[2], ("c".to_string(), false));
    }

    #[test]
    fn one_of_three_is_benign() {
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0))
            .with_member(FixedScore(1.0, "c"), above(5.0));
        assert!(!e.is_attack(&img()).unwrap());
    }

    #[test]
    fn tie_on_even_ensemble_is_benign() {
        // Strict majority: 1 of 2 does not flag.
        let e = Ensemble::new()
            .with_member(FixedScore(10.0, "a"), above(5.0))
            .with_member(FixedScore(1.0, "b"), above(5.0));
        assert!(!e.is_attack(&img()).unwrap());
    }

    #[test]
    fn empty_ensemble_errors() {
        let e = Ensemble::new();
        assert!(e.is_empty());
        assert!(e.decide(&img()).is_err());
    }

    #[test]
    fn member_failure_propagates() {
        let e = Ensemble::new()
            .with_member(FailingDetector, above(5.0))
            .with_member(FixedScore(10.0, "b"), above(5.0));
        assert!(e.decide(&img()).is_err());
    }

    #[test]
    fn member_accessors() {
        let mut e = Ensemble::new();
        e.push(EnsembleMember::new(FixedScore(1.0, "solo"), above(0.5)));
        assert_eq!(e.len(), 1);
        assert_eq!(e.members()[0].name(), "solo");
        assert_eq!(e.members()[0].threshold().value(), 0.5);
        assert_eq!(e.members()[0].method(), None);
        assert!(e.engine().is_none());
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn below_direction_members_vote_correctly() {
        let e = Ensemble::new()
            .with_member(
                FixedScore(0.3, "ssim-like"),
                Threshold::new(0.5, Direction::BelowIsAttack),
            )
            .with_member(FixedScore(9.0, "mse-like"), above(5.0))
            .with_member(FixedScore(1.0, "csp-like"), above(2.0));
        // Votes: attack, attack, benign -> attack.
        assert!(e.is_attack(&img()).unwrap());
    }

    fn scene() -> Image {
        Image::from_fn_gray(48, 48, |x, y| {
            (128.0 + 60.0 * ((x as f64) * 0.06).sin() + 40.0 * ((y as f64) * 0.045).cos()).round()
        })
    }

    #[test]
    fn engine_backed_members_skip_their_own_detectors() {
        let engine = DetectionEngine::new(Size::square(16));
        let calls = Arc::new(AtomicUsize::new(0));
        let mut bound = Ensemble::new().with_engine(engine.clone());
        let mut unbound = Ensemble::new();
        for (id, threshold) in [
            (MethodId::ScalingMse, above(200.0)),
            (MethodId::Csp, above(2.0)),
            (MethodId::PeakExcess, above(0.5)),
        ] {
            let counting =
                CountingDetector { inner: engine.build_detector(id), calls: Arc::clone(&calls) };
            bound.push(EnsembleMember::new(counting, threshold).with_method(id));
            let counting =
                CountingDetector { inner: engine.build_detector(id), calls: Arc::clone(&calls) };
            unbound.push(EnsembleMember::new(counting, threshold));
        }
        let image = scene();

        // Regression: with an engine and bound members, the per-member
        // detectors are never invoked — one engine pass serves all votes.
        let bound_decision = bound.decide(&image).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 0, "members re-scored the image");

        // Without bindings every member runs its own detector...
        let unbound_decision = unbound.decide(&image).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), unbound.len());
        // ...and (bit-identical scores) both routes agree vote-for-vote.
        assert_eq!(bound_decision, unbound_decision);
    }

    #[test]
    fn with_engine_member_builds_bound_members() {
        let engine = DetectionEngine::new(Size::square(16));
        let e = Ensemble::new()
            .with_engine(engine)
            .with_engine_member(MethodId::ScalingMse, above(200.0))
            .with_engine_member(
                MethodId::FilteringSsim,
                Threshold::new(0.6, Direction::BelowIsAttack),
            )
            .with_engine_member(MethodId::Csp, above(2.0));
        assert_eq!(e.len(), 3);
        assert_eq!(e.members()[0].method(), Some(MethodId::ScalingMse));
        assert_eq!(e.members()[0].name(), "scaling/mse");
        let d = e.decide(&scene()).unwrap();
        assert_eq!(d.votes.len(), 3);
        assert!(!d.is_attack, "benign scene should pass");
    }

    #[test]
    fn bound_member_with_disabled_method_errors() {
        let engine = DetectionEngine::new(Size::square(16))
            .with_methods(crate::method::MethodSet::of(&[MethodId::ScalingMse]));
        let e = Ensemble::new()
            .with_engine(engine)
            .with_engine_member(MethodId::ScalingMse, above(200.0))
            .with_engine_member(MethodId::Csp, above(2.0));
        assert!(e.decide(&scene()).is_err());
    }

    #[test]
    fn bound_members_without_engine_fall_back_to_their_detector() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counting = CountingDetector { inner: FixedScore(10.0, "a"), calls: Arc::clone(&calls) };
        let mut e = Ensemble::new();
        e.push(EnsembleMember::new(counting, above(5.0)).with_method(MethodId::ScalingMse));
        assert!(e.is_attack(&img()).unwrap());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
