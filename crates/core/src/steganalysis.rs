//! The steganalysis-detection method (paper §3.3, Algorithm 3).
//!
//! Treat the attack's embedded pixels as hidden information and expose them
//! in the frequency domain: the periodic perturbation pattern creates
//! multiple bright *centered spectrum points* (CSP) where a benign image
//! has exactly one. Uniquely among the three methods, the threshold is
//! dataset-independent: `CSP_T = 2` works without any calibration.

use crate::detector::Detector;
use crate::threshold::{Direction, Threshold};
use crate::DetectError;
use decamouflage_imaging::{Image, Size};
use decamouflage_spectral::csp::{analyze_csp, count_csp, CspArtifacts, CspConfig};

/// The paper's universal CSP threshold: two or more centered spectrum
/// points indicate an attack.
pub const CSP_UNIVERSAL_THRESHOLD: f64 = 2.0;

/// Steganalysis scorer: the number of centered spectrum points.
#[derive(Debug, Clone, Default)]
pub struct SteganalysisDetector {
    config: CspConfig,
}

impl SteganalysisDetector {
    /// Creates a detector with the default CSP pipeline configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with a custom CSP pipeline configuration.
    pub fn with_config(config: CspConfig) -> Self {
        Self { config }
    }

    /// Creates a detector tuned for a known CNN input size (the deployment
    /// case). The attack's periodic peaks always appear at least
    /// `min(target dims)` spectral pixels from the centre, so the central
    /// merge zone can safely extend to 60% of that distance, which in turn
    /// permits a more sensitive brightness threshold.
    pub fn for_target(target: Size) -> Self {
        let config = CspConfig {
            center_merge_radius_px: Some(0.6 * target.width.min(target.height) as f64),
            binarize_threshold: 0.66,
            ..CspConfig::default()
        };
        Self { config }
    }

    /// The CSP pipeline configuration.
    pub fn config(&self) -> &CspConfig {
        &self.config
    }

    /// The fixed, calibration-free threshold (`CSP_T = 2`).
    pub fn universal_threshold() -> Threshold {
        Threshold::new(CSP_UNIVERSAL_THRESHOLD, Direction::AboveIsAttack)
    }

    /// Full pipeline artefacts (centred spectrum, mask, binary image,
    /// blobs) for visualisation.
    pub fn analyze(&self, image: &Image) -> CspArtifacts {
        analyze_csp(image, &self.config)
    }
}

impl Detector for SteganalysisDetector {
    fn score(&self, image: &Image) -> Result<f64, DetectError> {
        Ok(count_csp(image, &self.config).count as f64)
    }

    fn direction(&self) -> Direction {
        Direction::AboveIsAttack
    }

    fn name(&self) -> String {
        "steganalysis/csp".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_attack::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::{ScaleAlgorithm, Scaler};
    use decamouflage_imaging::Size;

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (120.0 + 60.0 * ((x as f64) * 0.05).sin() + 40.0 * ((y as f64) * 0.035).cos()).round()
        })
    }

    fn attack_image(src: usize, dst: usize) -> Image {
        let scaler =
            Scaler::new(Size::square(src), Size::square(dst), ScaleAlgorithm::Bilinear).unwrap();
        let target = Image::from_fn_gray(dst, dst, |x, y| ((x * 83 + y * 47) % 256) as f64);
        craft_attack(&smooth(src), &target, &scaler, &AttackConfig::default()).unwrap().image
    }

    #[test]
    fn benign_has_one_point_attack_has_more() {
        let det = SteganalysisDetector::new();
        let benign = det.score(&smooth(128)).unwrap();
        let attack = det.score(&attack_image(128, 32)).unwrap();
        assert_eq!(benign, 1.0, "benign CSP {benign}");
        assert!(attack >= 2.0, "attack CSP {attack}");
    }

    #[test]
    fn universal_threshold_separates() {
        let det = SteganalysisDetector::new();
        let t = SteganalysisDetector::universal_threshold();
        assert!(!t.is_attack(det.score(&smooth(128)).unwrap()));
        assert!(t.is_attack(det.score(&attack_image(128, 32)).unwrap()));
    }

    #[test]
    fn direction_and_name() {
        let det = SteganalysisDetector::new();
        assert_eq!(det.direction(), Direction::AboveIsAttack);
        assert_eq!(det.name(), "steganalysis/csp");
    }

    #[test]
    fn analyze_exposes_artifacts() {
        let det = SteganalysisDetector::new();
        let art = det.analyze(&smooth(64));
        assert_eq!(art.report.count, 1);
        assert_eq!(art.binary.width(), 64);
    }

    #[test]
    fn for_target_sets_pixel_merge_radius() {
        let det = SteganalysisDetector::for_target(Size::square(112));
        assert_eq!(det.config().center_merge_radius_px, Some(67.2));
        assert_eq!(det.config().binarize_threshold, 0.66);
    }

    #[test]
    fn custom_config_is_respected() {
        let mut config = CspConfig::default();
        config.min_area = 1_000_000;
        let det = SteganalysisDetector::with_config(config.clone());
        assert_eq!(det.config(), &config);
        assert_eq!(det.score(&smooth(64)).unwrap(), 0.0);
    }
}
