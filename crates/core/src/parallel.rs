//! Corpus-scoring parallelism: a persistent worker pool fed over a channel.
//!
//! Earlier revisions spawned fresh threads per call via `std::thread::scope`;
//! scoring a corpus image-by-image then paid thread creation per batch. The
//! [`WorkerPool`] here keeps its threads alive for the process lifetime and
//! feeds them closures through an MPSC channel, so repeated
//! [`parallel_map_indices`] calls (the detection engine's fan-out) reuse the
//! same workers.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A unit of work executed on a pool thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads.
///
/// Jobs are submitted over a shared channel; idle workers block on it.
/// [`WorkerPool::map_indices`] layers a fork-join on top: the caller thread
/// participates in the work and blocks until every helper has finished, so
/// borrowed closures are safe to run on the pool (see the safety note in
/// the implementation).
///
/// # Example
///
/// ```
/// use decamouflage_core::parallel::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let doubled = pool.map_indices(5, 3, |i| i * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns a pool with up to `workers` threads (tries at least one).
    ///
    /// Spawn failures (thread exhaustion) are not fatal: the pool keeps
    /// whatever threads did start — possibly none, in which case
    /// [`WorkerPool::map_indices`] simply runs everything on the caller.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .filter_map(|index| {
                let receiver = Arc::clone(&receiver);
                let spawned = std::thread::Builder::new()
                    .name(format!("decam-worker-{index}"))
                    .spawn(move || loop {
                        // The guard is a temporary: the lock is released as
                        // soon as `recv` returns, before the job runs. A
                        // poisoned receiver lock only means another worker
                        // panicked *between* jobs; the queue itself is fine.
                        let job = receiver.lock().unwrap_or_else(PoisonError::into_inner).recv();
                        match job {
                            // A panicking job must not take the worker down:
                            // map_indices re-raises the payload on the
                            // caller side instead. Recovered panics are
                            // counted (the lookup only runs on this cold
                            // path).
                            Ok(job) => {
                                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    decamouflage_telemetry::global()
                                        .counter("decam_pool_panics_recovered_total", &[])
                                        .inc();
                                }
                            }
                            Err(_) => break,
                        }
                    });
                match spawned {
                    Ok(handle) => Some(handle),
                    Err(err) => {
                        decamouflage_telemetry::global()
                            .counter("decam_pool_spawn_failures_total", &[])
                            .inc();
                        eprintln!(
                            "decamouflage: could not spawn pool worker {index}: {err}; \
                             continuing with fewer threads"
                        );
                        None
                    }
                }
            })
            .collect();
        let workers = handles.len();
        Self { sender: Mutex::new(Some(sender)), handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The process-wide pool used by [`parallel_map_indices`], sized by
    /// [`default_threads`] on first use.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::new(default_threads()))
    }

    /// Hands a job to the workers, falling back to running it on the
    /// calling thread when no worker can take it (pool shut down, all
    /// workers gone). The job always runs exactly once either way, so
    /// `map_indices`' join protocol never hangs on a lost submission.
    fn submit(&self, job: Job) {
        // With telemetry enabled, the job is wrapped to keep the queue
        // depth gauge and executed-jobs counter accurate; disabled, the
        // job goes through untouched (no allocation, no clock).
        let telemetry = decamouflage_telemetry::global();
        let job: Job = if telemetry.is_enabled() {
            let depth = telemetry.gauge("decam_pool_queue_depth", &[]);
            let executed = telemetry.counter("decam_pool_jobs_total", &[]);
            depth.inc();
            Box::new(move || {
                depth.dec();
                executed.inc();
                job();
            })
        } else {
            job
        };
        let guard = self.sender.lock().unwrap_or_else(PoisonError::into_inner);
        let rejected = match guard.as_ref() {
            Some(sender) => match sender.send(job) {
                Ok(()) => None,
                Err(send_error) => Some(send_error.0),
            },
            None => Some(job),
        };
        drop(guard);
        if let Some(job) = rejected {
            telemetry.counter("decam_pool_inline_fallback_total", &[]).inc();
            job();
        }
    }

    /// Fire-and-forget: hands `job` to a pool worker. The job runs exactly
    /// once — on a worker normally, or inline on the calling thread when the
    /// pool is shut down or every worker is gone (same fallback as the
    /// fork-join path). Panics inside the job are recovered by the worker
    /// loop and counted in `decam_pool_panics_recovered_total`; they never
    /// take a worker down. There is no completion signal — callers that need
    /// one should close over a channel or atomic.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.submit(Box::new(job));
    }

    /// Maps `f` over `0..n` using the caller plus up to `threads - 1` pool
    /// workers, preserving index order in the output. Work is distributed
    /// dynamically (atomic cursor), so uneven per-item costs balance out.
    ///
    /// With `threads <= 1` or `n <= 1` the map runs inline on the caller.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` after all participants have
    /// finished.
    pub fn map_indices<T, F>(&self, n: usize, threads: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        decamouflage_telemetry::global().gauge("decam_pool_workers", &[]).set(self.workers as f64);
        let helpers = threads.saturating_sub(1).min(self.workers).min(n - 1);
        if helpers == 0 {
            return (0..n).map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let drain = |cursor: &AtomicUsize, f: &F| {
            let mut local: Vec<(usize, T)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                local.push((i, f(i)));
            }
            local
        };

        let (tx, rx) = mpsc::channel::<std::thread::Result<Vec<(usize, T)>>>();
        for _ in 0..helpers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            let drain = &drain;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| drain(cursor, f)));
                // Sending is the job's final use of the borrowed state; the
                // sender clone drops when the closure returns, which is what
                // disconnects `rx` below.
                let _ = tx.send(result);
            });
            // SAFETY: the job borrows `cursor`, `f` and `drain` from this
            // stack frame, which the type system cannot tie to the
            // 'static-job channel. The frame outlives every borrow because
            // this function only returns after `rx.recv()` has reported
            // disconnection, and `rx` disconnects only once each submitted
            // job has dropped its `tx` clone — i.e. after the job (panicking
            // or not, thanks to the catch_unwind) has finished running and
            // released its captures. The captures themselves have no drop
            // glue touching borrowed data (shared references and an owned
            // `Sender`).
            #[allow(unsafe_code)]
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.submit(job);
        }
        drop(tx);

        // The caller works the same queue instead of idling.
        let mine = catch_unwind(AssertUnwindSafe(|| drain(&cursor, &f)));

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        let mut fill = |result: std::thread::Result<Vec<(usize, T)>>| match result {
            Ok(pairs) => {
                for (i, value) in pairs {
                    slots[i] = Some(value);
                }
            }
            Err(payload) => {
                if panic_payload.is_none() {
                    panic_payload = Some(payload);
                }
            }
        };
        fill(mine);
        while let Ok(result) = rx.recv() {
            fill(result);
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        slots.into_iter().map(|slot| slot.expect("every index visited exactly once")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel so the workers' recv loops end, then join.
        drop(self.sender.lock().unwrap_or_else(PoisonError::into_inner).take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Maps `f` over `0..n` on the [global pool](WorkerPool::global) using up to
/// `threads` participants (the caller plus `threads - 1` pool workers),
/// preserving index order in the output.
///
/// With `threads <= 1` or `n <= 1` the map runs inline on the caller's
/// thread.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
///
/// # Example
///
/// ```
/// use decamouflage_core::parallel::parallel_map_indices;
///
/// let squares = parallel_map_indices(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map_indices<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    WorkerPool::global().map_indices(n, threads, f)
}

/// A sensible default worker count: the `DECAM_THREADS` environment variable
/// when set, clamped to `[1, 512]`, otherwise the machine's available
/// parallelism capped at 16.
///
/// An out-of-range value is clamped with a warning on stderr naming the
/// offending value; an unparseable value is ignored the same way. A typo'd
/// deployment knob must never take the screening service down.
pub fn default_threads() -> usize {
    match thread_override(std::env::var("DECAM_THREADS").ok().as_deref()) {
        Some(n) => n,
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16),
    }
}

/// Highest thread count `DECAM_THREADS` may request.
const MAX_THREAD_OVERRIDE: usize = 512;

/// Reports one bad `DECAM_THREADS` value: stderr gets the message **once
/// per process per warning kind** (pool construction happens repeatedly;
/// repeating an identical configuration warning is noise), while the
/// `decam_threads_warnings_total{kind=...}` counter records every
/// occurrence for operators who never see stderr.
fn warn_threads(once: &'static Once, kind: &'static str, message: impl FnOnce() -> String) {
    decamouflage_telemetry::global()
        .counter("decam_threads_warnings_total", &[("kind", kind)])
        .inc();
    once.call_once(|| eprintln!("decamouflage: {}", message()));
}

/// Parses a `DECAM_THREADS`-style override, clamping to
/// `[1, MAX_THREAD_OVERRIDE]` and warning (with the bad value) on anything
/// clamped or unparseable.
fn thread_override(raw: Option<&str>) -> Option<usize> {
    static WARNED_ZERO: Once = Once::new();
    static WARNED_CAP: Once = Once::new();
    static WARNED_UNPARSEABLE: Once = Once::new();
    let raw = raw?.trim();
    match raw.parse::<usize>() {
        Ok(0) => {
            warn_threads(&WARNED_ZERO, "zero", || {
                "DECAM_THREADS=0 is invalid; clamping to 1".into()
            });
            Some(1)
        }
        Ok(n) if n > MAX_THREAD_OVERRIDE => {
            warn_threads(&WARNED_CAP, "over-cap", || {
                format!(
                    "DECAM_THREADS={n} exceeds the {MAX_THREAD_OVERRIDE}-thread \
                     cap; clamping to {MAX_THREAD_OVERRIDE}"
                )
            });
            Some(MAX_THREAD_OVERRIDE)
        }
        Ok(n) => Some(n),
        Err(_) => {
            warn_threads(&WARNED_UNPARSEABLE, "unparseable", || {
                format!(
                    "ignoring unparseable DECAM_THREADS value {raw:?}; \
                     using auto-detected parallelism"
                )
            });
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn preserves_order() {
        let out = parallel_map_indices(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map_indices(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = parallel_map_indices(10, 1, |i| i + 1);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_indices(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn uneven_workloads_balance() {
        // Items with wildly different costs still land in order.
        let out = parallel_map_indices(20, 4, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn pool_threads_persist_across_calls() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let first: HashSet<_> = pool
            .map_indices(64, 3, |_| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                std::thread::current().id()
            })
            .into_iter()
            .collect();
        let second: HashSet<_> = pool
            .map_indices(64, 3, |_| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                std::thread::current().id()
            })
            .into_iter()
            .collect();
        // The same long-lived workers serve both calls: every thread that
        // participated beyond the caller in the second call already existed
        // during the first.
        assert!(second.is_subset(&first), "pool spawned new threads between calls");
    }

    #[test]
    fn pool_runs_work_off_the_caller_thread() {
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let ids: HashSet<_> = pool
            .map_indices(128, 2, |_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                std::thread::current().id()
            })
            .into_iter()
            .collect();
        assert!(ids.len() >= 2 || !ids.contains(&caller), "no pool worker participated");
    }

    #[test]
    fn pool_survives_a_panicking_job_and_reraises_it() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indices(16, 4, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool is still functional afterwards.
        assert_eq!(pool.map_indices(4, 4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        if std::env::var("DECAM_THREADS").is_err() {
            assert!(default_threads() <= 16);
        }
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(thread_override(None), None);
        assert_eq!(thread_override(Some("8")), Some(8));
        assert_eq!(thread_override(Some(" 3 ")), Some(3));
        assert_eq!(thread_override(Some("512")), Some(512));
    }

    #[test]
    fn thread_override_clamps_out_of_range_values() {
        assert_eq!(thread_override(Some("0")), Some(1), "zero clamps up to one thread");
        assert_eq!(thread_override(Some("513")), Some(MAX_THREAD_OVERRIDE));
        assert_eq!(thread_override(Some("99999")), Some(MAX_THREAD_OVERRIDE));
    }

    #[test]
    fn thread_override_ignores_garbage() {
        // Unparseable values fall back to auto-detection instead of failing.
        assert_eq!(thread_override(Some("abc")), None);
        assert_eq!(thread_override(Some("")), None);
        assert_eq!(thread_override(Some("-2")), None);
        assert_eq!(thread_override(Some("4.5")), None);
    }

    #[test]
    fn submit_runs_the_job_inline_when_the_pool_is_shut_down() {
        use std::sync::atomic::AtomicBool;
        let pool = WorkerPool::new(1);
        // Simulate a shut-down pool: the sender is gone, as in Drop.
        drop(pool.sender.lock().unwrap().take());
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        pool.submit(Box::new(move || flag.store(true, Ordering::SeqCst)));
        assert!(ran.load(Ordering::SeqCst), "orphaned jobs must run on the caller");
        // map_indices still completes (inline or via fallback submission).
        assert_eq!(pool.map_indices(4, 3, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn spawn_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = mpsc::channel();
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            let done = done_tx.clone();
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
                let _ = done.send(());
            });
        }
        for _ in 0..16 {
            done_rx.recv_timeout(std::time::Duration::from_secs(10)).expect("job completion");
        }
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn spawn_survives_a_panicking_job() {
        let pool = WorkerPool::new(1);
        pool.spawn(|| panic!("injected"));
        let (done_tx, done_rx) = mpsc::channel();
        pool.spawn(move || {
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker survives a recovered panic");
    }
}
