//! Minimal fork-join helper for scoring corpora, built on
//! `std::thread::scope` (no extra dependency).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..n` using up to `threads` worker threads, preserving
/// index order in the output. Work is distributed dynamically (atomic
/// counter), so uneven per-item costs balance out.
///
/// With `threads <= 1` or `n <= 1` the map runs inline on the caller's
/// thread.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
///
/// # Example
///
/// ```
/// use decamouflage_core::parallel::parallel_map_indices;
///
/// let squares = parallel_map_indices(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map_indices<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let f_ref = &f;

    // Split the output buffer into per-index cells via raw chunks of
    // Option<T>. We hand each worker exclusive access through a Mutex-free
    // scheme: collect (index, value) pairs per worker and write after join.
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f_ref(i)));
                }
                local
            }));
        }
        for handle in handles {
            for (i, value) in handle.join().expect("worker panicked") {
                slots[i] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

/// A sensible default worker count: the machine's available parallelism,
/// capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_indices(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map_indices(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = parallel_map_indices(10, 1, |i| i + 1);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_indices(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn uneven_workloads_balance() {
        // Items with wildly different costs still land in order.
        let out = parallel_map_indices(20, 4, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 16);
    }
}
