//! ROC analysis: sweep every threshold and compute the TPR/FPR curve and
//! the area under it.
//!
//! The paper reports point metrics at selected thresholds; the ROC exposes
//! the whole trade-off and gives a threshold-free summary (AUC) used by
//! the sensitivity ablations.

use crate::engine::EngineCorpus;
use crate::method::{MethodId, MethodSet, ScoreColumns};
use crate::threshold::Direction;
use crate::DetectError;

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// True-positive rate (recall): flagged attacks / all attacks.
    pub tpr: f64,
    /// False-positive rate (FRR): flagged benign / all benign.
    pub fpr: f64,
}

/// A full ROC curve in ascending-FPR order.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Operating points including the trivial `(0, 0)` and `(1, 1)` ends.
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Area under the curve via the trapezoid rule, in `[0, 1]`
    /// (1 = perfect separation, 0.5 = chance).
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let dx = pair[1].fpr - pair[0].fpr;
            area += dx * 0.5 * (pair[0].tpr + pair[1].tpr);
        }
        area
    }

    /// The operating point closest to the perfect corner `(fpr 0, tpr 1)`.
    pub fn best_point(&self) -> RocPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                let da = a.fpr * a.fpr + (1.0 - a.tpr) * (1.0 - a.tpr);
                let db = b.fpr * b.fpr + (1.0 - b.tpr) * (1.0 - b.tpr);
                da.partial_cmp(&db).expect("rates are finite")
            })
            .expect("curve always has the trivial endpoints")
    }
}

/// Computes the ROC curve of a scored corpus.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] for empty or NaN-bearing
/// score sets.
pub fn roc_curve(
    benign: &[f64],
    attack: &[f64],
    direction: Direction,
) -> Result<RocCurve, DetectError> {
    if benign.is_empty() || attack.is_empty() {
        return Err(DetectError::InvalidCalibration {
            message: "roc needs both benign and attack scores".into(),
        });
    }
    if benign.iter().chain(attack.iter()).any(|s| s.is_nan()) {
        return Err(DetectError::InvalidCalibration { message: "NaN score".into() });
    }

    // Orient so larger oriented-score = more attack-like.
    let orient = |s: f64| match direction {
        Direction::AboveIsAttack => s,
        Direction::BelowIsAttack => -s,
    };
    let mut all: Vec<f64> = benign.iter().chain(attack.iter()).map(|&s| orient(s)).collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("validated"));
    all.dedup();

    let b: Vec<f64> = benign.iter().map(|&s| orient(s)).collect();
    let a: Vec<f64> = attack.iter().map(|&s| orient(s)).collect();
    let rate = |scores: &[f64], t: f64| {
        scores.iter().filter(|&&s| s >= t).count() as f64 / scores.len() as f64
    };

    let mut points = Vec::with_capacity(all.len() + 2);
    // Threshold above every score: nothing flagged.
    points.push(RocPoint { threshold: all[all.len() - 1] + 1.0, tpr: 0.0, fpr: 0.0 });
    for &t in all.iter().rev() {
        points.push(RocPoint { threshold: t, tpr: rate(&a, t), fpr: rate(&b, t) });
    }
    // Threshold below every score: everything flagged.
    points.push(RocPoint { threshold: all[0] - 1.0, tpr: 1.0, fpr: 1.0 });
    Ok(RocCurve { points })
}

/// Computes one ROC curve per requested method from a scored engine
/// corpus, using each method's registry direction. Registry-driven: a
/// newly registered method gains ROC coverage with no change here.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] for an empty corpus, an
/// empty method set, or NaN score columns (e.g. a method the scoring
/// engine had disabled).
pub fn roc_engine_corpus(
    corpus: &EngineCorpus,
    methods: MethodSet,
) -> Result<Vec<(MethodId, RocCurve)>, DetectError> {
    if methods.is_empty() {
        return Err(DetectError::InvalidCalibration {
            message: "roc needs at least one method".into(),
        });
    }
    // One pass over each half builds every requested column at once,
    // instead of re-walking the corpus per method.
    let benign = ScoreColumns::from_vectors(methods, &corpus.benign);
    let attack = ScoreColumns::from_vectors(methods, &corpus.attack);
    methods
        .iter()
        .map(|id| {
            roc_curve(benign.column(id), attack.column(id), id.direction()).map(|curve| (id, curve))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_scores_have_auc_one() {
        let curve = roc_curve(&[1.0, 2.0, 3.0], &[10.0, 11.0], Direction::AboveIsAttack).unwrap();
        assert!((curve.auc() - 1.0).abs() < 1e-12, "auc {}", curve.auc());
        let best = curve.best_point();
        assert_eq!(best.fpr, 0.0);
        assert_eq!(best.tpr, 1.0);
    }

    #[test]
    fn identical_distributions_have_auc_half() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        let curve = roc_curve(&scores, &scores, Direction::AboveIsAttack).unwrap();
        assert!((curve.auc() - 0.5).abs() < 0.13, "auc {}", curve.auc());
    }

    #[test]
    fn inverted_direction_mirrors_curve() {
        // SSIM-style: benign high, attack low.
        let curve = roc_curve(&[0.9, 0.95, 0.99], &[0.1, 0.2], Direction::BelowIsAttack).unwrap();
        assert!((curve.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_in_fpr_and_tpr() {
        let benign = [1.0, 4.0, 2.0, 8.0, 3.0];
        let attack = [5.0, 9.0, 3.5, 12.0];
        let curve = roc_curve(&benign, &attack, Direction::AboveIsAttack).unwrap();
        for pair in curve.points.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr - 1e-12);
            assert!(pair[1].tpr >= pair[0].tpr - 1e-12);
        }
    }

    #[test]
    fn endpoints_are_trivial_classifiers() {
        let curve = roc_curve(&[1.0], &[2.0], Direction::AboveIsAttack).unwrap();
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(roc_curve(&[], &[1.0], Direction::AboveIsAttack).is_err());
        assert!(roc_curve(&[1.0], &[], Direction::AboveIsAttack).is_err());
        assert!(roc_curve(&[f64::NAN], &[1.0], Direction::AboveIsAttack).is_err());
    }

    #[test]
    fn engine_corpus_produces_one_curve_per_method() {
        use crate::method::ScoreVector;
        // Hand-built columns: scaling/mse separates perfectly (above),
        // scaling/ssim separates perfectly in the below direction.
        let mut benign = ScoreVector::splat(f64::NAN);
        benign.set(MethodId::ScalingMse, 1.0);
        benign.set(MethodId::ScalingSsim, 0.95);
        let mut attack = ScoreVector::splat(f64::NAN);
        attack.set(MethodId::ScalingMse, 100.0);
        attack.set(MethodId::ScalingSsim, 0.2);
        let corpus = EngineCorpus { benign: vec![benign], attack: vec![attack] };
        let methods = MethodSet::of(&[MethodId::ScalingMse, MethodId::ScalingSsim]);
        let curves = roc_engine_corpus(&corpus, methods).unwrap();
        assert_eq!(curves.len(), 2);
        for (id, curve) in &curves {
            assert!((curve.auc() - 1.0).abs() < 1e-12, "{id} auc {}", curve.auc());
        }
        assert_eq!(curves[0].0, MethodId::ScalingMse);
        assert_eq!(curves[1].0, MethodId::ScalingSsim);

        // A column the engine never filled (NaN) is rejected, as is an
        // empty method set.
        assert!(roc_engine_corpus(&corpus, MethodSet::of(&[MethodId::Csp])).is_err());
        assert!(roc_engine_corpus(&corpus, MethodSet::empty()).is_err());
    }

    #[test]
    fn overlapping_distributions_have_intermediate_auc() {
        let benign = [1.0, 2.0, 3.0, 4.0, 5.0];
        let attack = [3.0, 4.0, 5.0, 6.0, 7.0];
        let auc = roc_curve(&benign, &attack, Direction::AboveIsAttack).unwrap().auc();
        assert!(auc > 0.5 && auc < 1.0, "auc {auc}");
    }
}
