//! ROC analysis: sweep every threshold and compute the TPR/FPR curve and
//! the area under it.
//!
//! The paper reports point metrics at selected thresholds; the ROC exposes
//! the whole trade-off and gives a threshold-free summary (AUC) used by
//! the sensitivity ablations.

use crate::threshold::Direction;
use crate::DetectError;

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// True-positive rate (recall): flagged attacks / all attacks.
    pub tpr: f64,
    /// False-positive rate (FRR): flagged benign / all benign.
    pub fpr: f64,
}

/// A full ROC curve in ascending-FPR order.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Operating points including the trivial `(0, 0)` and `(1, 1)` ends.
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Area under the curve via the trapezoid rule, in `[0, 1]`
    /// (1 = perfect separation, 0.5 = chance).
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let dx = pair[1].fpr - pair[0].fpr;
            area += dx * 0.5 * (pair[0].tpr + pair[1].tpr);
        }
        area
    }

    /// The operating point closest to the perfect corner `(fpr 0, tpr 1)`.
    pub fn best_point(&self) -> RocPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                let da = a.fpr * a.fpr + (1.0 - a.tpr) * (1.0 - a.tpr);
                let db = b.fpr * b.fpr + (1.0 - b.tpr) * (1.0 - b.tpr);
                da.partial_cmp(&db).expect("rates are finite")
            })
            .expect("curve always has the trivial endpoints")
    }
}

/// Computes the ROC curve of a scored corpus.
///
/// # Errors
///
/// Returns [`DetectError::InvalidCalibration`] for empty or NaN-bearing
/// score sets.
pub fn roc_curve(
    benign: &[f64],
    attack: &[f64],
    direction: Direction,
) -> Result<RocCurve, DetectError> {
    if benign.is_empty() || attack.is_empty() {
        return Err(DetectError::InvalidCalibration {
            message: "roc needs both benign and attack scores".into(),
        });
    }
    if benign.iter().chain(attack.iter()).any(|s| s.is_nan()) {
        return Err(DetectError::InvalidCalibration { message: "NaN score".into() });
    }

    // Orient so larger oriented-score = more attack-like.
    let orient = |s: f64| match direction {
        Direction::AboveIsAttack => s,
        Direction::BelowIsAttack => -s,
    };
    let mut all: Vec<f64> = benign.iter().chain(attack.iter()).map(|&s| orient(s)).collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("validated"));
    all.dedup();

    let b: Vec<f64> = benign.iter().map(|&s| orient(s)).collect();
    let a: Vec<f64> = attack.iter().map(|&s| orient(s)).collect();
    let rate = |scores: &[f64], t: f64| {
        scores.iter().filter(|&&s| s >= t).count() as f64 / scores.len() as f64
    };

    let mut points = Vec::with_capacity(all.len() + 2);
    // Threshold above every score: nothing flagged.
    points.push(RocPoint { threshold: all[all.len() - 1] + 1.0, tpr: 0.0, fpr: 0.0 });
    for &t in all.iter().rev() {
        points.push(RocPoint { threshold: t, tpr: rate(&a, t), fpr: rate(&b, t) });
    }
    // Threshold below every score: everything flagged.
    points.push(RocPoint { threshold: all[0] - 1.0, tpr: 1.0, fpr: 1.0 });
    Ok(RocCurve { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_scores_have_auc_one() {
        let curve = roc_curve(&[1.0, 2.0, 3.0], &[10.0, 11.0], Direction::AboveIsAttack).unwrap();
        assert!((curve.auc() - 1.0).abs() < 1e-12, "auc {}", curve.auc());
        let best = curve.best_point();
        assert_eq!(best.fpr, 0.0);
        assert_eq!(best.tpr, 1.0);
    }

    #[test]
    fn identical_distributions_have_auc_half() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        let curve = roc_curve(&scores, &scores, Direction::AboveIsAttack).unwrap();
        assert!((curve.auc() - 0.5).abs() < 0.13, "auc {}", curve.auc());
    }

    #[test]
    fn inverted_direction_mirrors_curve() {
        // SSIM-style: benign high, attack low.
        let curve = roc_curve(&[0.9, 0.95, 0.99], &[0.1, 0.2], Direction::BelowIsAttack).unwrap();
        assert!((curve.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_in_fpr_and_tpr() {
        let benign = [1.0, 4.0, 2.0, 8.0, 3.0];
        let attack = [5.0, 9.0, 3.5, 12.0];
        let curve = roc_curve(&benign, &attack, Direction::AboveIsAttack).unwrap();
        for pair in curve.points.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr - 1e-12);
            assert!(pair[1].tpr >= pair[0].tpr - 1e-12);
        }
    }

    #[test]
    fn endpoints_are_trivial_classifiers() {
        let curve = roc_curve(&[1.0], &[2.0], Direction::AboveIsAttack).unwrap();
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(roc_curve(&[], &[1.0], Direction::AboveIsAttack).is_err());
        assert!(roc_curve(&[1.0], &[], Direction::AboveIsAttack).is_err());
        assert!(roc_curve(&[f64::NAN], &[1.0], Direction::AboveIsAttack).is_err());
    }

    #[test]
    fn overlapping_distributions_have_intermediate_auc() {
        let benign = [1.0, 2.0, 3.0, 4.0, 5.0];
        let attack = [3.0, 4.0, 5.0, 6.0, 7.0];
        let auc = roc_curve(&benign, &attack, Direction::AboveIsAttack).unwrap().auc();
        assert!(auc > 0.5 && auc < 1.0, "auc {auc}");
    }
}
