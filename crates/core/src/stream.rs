//! Streaming corpus sources: bounded-memory image pipelines.
//!
//! Every pre-existing corpus entry point materialised the whole corpus as
//! a `Vec<Image>` before the first score was computed, so peak memory grew
//! linearly with corpus size. The scaling-attack literature frames
//! detection as a *screening* step in front of a CNN serving pipeline —
//! an unbounded stream of untrusted uploads — which is exactly the shape
//! this module serves:
//!
//! * [`ImageSource`] — a pull-based, fallible iterator of images with an
//!   optional length hint. Adapters exist for in-memory slices
//!   ([`SliceSource`]), index-driven generators ([`FnSource`]) and
//!   directory walks ([`DirectorySource`] — the single home of the CLI's
//!   previously duplicated listing/decode logic).
//! * [`BufferPool`] — a small bounded store of recycled sample buffers.
//!   Sources draw construction buffers from it and the chunk driver
//!   returns scored images to it, killing steady-state allocation once
//!   the pool is warm.
//! * [`ChunkDriver`] — pulls up to `chunk_size` items at a time and hands
//!   each chunk to a caller-supplied fan-out
//!   ([`DetectionEngine::score_stream`](crate::DetectionEngine::score_stream)
//!   is the canonical consumer). At no point are more than
//!   `chunk_size` decoded images plus `pool_capacity` recycled buffers
//!   resident, regardless of corpus length.
//!
//! Items are pulled on the caller thread (sources are `&mut`, not
//! `Sync`); a panic inside a pull is caught immediately and converted to
//! the same [`ScoreError::panicked`] a worker-side panic would produce,
//! so streamed scoring stays bit-identical to the eager batch path — the
//! eager APIs are now thin facades over a slice- or closure-backed
//! source, and `stream_equivalence` proves the identity property-wise.
//!
//! Telemetry (all resolved once at driver construction):
//! `decam_stream_chunks_total`, `decam_stream_in_flight_images`,
//! `decam_stream_peak_chunk`, and the buffer-pool
//! `decam_stream_buffer_pool_{hits,misses}_total` counters.

use crate::error::{ScoreError, ScoreFault};
use crate::parallel::default_threads;
use crate::DetectError;
use decamouflage_imaging::codec::{decode_auto_into, ImageFormat};
use decamouflage_imaging::Image;
use decamouflage_telemetry::{Counter, Gauge, HistogramHandle, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One pulled stream item: a decoded image, or the structured error that
/// explains why this position of the stream could not produce one.
pub type SourceItem = Result<Image, ScoreError>;

/// A pull-based stream of images.
///
/// `next_image` returns `None` when the stream is exhausted; before that,
/// every call yields either a decoded [`Image`] or a [`ScoreError`]
/// describing why this *position* failed (an unreadable file, a failed
/// synthesis, …). Failed positions still consume a stream index, so
/// consumers can account for them precisely.
///
/// Sources may draw construction buffers from the passed [`BufferPool`];
/// sources that cannot reuse buffers (e.g. file decoders that allocate
/// internally) simply ignore it.
pub trait ImageSource {
    /// Pulls the next item, or `None` at end of stream.
    fn next_image(&mut self, pool: &mut BufferPool) -> Option<SourceItem>;

    /// Number of items remaining, where the source knows it. Unbounded or
    /// unknown-length sources return `None`.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// A small bounded store of recycled `f64` sample buffers.
///
/// [`take`](BufferPool::take) pops a warm buffer (resized to the
/// requested sample count) or allocates on a miss;
/// [`recycle`](BufferPool::recycle) returns an image's buffer if the pool
/// is below capacity and drops it otherwise, so the pool can never grow
/// past `capacity` buffers. Hits and misses are counted on
/// `decam_stream_buffer_pool_hits_total` /
/// `decam_stream_buffer_pool_misses_total`.
#[derive(Debug)]
pub struct BufferPool {
    buffers: Vec<Vec<f64>>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` recycled buffers,
    /// counting hits/misses on the process-global telemetry handle.
    pub fn new(capacity: usize) -> Self {
        Self::with_telemetry(capacity, &decamouflage_telemetry::global())
    }

    /// Creates a pool recording its hit/miss counters on `telemetry`.
    pub fn with_telemetry(capacity: usize, telemetry: &Telemetry) -> Self {
        Self {
            buffers: Vec::with_capacity(capacity.min(64)),
            capacity,
            hits: telemetry.counter("decam_stream_buffer_pool_hits_total", &[]),
            misses: telemetry.counter("decam_stream_buffer_pool_misses_total", &[]),
        }
    }

    /// A buffer of exactly `samples` zeroed-or-stale `f64`s — recycled
    /// when the pool has one, freshly allocated otherwise. Callers
    /// overwrite every sample, so stale contents are fine.
    pub fn take(&mut self, samples: usize) -> Vec<f64> {
        match self.buffers.pop() {
            Some(mut buffer) => {
                self.hits.inc();
                buffer.resize(samples, 0.0);
                buffer
            }
            None => {
                self.misses.inc();
                vec![0.0; samples]
            }
        }
    }

    /// Returns an image's plane buffers to the pool; planes past the
    /// capacity are dropped. Each plane is recycled individually, so a
    /// retired RGB image can later serve three Gray decodes (or one RGB
    /// decode requesting three planes).
    pub fn recycle(&mut self, image: Image) {
        for plane in image.into_planes() {
            if self.buffers.len() >= self.capacity {
                break;
            }
            self.buffers.push(plane);
        }
    }

    /// Number of buffers currently pooled.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether the pool holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Maximum number of buffers the pool retains.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A cooperative cancellation/deadline token for streamed scoring.
///
/// The token is the deadline hook of the service path: a request handler
/// arms one with its per-request deadline
/// ([`CancelToken::expiring_in`]) and passes it through
/// [`StreamConfig::with_cancel`]; the [`ChunkDriver`] then checks it
/// **between pipeline stages** — before every chunk (or item) pull — and
/// stops pulling once it has expired. In-flight work always finishes (a
/// slot is quarantined or scored, never leaked mid-computation); only
/// *new* work is refused, and [`StreamSummary::cancelled`] reports that
/// the stream ended early.
///
/// Clones share the cancellation flag, so [`CancelToken::cancel`] from
/// any thread (e.g. a drain sequence) trips every holder. The deadline is
/// per-token state fixed at construction.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; it only expires via
    /// [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that expires at the absolute `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self { cancelled: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// A token that expires `timeout` from now.
    pub fn expiring_in(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Trips the token immediately; every clone observes it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token was cancelled or its deadline has passed.
    pub fn is_expired(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
            || self.deadline.is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Time left before the deadline: `None` without one, zero once past.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    /// The absolute deadline, where one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// Chunking parameters for streamed scoring.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Images pulled (and resident) per fan-out; the bounded-memory knob.
    pub chunk_size: usize,
    /// Worker threads for each chunk's fan-out.
    pub threads: usize,
    /// Maximum recycled buffers kept by the driver's [`BufferPool`].
    pub pool_capacity: usize,
    /// Cooperative deadline/cancellation checked between stages; `None`
    /// streams to exhaustion.
    pub cancel: Option<CancelToken>,
}

impl Default for StreamConfig {
    /// 64-image chunks, [`default_threads`] workers, an 8-buffer pool,
    /// no deadline.
    fn default() -> Self {
        Self { chunk_size: 64, threads: default_threads(), pool_capacity: 8, cancel: None }
    }
}

impl StreamConfig {
    /// Builder: overrides the chunk size (clamped to at least 1).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Builder: overrides the per-chunk worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder: overrides the buffer-pool capacity (0 disables recycling).
    #[must_use]
    pub fn with_pool_capacity(mut self, pool_capacity: usize) -> Self {
        self.pool_capacity = pool_capacity;
        self
    }

    /// Builder: arms a cooperative [`CancelToken`] checked between
    /// pipeline stages (before every chunk/item pull).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// Aggregate result of one streamed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamSummary {
    /// Total stream items pulled (scored + failed positions).
    pub items: usize,
    /// Chunks fanned out.
    pub chunks: usize,
    /// Largest chunk pulled — the peak number of decoded images resident
    /// at once (excluding the bounded buffer pool).
    pub peak_chunk: usize,
    /// Whether the stream stopped early because its
    /// [`CancelToken`] expired (deadline passed or explicit cancel);
    /// positions after the cut were never pulled.
    pub cancelled: bool,
}

/// Pre-resolved telemetry handles for the streaming path (the
/// `EngineMetrics` pattern: resolve `(name, labels)` once, keep the hot
/// loop free of registry lookups).
#[derive(Debug)]
struct StreamMetrics {
    /// `decam_stream_chunks_total`: chunks fanned out.
    chunks_total: Counter,
    /// `decam_stream_in_flight_images`: decoded images currently held by
    /// the driver (pulled but not yet recycled/consumed).
    in_flight: Gauge,
    /// `decam_stream_peak_chunk`: largest chunk pulled so far.
    peak_chunk: Gauge,
    /// `decam_stream_cancelled_total`: streams that stopped early on an
    /// expired [`CancelToken`].
    cancelled_total: Counter,
}

impl StreamMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            chunks_total: telemetry.counter("decam_stream_chunks_total", &[]),
            in_flight: telemetry.gauge("decam_stream_in_flight_images", &[]),
            peak_chunk: telemetry.gauge("decam_stream_peak_chunk", &[]),
            cancelled_total: telemetry.counter("decam_stream_cancelled_total", &[]),
        }
    }
}

/// One pulled chunk, ready for a worker-pool fan-out.
///
/// Slots are handed out through interior mutability so a `Fn(usize)`
/// fan-out closure (shared across workers) can move each pulled item into
/// exactly one worker: [`Chunk::take`] locks slot `offset`, takes the
/// item, and drops the lock before any scoring work runs — each slot is
/// touched exactly once, so there is no contention.
#[derive(Debug)]
pub struct Chunk {
    base: usize,
    slots: Vec<Mutex<Option<SourceItem>>>,
}

impl Chunk {
    /// The stream index of the chunk's first item.
    pub const fn base(&self) -> usize {
        self.base
    }

    /// Number of items in the chunk.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the chunk holds no items.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Moves the item at `offset` out of the chunk.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already taken — each offset must be claimed
    /// by exactly one worker.
    pub fn take(&self, offset: usize) -> SourceItem {
        self.slots[offset]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("each chunk slot is taken exactly once")
    }
}

/// Pulls an [`ImageSource`] in bounded chunks, owning the buffer pool and
/// the stream telemetry. The driver is deliberately scoring-agnostic:
/// [`DetectionEngine::score_stream`](crate::DetectionEngine::score_stream)
/// and the bench corpus loader both fan chunks out through it.
pub struct ChunkDriver<'a> {
    source: &'a mut dyn ImageSource,
    pool: BufferPool,
    chunk_size: usize,
    metrics: StreamMetrics,
    cancel: Option<CancelToken>,
    cancelled: bool,
    next_index: usize,
    chunks: usize,
    peak_chunk: usize,
}

impl<'a> ChunkDriver<'a> {
    /// Wraps `source` with the chunking parameters of `config`, recording
    /// stream telemetry on `telemetry`.
    pub fn new(
        source: &'a mut dyn ImageSource,
        config: &StreamConfig,
        telemetry: &Telemetry,
    ) -> Self {
        Self {
            source,
            pool: BufferPool::with_telemetry(config.pool_capacity, telemetry),
            chunk_size: config.chunk_size.max(1),
            metrics: StreamMetrics::new(telemetry),
            cancel: config.cancel.clone(),
            cancelled: false,
            next_index: 0,
            chunks: 0,
            peak_chunk: 0,
        }
    }

    /// The cooperative stage boundary: once the armed [`CancelToken`] has
    /// expired, every subsequent pull refuses to start (returning `true`
    /// here) and the stream ends early with
    /// [`StreamSummary::cancelled`] set. The expiry is latched so the
    /// clock is read at most once per pull and never again after the
    /// first trip.
    fn expired(&mut self) -> bool {
        if !self.cancelled && self.cancel.as_ref().is_some_and(CancelToken::is_expired) {
            self.cancelled = true;
            self.metrics.cancelled_total.inc();
        }
        self.cancelled
    }

    /// Pulls up to `chunk_size` items, or `None` at end of stream.
    ///
    /// A panic inside a source pull is caught here, on the caller thread,
    /// and stored as the slot's [`ScoreError::panicked`] — exactly the
    /// error the eager path produces when an image constructor panics
    /// inside a worker, which is what keeps streamed and eager scoring
    /// bit-identical under faults.
    pub fn next_chunk(&mut self) -> Option<Chunk> {
        if self.expired() {
            return None;
        }
        let base = self.next_index;
        let mut slots = Vec::with_capacity(
            self.chunk_size.min(self.source.len_hint().unwrap_or(self.chunk_size)),
        );
        while slots.len() < self.chunk_size {
            let index = base + slots.len();
            let pulled =
                match catch_unwind(AssertUnwindSafe(|| self.source.next_image(&mut self.pool))) {
                    Ok(None) => break,
                    Ok(Some(item)) => item.map_err(|err| err.at_index(index)),
                    Err(payload) => Err(ScoreError::panicked(index, payload)),
                };
            slots.push(Mutex::new(Some(pulled)));
        }
        if slots.is_empty() {
            return None;
        }
        self.next_index = base + slots.len();
        self.chunks += 1;
        self.peak_chunk = self.peak_chunk.max(slots.len());
        self.metrics.chunks_total.inc();
        self.metrics.in_flight.set(slots.len() as f64);
        self.metrics.peak_chunk.set(self.peak_chunk as f64);
        Some(Chunk { base, slots })
    }

    /// Pulls a single item — the sequential fast path used when only one
    /// participant scores the stream. Staging a whole chunk buys nothing
    /// without workers to fan it out to, and costs real memory traffic:
    /// every staged image is cache-cold by the time it scores and the
    /// staged chunk evicts the scorer's working set. Pull panics are
    /// caught exactly as in [`ChunkDriver::next_chunk`], and the chunk
    /// accounting (chunk count, peak size, telemetry) advances as if the
    /// items had been staged `chunk_size` at a time, so
    /// [`StreamSummary`] is identical between the two drive modes.
    pub fn next_item(&mut self) -> Option<(usize, Result<Image, ScoreError>)> {
        if self.expired() {
            return None;
        }
        let index = self.next_index;
        let pulled = match catch_unwind(AssertUnwindSafe(|| self.source.next_image(&mut self.pool)))
        {
            Ok(None) => return None,
            Ok(Some(item)) => item.map_err(|err| err.at_index(index)),
            Err(payload) => Err(ScoreError::panicked(index, payload)),
        };
        let position_in_chunk = index % self.chunk_size;
        if position_in_chunk == 0 {
            self.chunks += 1;
            self.metrics.chunks_total.inc();
        }
        self.next_index = index + 1;
        self.peak_chunk = self.peak_chunk.max(position_in_chunk + 1);
        self.metrics.in_flight.set(1.0);
        self.metrics.peak_chunk.set(self.peak_chunk as f64);
        Some((index, pulled))
    }

    /// Marks the item handed out by [`ChunkDriver::next_item`] as scored
    /// (drops the in-flight gauge back to zero).
    pub fn item_done(&mut self) {
        self.metrics.in_flight.set(0.0);
    }

    /// Returns a scored image's buffer to the pool.
    pub fn recycle(&mut self, image: Image) {
        self.pool.recycle(image);
    }

    /// Marks a fanned-out chunk as fully consumed (drops the in-flight
    /// gauge back to zero). Call after every slot has been taken and
    /// either recycled or dropped.
    pub fn finish_chunk(&mut self) {
        self.metrics.in_flight.set(0.0);
    }

    /// The driver's buffer pool (e.g. to check residency bounds).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Aggregate counters of the run so far.
    pub fn summary(&self) -> StreamSummary {
        StreamSummary {
            items: self.next_index,
            chunks: self.chunks,
            peak_chunk: self.peak_chunk,
            cancelled: self.cancelled,
        }
    }
}

/// An [`ImageSource`] over an in-memory slice: items are cloned through
/// the buffer pool in slice order. The adapter behind the eager facades —
/// scoring it streamed is bit-identical to scoring the slice eagerly.
#[derive(Debug)]
pub struct SliceSource<'a> {
    images: &'a [Image],
    next: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams `images` in order.
    pub fn new(images: &'a [Image]) -> Self {
        Self { images, next: 0 }
    }
}

impl ImageSource for SliceSource<'_> {
    fn next_image(&mut self, pool: &mut BufferPool) -> Option<SourceItem> {
        let image = self.images.get(self.next)?;
        self.next += 1;
        let planes: Vec<Vec<f64>> = image
            .planes()
            .iter()
            .map(|src| {
                let mut data = pool.take(src.len());
                data.copy_from_slice(src);
                data
            })
            .collect();
        Some(
            Image::from_planes(image.width(), image.height(), image.channels(), planes)
                .map_err(|err| ScoreError::new(ScoreFault::Detect(err.into()))),
        )
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.images.len() - self.next)
    }
}

/// An [`ImageSource`] driven by an `index -> Image` closure — the adapter
/// for synthetic generators (the `datasets` crate wraps its
/// `SampleGenerator` in one of these) and for the engine's eager
/// closure-based corpus facades.
pub struct FnSource<F> {
    make: F,
    next: u64,
    count: usize,
}

impl<F: FnMut(u64) -> Image> FnSource<F> {
    /// Streams `make(0), make(1), …, make(count - 1)`.
    pub fn new(count: usize, make: F) -> Self {
        Self { make, next: 0, count }
    }
}

impl<F> std::fmt::Debug for FnSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSource").field("next", &self.next).field("count", &self.count).finish()
    }
}

impl<F: FnMut(u64) -> Image> ImageSource for FnSource<F> {
    fn next_image(&mut self, _pool: &mut BufferPool) -> Option<SourceItem> {
        if self.next as usize >= self.count {
            return None;
        }
        let index = self.next;
        self.next += 1;
        Some(Ok((self.make)(index)))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.count - self.next as usize)
    }
}

/// Offset basis of the 64-bit FNV-1a hash.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Prime of the 64-bit FNV-1a hash.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable, dependency-free 64-bit FNV-1a hash of a shard key.
///
/// This is the *only* hash the shard partitioner uses. It is fixed for
/// all time: shard membership is part of the on-disk checkpoint contract
/// (shard k of N must select the same files on every machine and in
/// every release), so the function must never be swapped for
/// `DefaultHasher` or any seed-randomised hasher.
pub fn stable_key_hash(key: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A deterministic 1-of-N partition of a keyed corpus: shard `index`
/// owns exactly the keys whose [`stable_key_hash`] lands on it modulo
/// `count`.
///
/// Membership depends only on the key string — not on listing order,
/// corpus size, or the machine — so N processes given shards `1/N`
/// through `N/N` of the same directory cover it exactly once, and the
/// same shard can be re-derived later to resume a checkpoint.
///
/// Shards render and parse as `k/N` with a 1-based `k` (the on-disk and
/// CLI form); in code [`index`](ShardSpec::index) is 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// A shard with 0-based `index` out of `count`.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] when `count` is zero or `index` is
    /// out of range.
    pub fn new(index: usize, count: usize) -> Result<Self, DetectError> {
        if count == 0 {
            return Err(DetectError::InvalidConfig {
                message: "shard count must be at least 1".into(),
            });
        }
        if index >= count {
            return Err(DetectError::InvalidConfig {
                message: format!("shard index {index} out of range for {count} shards"),
            });
        }
        Ok(Self { index, count })
    }

    /// The trivial partition: one shard owning every key (`1/1`).
    pub const fn full() -> Self {
        Self { index: 0, count: 1 }
    }

    /// Parses the CLI/on-disk form `k/N` (1-based `k`, `1 <= k <= N`).
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] on malformed text or out-of-range
    /// values.
    pub fn parse(text: &str) -> Result<Self, DetectError> {
        let invalid = || DetectError::InvalidConfig {
            message: format!("shard spec {text:?} is not of the form k/N with 1 <= k <= N"),
        };
        let (k, n) = text.split_once('/').ok_or_else(invalid)?;
        let k: usize = k.trim().parse().map_err(|_| invalid())?;
        let n: usize = n.trim().parse().map_err(|_| invalid())?;
        if k == 0 || k > n {
            return Err(invalid());
        }
        Self::new(k - 1, n)
    }

    /// The shard's 0-based index.
    pub const fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards in the partition.
    pub const fn count(&self) -> usize {
        self.count
    }

    /// Whether this is the trivial full partition (`1/1`).
    pub const fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether `key` belongs to this shard.
    pub fn admits(&self, key: &str) -> bool {
        stable_key_hash(key) % self.count as u64 == self.index as u64
    }

    /// The (0-based, ascending) positions of the admitted keys within
    /// `keys` — the shard's view of a corpus listed in canonical order.
    pub fn partition<I>(&self, keys: I) -> Vec<usize>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        keys.into_iter()
            .enumerate()
            .filter_map(|(index, key)| self.admits(key.as_ref()).then_some(index))
            .collect()
    }
}

impl std::fmt::Display for ShardSpec {
    /// Renders the 1-based `k/N` form used on disk and on the CLI.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

/// An [`ImageSource`] adapter restricting any inner source to one
/// [`ShardSpec`] shard, with optional resume positioning — the generic
/// counterpart of [`DirectorySource::restrict_to_shard`] so slice/fn
/// sources shard identically in tests.
///
/// Keys come from a caller-supplied `inner index -> key` closure, which
/// must produce the same canonical keys on every run. Because the inner
/// source is pull-based, non-admitted items still have to be *pulled*
/// (then recycled straight into the buffer pool); sources that can cheap
/// skip by path — [`DirectorySource`] — should restrict their listing
/// instead.
pub struct ShardedSource<S, F> {
    inner: S,
    spec: ShardSpec,
    key_of: F,
    next: usize,
    skip_admitted: usize,
}

impl<S: ImageSource, F: FnMut(usize) -> String> ShardedSource<S, F> {
    /// Restricts `inner` to the keys `spec` admits, keying inner stream
    /// index `i` as `key_of(i)`.
    pub fn new(inner: S, spec: ShardSpec, key_of: F) -> Self {
        Self { inner, spec, key_of, next: 0, skip_admitted: 0 }
    }

    /// Builder: additionally drops the first `admitted` items *of this
    /// shard* — resume positioning after a checkpoint recorded that many
    /// completed positions.
    #[must_use]
    pub fn skipping(mut self, admitted: usize) -> Self {
        self.skip_admitted = admitted;
        self
    }
}

impl<S, F> std::fmt::Debug for ShardedSource<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSource")
            .field("spec", &self.spec)
            .field("next", &self.next)
            .field("skip_admitted", &self.skip_admitted)
            .finish()
    }
}

impl<S: ImageSource, F: FnMut(usize) -> String> ImageSource for ShardedSource<S, F> {
    fn next_image(&mut self, pool: &mut BufferPool) -> Option<SourceItem> {
        loop {
            let index = self.next;
            let item = self.inner.next_image(pool)?;
            self.next += 1;
            let admitted = self.spec.admits(&(self.key_of)(index));
            let skipped = admitted && self.skip_admitted > 0;
            if skipped {
                self.skip_admitted -= 1;
            }
            if admitted && !skipped {
                return Some(item);
            }
            if let Ok(image) = item {
                pool.recycle(image);
            }
        }
    }
}

/// Extensions the directory walk admits, lowercased. Dispatch to a
/// codec happens by magic bytes ([`decamouflage_imaging::codec::sniff`]),
/// not extension — the extension only gates which files are listed.
const IMAGE_EXTENSIONS: [&str; 7] = ["pgm", "ppm", "pnm", "bmp", "png", "jpg", "jpeg"];

/// Pre-resolved `decam_codec_decode_total{format, outcome}` counters —
/// one ok/error pair per sniffable format plus an `unknown` error
/// counter for bytes no codec claims.
#[derive(Debug)]
struct DecodeCounters {
    ok: [Counter; 4],
    error: [Counter; 4],
    unknown: Counter,
}

impl DecodeCounters {
    fn new(telemetry: &Telemetry) -> Self {
        let resolve = |format: ImageFormat, outcome: &str| {
            telemetry.counter(
                "decam_codec_decode_total",
                &[("format", format.name()), ("outcome", outcome)],
            )
        };
        Self {
            ok: ImageFormat::ALL.map(|f| resolve(f, "ok")),
            error: ImageFormat::ALL.map(|f| resolve(f, "error")),
            unknown: telemetry.counter(
                "decam_codec_decode_total",
                &[("format", "unknown"), ("outcome", "error")],
            ),
        }
    }

    fn record_ok(&self, format: ImageFormat) {
        self.ok[Self::slot(format)].inc();
    }

    fn record_error(&self, format: Option<ImageFormat>) {
        match format {
            Some(f) => self.error[Self::slot(f)].inc(),
            None => self.unknown.inc(),
        }
    }

    const fn slot(format: ImageFormat) -> usize {
        match format {
            ImageFormat::Bmp => 0,
            ImageFormat::Pnm => 1,
            ImageFormat::Png => 2,
            ImageFormat::Jpeg => 3,
        }
    }
}

/// An [`ImageSource`] over the image files of one directory — the single
/// home of the listing/decode logic the CLI previously duplicated between
/// `read_dir_images` and `scan`'s inline walk.
///
/// [`open`](DirectorySource::open) lists the directory once, keeps the
/// `.pgm`/`.ppm`/`.pnm`/`.bmp` entries in sorted path order, and fails on
/// an unlistable or image-free directory. Decoding happens lazily, one
/// file per pull; a file that fails to decode yields a
/// [`ScoreFault::Unreadable`] item (consuming its stream index, so
/// [`paths`](DirectorySource::paths)`[index]` always names the file an
/// item came from) instead of aborting the stream. Decode latency is
/// recorded on `decam_engine_stage_seconds{stage="decode"}`.
#[derive(Debug)]
pub struct DirectorySource {
    paths: Vec<PathBuf>,
    next: usize,
    decode_seconds: HistogramHandle,
    decode_counters: DecodeCounters,
}

impl DirectorySource {
    /// Lists `dir` and prepares a sorted stream over its image files.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] when the directory cannot be listed
    /// or contains no image files with an admitted extension.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DetectError> {
        Self::with_telemetry(dir, &decamouflage_telemetry::global())
    }

    /// [`open`](DirectorySource::open) with an explicit telemetry handle
    /// for the decode-stage histogram.
    pub fn with_telemetry(
        dir: impl AsRef<Path>,
        telemetry: &Telemetry,
    ) -> Result<Self, DetectError> {
        let dir = dir.as_ref();
        let shown = dir.display();
        let invalid = |message: String| DetectError::InvalidConfig { message };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| invalid(format!("cannot list {shown}: {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension()
                    .and_then(|e| e.to_str())
                    .map(str::to_ascii_lowercase)
                    .is_some_and(|ext| IMAGE_EXTENSIONS.contains(&ext.as_str()))
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(invalid(format!(
                "no .pgm/.ppm/.pnm/.bmp/.png/.jpg/.jpeg images in {shown}"
            )));
        }
        Ok(Self {
            paths,
            next: 0,
            decode_seconds: telemetry
                .histogram("decam_engine_stage_seconds", &[("stage", "decode")]),
            decode_counters: DecodeCounters::new(telemetry),
        })
    }

    /// The files of the stream, in pull order; stream index `i`
    /// corresponds to `paths()[i]`.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Number of files in the stream (readable or not).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the stream has no files (never true after `open`, but a
    /// [`restrict_to_shard`](DirectorySource::restrict_to_shard) may own
    /// no files of a small corpus).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The canonical shard key of one listed file: its file name (the
    /// canonical relative path — listings are single-directory), lossily
    /// UTF-8 decoded so the key is identical across platforms.
    fn shard_key(path: &Path) -> String {
        path.file_name().map(|name| name.to_string_lossy().into_owned()).unwrap_or_default()
    }

    /// The shard keys of every listed file, in pull order — the corpus
    /// key list that [`ShardSpec::partition`] and the checkpoint corpus
    /// fingerprint operate on.
    pub fn shard_keys(&self) -> Vec<String> {
        self.paths.iter().map(|path| Self::shard_key(path)).collect()
    }

    /// Drops every file `spec` does not admit, returning the kept files'
    /// original (0-based, ascending) listing positions — the map from
    /// shard-local stream index back to corpus-global index. Unlike the
    /// generic [`ShardedSource`], this skips by path: non-admitted files
    /// are never opened or decoded.
    ///
    /// # Panics
    ///
    /// Panics if any item was already pulled — the shard restriction
    /// must be applied before streaming starts.
    pub fn restrict_to_shard(&mut self, spec: ShardSpec) -> Vec<usize> {
        assert_eq!(self.next, 0, "restrict_to_shard must precede the first pull");
        let mut kept = Vec::new();
        self.paths = std::mem::take(&mut self.paths)
            .into_iter()
            .enumerate()
            .filter_map(|(index, path)| {
                spec.admits(&Self::shard_key(&path)).then(|| {
                    kept.push(index);
                    path
                })
            })
            .collect();
        kept
    }

    /// Advances the stream past its next `n` files without opening or
    /// decoding them — resume positioning after a checkpoint reload.
    pub fn skip(&mut self, n: usize) {
        self.next = (self.next + n).min(self.paths.len());
    }
}

impl ImageSource for DirectorySource {
    fn next_image(&mut self, pool: &mut BufferPool) -> Option<SourceItem> {
        let path = self.paths.get(self.next)?;
        self.next += 1;
        let _decode = self.decode_seconds.span();
        let unreadable = |e: &dyn std::fmt::Display| {
            ScoreError::new(ScoreFault::Unreadable {
                message: format!("cannot read {}: {e}", path.display()),
            })
        };
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                self.decode_counters.record_error(None);
                return Some(Err(unreadable(&e)));
            }
        };
        // Dispatch by magic bytes, not extension; decode into a pooled
        // buffer so steady-state streaming stops allocating.
        let format = decamouflage_imaging::codec::sniff(&bytes);
        match decode_auto_into(&bytes, &mut |n| pool.take(n)) {
            Ok((format, image)) => {
                self.decode_counters.record_ok(format);
                Some(Ok(image))
            }
            Err(e) => {
                self.decode_counters.record_error(format);
                let message = format!("cannot read {}: {e}", path.display());
                let fault = match e {
                    decamouflage_imaging::ImagingError::Unsupported { .. } => {
                        ScoreFault::UnsupportedFormat { message }
                    }
                    _ => ScoreFault::Unreadable { message },
                };
                Some(Err(ScoreError::new(fault)))
            }
        }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.paths.len() - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::codec::write_pnm_file;
    use decamouflage_imaging::Channels;

    fn flat(v: f64) -> Image {
        Image::filled(4, 3, Channels::Gray, v)
    }

    fn drain(source: &mut dyn ImageSource, pool: &mut BufferPool) -> Vec<SourceItem> {
        let mut items = Vec::new();
        while let Some(item) = source.next_image(pool) {
            items.push(item);
        }
        items
    }

    #[test]
    fn buffer_pool_recycles_up_to_capacity() {
        let telemetry = Telemetry::enabled();
        let mut pool = BufferPool::with_telemetry(2, &telemetry);
        assert_eq!(pool.capacity(), 2);
        let miss = pool.take(12);
        assert_eq!(miss.len(), 12);
        pool.recycle(flat(1.0));
        pool.recycle(flat(2.0));
        pool.recycle(flat(3.0)); // over capacity: dropped
        assert_eq!(pool.len(), 2);
        let hit = pool.take(5);
        assert_eq!(hit.len(), 5, "recycled buffers are resized to the request");
        assert!(!pool.is_empty());
        assert_eq!(telemetry.counter("decam_stream_buffer_pool_hits_total", &[]).value(), 1);
        assert_eq!(telemetry.counter("decam_stream_buffer_pool_misses_total", &[]).value(), 1);
    }

    #[test]
    fn slice_source_round_trips_images_through_the_pool() {
        let images = vec![flat(7.0), flat(9.0)];
        let mut source = SliceSource::new(&images);
        assert_eq!(source.len_hint(), Some(2));
        let mut pool = BufferPool::with_telemetry(4, &Telemetry::disabled());
        let items = drain(&mut source, &mut pool);
        assert_eq!(items.len(), 2);
        for (item, original) in items.iter().zip(&images) {
            assert_eq!(item.as_ref().unwrap().planes(), original.planes());
        }
        assert_eq!(source.len_hint(), Some(0));
    }

    #[test]
    fn fn_source_counts_and_hints() {
        let mut source = FnSource::new(3, |i| flat(i as f64));
        assert_eq!(source.len_hint(), Some(3));
        let mut pool = BufferPool::with_telemetry(0, &Telemetry::disabled());
        let items = drain(&mut source, &mut pool);
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].as_ref().unwrap().plane(0)[0], 2.0);
        assert!(format!("{source:?}").contains("FnSource"));
    }

    #[test]
    fn chunk_driver_bounds_residency_and_counts_chunks() {
        let telemetry = Telemetry::enabled();
        let mut source = FnSource::new(7, |i| flat(i as f64));
        let config = StreamConfig::default().with_chunk_size(3).with_pool_capacity(2);
        let mut driver = ChunkDriver::new(&mut source, &config, &telemetry);
        let mut seen = Vec::new();
        while let Some(chunk) = driver.next_chunk() {
            assert!(chunk.len() <= 3);
            assert!(!chunk.is_empty());
            for offset in 0..chunk.len() {
                let image = chunk.take(offset).unwrap();
                seen.push((chunk.base() + offset, image.plane(0)[0]));
                driver.recycle(image);
            }
            driver.finish_chunk();
        }
        let summary = driver.summary();
        assert_eq!(summary.items, 7);
        assert_eq!(summary.chunks, 3, "7 items in chunks of 3");
        assert_eq!(summary.peak_chunk, 3);
        assert_eq!(seen, (0..7).map(|i| (i, i as f64)).collect::<Vec<_>>());
        assert!(driver.pool().len() <= 2, "pool stays within capacity");
        assert_eq!(telemetry.counter("decam_stream_chunks_total", &[]).value(), 3);
        assert_eq!(telemetry.gauge("decam_stream_peak_chunk", &[]).value(), 3.0);
        assert_eq!(telemetry.gauge("decam_stream_in_flight_images", &[]).value(), 0.0);
    }

    #[test]
    fn chunk_driver_converts_pull_panics_into_slot_errors() {
        let mut source = FnSource::new(3, |i| {
            if i == 1 {
                panic!("generator exploded at {i}");
            }
            flat(i as f64)
        });
        let config = StreamConfig::default().with_chunk_size(8);
        let mut driver = ChunkDriver::new(&mut source, &config, &Telemetry::disabled());
        let chunk = driver.next_chunk().unwrap();
        assert_eq!(chunk.len(), 3, "a pull panic consumes its index, not the stream");
        assert!(chunk.take(0).is_ok());
        let err = chunk.take(1).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.is_panic(), "pull panics surface as ScoreError::panicked: {err}");
        assert!(chunk.take(2).is_ok());
        driver.finish_chunk();
        assert!(driver.next_chunk().is_none());
    }

    #[test]
    #[should_panic(expected = "taken exactly once")]
    fn chunk_slots_are_single_take() {
        let mut source = FnSource::new(1, |_| flat(0.0));
        let mut driver =
            ChunkDriver::new(&mut source, &StreamConfig::default(), &Telemetry::disabled());
        let chunk = driver.next_chunk().unwrap();
        let _first = chunk.take(0);
        let _second = chunk.take(0);
    }

    #[test]
    fn directory_source_streams_sorted_decodes_and_flags_unreadables() {
        let dir = std::env::temp_dir().join(format!("decam-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_pnm_file(&flat(10.0), dir.join("b.pgm")).unwrap();
        write_pnm_file(&flat(20.0), dir.join("a.pgm")).unwrap();
        // No codec claims these bytes: the typed wrong-file-type fault.
        std::fs::write(dir.join("c.bmp"), b"not a bitmap").unwrap();
        // A claimed format that is structurally broken: unreadable.
        std::fs::write(dir.join("d.pgm"), b"P5\nbroken header").unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();

        let mut source = DirectorySource::open(&dir).unwrap();
        assert_eq!(source.len(), 4);
        assert!(!source.is_empty());
        let names: Vec<_> =
            source.paths().iter().map(|p| p.file_name().unwrap().to_owned()).collect();
        assert_eq!(names, ["a.pgm", "b.pgm", "c.bmp", "d.pgm"], "sorted, extension-filtered");

        let mut pool = BufferPool::with_telemetry(0, &Telemetry::disabled());
        let items = drain(&mut source, &mut pool);
        assert_eq!(items[0].as_ref().unwrap().plane(0)[0], 20.0, "a.pgm first");
        assert_eq!(items[1].as_ref().unwrap().plane(0)[0], 10.0);
        let err = items[2].as_ref().unwrap_err();
        assert!(matches!(err.cause, ScoreFault::UnsupportedFormat { .. }), "{err}");
        assert!(err.to_string().contains("c.bmp"), "{err}");
        let err = items[3].as_ref().unwrap_err();
        assert!(matches!(err.cause, ScoreFault::Unreadable { .. }), "{err}");
        assert!(err.to_string().contains("d.pgm"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
        assert!(DirectorySource::open(&dir).is_err(), "unlistable directory");
        std::fs::create_dir_all(&dir).unwrap();
        let err = DirectorySource::open(&dir).unwrap_err();
        assert!(err.to_string().contains("no .pgm/.ppm/.pnm/.bmp/.png/.jpg/.jpeg images"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cancel_token_expires_by_deadline_and_by_cancel() {
        let token = CancelToken::new();
        assert!(!token.is_expired());
        assert_eq!(token.remaining(), None);
        assert_eq!(token.deadline(), None);
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_expired(), "clones share the cancellation flag");

        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_expired());
        assert_eq!(expired.remaining(), Some(Duration::ZERO));

        let live = CancelToken::expiring_in(Duration::from_secs(3600));
        assert!(!live.is_expired());
        assert!(live.remaining().unwrap() > Duration::from_secs(3000));
        assert!(live.deadline().is_some());
    }

    #[test]
    fn expired_token_stops_the_driver_between_chunks() {
        let telemetry = Telemetry::enabled();
        let token = CancelToken::new();
        let mut source = FnSource::new(10, |i| flat(i as f64));
        let config = StreamConfig::default().with_chunk_size(2).with_cancel(token.clone());
        let mut driver = ChunkDriver::new(&mut source, &config, &telemetry);

        // First chunk pulls normally; the in-flight chunk is never
        // interrupted, only the next pull is refused.
        let chunk = driver.next_chunk().expect("token not yet expired");
        assert_eq!(chunk.len(), 2);
        for offset in 0..chunk.len() {
            let _ = chunk.take(offset);
        }
        driver.finish_chunk();

        token.cancel();
        assert!(driver.next_chunk().is_none(), "cancelled stream refuses new chunks");
        assert!(driver.next_chunk().is_none(), "the trip latches");
        let summary = driver.summary();
        assert!(summary.cancelled);
        assert_eq!(summary.items, 2, "positions after the cut were never pulled");
        assert_eq!(telemetry.counter("decam_stream_cancelled_total", &[]).value(), 1);
    }

    #[test]
    fn expired_token_stops_the_sequential_driver_between_items() {
        let token = CancelToken::new();
        let mut source = FnSource::new(5, |i| flat(i as f64));
        let config = StreamConfig::default().with_chunk_size(4).with_cancel(token.clone());
        let mut driver = ChunkDriver::new(&mut source, &config, &Telemetry::disabled());
        let (index, item) = driver.next_item().expect("first item flows");
        assert_eq!(index, 0);
        assert!(item.is_ok());
        driver.item_done();
        token.cancel();
        assert!(driver.next_item().is_none());
        assert!(driver.summary().cancelled);
    }

    #[test]
    fn unarmed_streams_never_report_cancellation() {
        let mut source = FnSource::new(3, |i| flat(i as f64));
        let config = StreamConfig::default().with_chunk_size(8);
        let mut driver = ChunkDriver::new(&mut source, &config, &Telemetry::disabled());
        while let Some(chunk) = driver.next_chunk() {
            for offset in 0..chunk.len() {
                let _ = chunk.take(offset);
            }
            driver.finish_chunk();
        }
        let summary = driver.summary();
        assert!(!summary.cancelled);
        assert_eq!(summary.items, 3);
    }

    #[test]
    fn stable_key_hash_is_pinned() {
        // The partitioner hash is an on-disk contract; these values must
        // never change (FNV-1a 64 reference vectors).
        assert_eq!(stable_key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_key_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_key_hash("img-00042.bmp"), stable_key_hash("img-00042.bmp"));
        assert_ne!(stable_key_hash("img-00042.bmp"), stable_key_hash("img-00043.bmp"));
    }

    #[test]
    fn shard_spec_parses_renders_and_validates() {
        let spec = ShardSpec::parse("2/3").unwrap();
        assert_eq!((spec.index(), spec.count()), (1, 3));
        assert_eq!(spec.to_string(), "2/3");
        assert!(!spec.is_full());
        assert!(ShardSpec::full().is_full());
        assert_eq!(ShardSpec::full().to_string(), "1/1");
        assert_eq!(ShardSpec::parse(" 1 / 1 ").unwrap(), ShardSpec::full());

        for bad in ["", "3", "0/3", "4/3", "a/b", "1/0", "-1/3", "1/3/5"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(ShardSpec::new(3, 3).is_err());
        assert!(ShardSpec::new(0, 0).is_err());
    }

    #[test]
    fn shards_cover_every_key_exactly_once_regardless_of_order() {
        let keys: Vec<String> = (0..60).map(|i| format!("img-{i:05}.bmp")).collect();
        for count in [1usize, 2, 3, 7] {
            let mut owners = vec![0usize; keys.len()];
            for index in 0..count {
                let spec = ShardSpec::new(index, count).unwrap();
                for position in spec.partition(&keys) {
                    owners[position] += 1;
                }
            }
            assert!(owners.iter().all(|&n| n == 1), "count {count}: exact cover");
        }
        // Membership is a pure function of the key string: reversing the
        // listing order only reverses positions, never membership.
        let spec = ShardSpec::new(1, 3).unwrap();
        let forward: Vec<&String> = spec.partition(&keys).into_iter().map(|i| &keys[i]).collect();
        let reversed: Vec<String> = keys.iter().rev().cloned().collect();
        let mut backward: Vec<&String> =
            spec.partition(&reversed).into_iter().map(|i| &reversed[i]).collect();
        backward.reverse();
        assert_eq!(forward, backward.iter().map(|k| *k).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_source_yields_exactly_the_partition_and_recycles_the_rest() {
        let key_of = |i: usize| format!("img-{i:05}");
        let spec = ShardSpec::new(2, 3).unwrap();
        let expected = spec.partition((0..10).map(key_of));
        assert!(!expected.is_empty(), "fixture must admit something");

        let mut source = ShardedSource::new(FnSource::new(10, |i| flat(i as f64)), spec, key_of);
        assert!(format!("{source:?}").contains("ShardedSource"));
        let mut pool = BufferPool::with_telemetry(16, &Telemetry::disabled());
        let items = drain(&mut source, &mut pool);
        let values: Vec<f64> = items.iter().map(|i| i.as_ref().unwrap().plane(0)[0]).collect();
        assert_eq!(values, expected.iter().map(|&i| i as f64).collect::<Vec<_>>());
        assert_eq!(pool.len(), 10 - expected.len(), "skipped images are recycled");

        // skipping(n) drops the first n admitted items (resume).
        let mut resumed =
            ShardedSource::new(FnSource::new(10, |i| flat(i as f64)), spec, key_of).skipping(1);
        let rest = drain(&mut resumed, &mut pool);
        assert_eq!(rest.len(), expected.len() - 1);
        assert_eq!(rest[0].as_ref().unwrap().plane(0)[0], expected[1] as f64);
    }

    #[test]
    fn directory_source_shards_by_file_name_without_decoding() {
        let dir = std::env::temp_dir().join(format!("decam-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let names: Vec<String> = (0..9).map(|i| format!("s{i}.pgm")).collect();
        for (i, name) in names.iter().enumerate() {
            write_pnm_file(&flat(i as f64), dir.join(name)).unwrap();
        }

        let spec = ShardSpec::new(0, 3).unwrap();
        let mut source = DirectorySource::open(&dir).unwrap();
        assert_eq!(source.shard_keys(), names, "keys are bare file names in sorted order");
        let kept = source.restrict_to_shard(spec);
        assert_eq!(kept, spec.partition(&names), "path-level restriction matches partition");
        assert_eq!(source.len(), kept.len());

        let mut pool = BufferPool::with_telemetry(0, &Telemetry::disabled());
        let values: Vec<f64> = drain(&mut source, &mut pool)
            .iter()
            .map(|item| item.as_ref().unwrap().plane(0)[0])
            .collect();
        assert_eq!(values, kept.iter().map(|&i| i as f64).collect::<Vec<_>>());

        // skip(n) positions past already-checkpointed files.
        let mut resumed = DirectorySource::open(&dir).unwrap();
        resumed.restrict_to_shard(spec);
        resumed.skip(1);
        let rest = drain(&mut resumed, &mut pool);
        assert_eq!(rest.len(), kept.len() - 1);
        assert_eq!(rest[0].as_ref().unwrap().plane(0)[0], kept[1] as f64);
        resumed.skip(100); // clamped at end of stream
        assert_eq!(resumed.len_hint(), Some(0));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
