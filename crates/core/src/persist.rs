//! Plain-text persistence for calibrated thresholds.
//!
//! Offline calibration and online detection usually run in different
//! processes; the thresholds must survive in between. The format is a
//! deliberately boring line-oriented text file (no serialisation
//! dependency, diff-friendly, hand-editable):
//!
//! ```text
//! decamouflage-thresholds v1
//! # comments and blank lines are ignored
//! scaling/mse above 72.4
//! filtering/ssim below 0.64
//! steganalysis/csp above 2
//! ```

use crate::threshold::{Direction, Threshold};
use crate::DetectError;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

const HEADER: &str = "decamouflage-thresholds v1";

/// A named set of calibrated thresholds (sorted by name for stable
/// output).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThresholdSet {
    entries: BTreeMap<String, Threshold>,
}

impl ThresholdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the threshold for a detector name. Returns the
    /// previous value, if any.
    pub fn insert(&mut self, name: impl Into<String>, threshold: Threshold) -> Option<Threshold> {
        self.entries.insert(name.into(), threshold)
    }

    /// Looks up a threshold by detector name.
    pub fn get(&self, name: &str) -> Option<Threshold> {
        self.entries.get(name).copied()
    }

    /// Number of stored thresholds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, threshold)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Threshold)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Serialises to the v1 text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (name, threshold) in &self.entries {
            let dir = match threshold.direction() {
                Direction::AboveIsAttack => "above",
                Direction::BelowIsAttack => "below",
            };
            // 17 significant digits round-trip any f64 exactly.
            let _ = writeln!(out, "{name} {dir} {:.17e}", threshold.value());
        }
        out
    }

    /// Parses the v1 text format.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for a missing/unknown header,
    /// malformed lines, unknown directions, unparsable values or duplicate
    /// names.
    pub fn from_text(text: &str) -> Result<Self, DetectError> {
        let bad = |message: String| DetectError::InvalidConfig { message };
        let mut lines = text.lines();
        match lines.next().map(str::trim) {
            Some(HEADER) => {}
            other => return Err(bad(format!("expected header {HEADER:?}, found {other:?}"))),
        }
        let mut set = Self::new();
        for (lineno, raw) in lines.enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (name, dir, value) = match (parts.next(), parts.next(), parts.next(), parts.next())
            {
                (Some(n), Some(d), Some(v), None) => (n, d, v),
                _ => {
                    return Err(bad(format!(
                        "line {}: expected `name direction value`, got {line:?}",
                        lineno + 2
                    )))
                }
            };
            let direction = match dir {
                "above" => Direction::AboveIsAttack,
                "below" => Direction::BelowIsAttack,
                other => {
                    return Err(bad(format!(
                        "line {}: unknown direction {other:?} (expected above/below)",
                        lineno + 2
                    )))
                }
            };
            let value: f64 = value
                .parse()
                .map_err(|_| bad(format!("line {}: unparsable value {value:?}", lineno + 2)))?;
            if !value.is_finite() {
                return Err(bad(format!("line {}: non-finite threshold", lineno + 2)));
            }
            if set.insert(name, Threshold::new(value, direction)).is_some() {
                return Err(bad(format!("line {}: duplicate entry {name:?}", lineno + 2)));
            }
        }
        Ok(set)
    }

    /// Writes the set to a file.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DetectError> {
        std::fs::write(path, self.to_text()).map_err(|e| DetectError::InvalidConfig {
            message: format!("failed to write thresholds: {e}"),
        })
    }

    /// Reads a set from a file.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for I/O or parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DetectError> {
        let text = std::fs::read_to_string(path).map_err(|e| DetectError::InvalidConfig {
            message: format!("failed to read thresholds: {e}"),
        })?;
        Self::from_text(&text)
    }
}

impl FromIterator<(String, Threshold)> for ThresholdSet {
    fn from_iter<I: IntoIterator<Item = (String, Threshold)>>(iter: I) -> Self {
        Self { entries: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ThresholdSet {
        let mut set = ThresholdSet::new();
        set.insert("scaling/mse", Threshold::new(72.4, Direction::AboveIsAttack));
        set.insert("filtering/ssim", Threshold::new(0.64, Direction::BelowIsAttack));
        set.insert("steganalysis/csp", Threshold::new(2.0, Direction::AboveIsAttack));
        set
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let set = sample();
        let parsed = ThresholdSet::from_text(&set.to_text()).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn roundtrip_preserves_full_f64_precision() {
        let mut set = ThresholdSet::new();
        let awkward = 1714.960_000_000_000_1_f64;
        set.insert("x", Threshold::new(awkward, Direction::AboveIsAttack));
        let parsed = ThresholdSet::from_text(&set.to_text()).unwrap();
        assert_eq!(parsed.get("x").unwrap().value(), awkward);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{HEADER}\n\n# a comment\nscaling/mse above 5\n");
        let set = ThresholdSet::from_text(&text).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.get("scaling/mse").unwrap().is_attack(6.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(ThresholdSet::from_text("").is_err());
        assert!(ThresholdSet::from_text("wrong header\n").is_err());
        let h = HEADER;
        assert!(ThresholdSet::from_text(&format!("{h}\nname above\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\nname sideways 1.0\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\nname above xyz\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\nname above inf\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\na above 1\na below 2\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\na above 1 extra\n")).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("decamouflage-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("thresholds.txt");
        let set = sample();
        set.save(&path).unwrap();
        assert_eq!(ThresholdSet::load(&path).unwrap(), set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(ThresholdSet::load("/nonexistent/decamouflage.txt").is_err());
    }

    #[test]
    fn insert_replaces_and_reports() {
        let mut set = ThresholdSet::new();
        assert!(set.is_empty());
        assert!(set.insert("a", Threshold::new(1.0, Direction::AboveIsAttack)).is_none());
        let old = set.insert("a", Threshold::new(2.0, Direction::AboveIsAttack));
        assert_eq!(old.unwrap().value(), 1.0);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let set = sample();
        let names: Vec<&str> = set.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["filtering/ssim", "scaling/mse", "steganalysis/csp"]);
        let collected: ThresholdSet = set.iter().map(|(n, t)| (n.to_string(), t)).collect();
        assert_eq!(collected, set);
    }
}
