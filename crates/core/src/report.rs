//! Tiny Markdown report builders used by the reproduction harness (no
//! serialisation dependency required).

use std::fmt::Write as _;

/// A Markdown table builder.
///
/// # Example
///
/// ```
/// use decamouflage_core::report::MarkdownTable;
///
/// let table = MarkdownTable::new(vec!["Metric", "Acc."])
///     .row(vec!["MSE".into(), "99.9%".into()])
///     .to_string();
/// assert!(table.contains("| MSE | 99.9% |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (builder style). Rows shorter than the header are
    /// padded with empty cells; longer rows are truncated.
    #[must_use]
    pub fn row(mut self, cells: Vec<String>) -> Self {
        self.push_row(cells);
        self
    }

    /// Appends a row.
    pub fn push_row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for MarkdownTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        let _ = write!(out, "|");
        for h in &self.headers {
            let _ = write!(out, " {h} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|");
        for _ in &self.headers {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "|");
            for cell in row {
                let _ = write!(out, " {cell} |");
            }
            let _ = writeln!(out);
        }
        f.write_str(&out)
    }
}

/// Formats a ratio in `[0, 1]` as a percentage with one decimal, e.g.
/// `0.999 -> "99.9%"`.
pub fn percent(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Formats a float with a sensible number of decimals for table cells
/// (2 decimals below 10, 1 decimal below 1000, 2 decimals otherwise).
pub fn number(value: f64) -> String {
    if value.abs() < 10.0 {
        format!("{value:.2}")
    } else if value.abs() < 1000.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_separator_and_rows() {
        let t = MarkdownTable::new(vec!["A", "B"])
            .row(vec!["1".into(), "2".into()])
            .row(vec!["3".into(), "4".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "| A | B |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
        assert_eq!(lines[3], "| 3 | 4 |");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let t = MarkdownTable::new(vec!["A", "B"]).row(vec!["only".into()]).row(vec![
            "1".into(),
            "2".into(),
            "extra".into(),
        ]);
        let s = t.to_string();
        assert!(s.contains("| only |  |"));
        assert!(!s.contains("extra"));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.999), "99.9%");
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(percent(1.0), "100.0%");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(0.61345), "0.61");
        assert_eq!(number(218.64), "218.6");
        assert_eq!(number(1714.958), "1714.96");
    }

    #[test]
    fn empty_table() {
        let t = MarkdownTable::new(vec!["X"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("| X |"));
    }
}
