//! The typed detection-method registry.
//!
//! Every detection method the framework knows has a [`MethodId`]. The id
//! carries the method's stable report name (`"scaling/mse"`-style), its
//! decision [`Direction`], and whether black-box deployment can skip
//! calibration ([`MethodId::fixed_blackbox_threshold`]). Scores travel as a
//! dense [`ScoreVector`] indexed by id, and engines enable or disable
//! methods through a [`MethodSet`] bitset.
//!
//! Adding a method is a *one-registration* change: add the variant here
//! (name + direction) and give it a constructor arm in
//! [`DetectionEngine::build_detector`](crate::engine::DetectionEngine::build_detector).
//! Every other layer — calibration, persistence, ensembles, evaluation,
//! ROC, reports, the experiment harness — iterates [`MethodId::ALL`] and
//! picks the new method up automatically.
//!
//! # Example
//!
//! ```
//! use decamouflage_core::{MethodId, ScoreVector};
//!
//! let mut scores = ScoreVector::splat(0.0);
//! scores.set(MethodId::Csp, 3.0);
//! assert_eq!(scores.get(MethodId::Csp), 3.0);
//! assert_eq!(MethodId::Csp.name(), "steganalysis/csp");
//! assert_eq!(MethodId::from_name("scaling/mse"), Some(MethodId::ScalingMse));
//! assert_eq!(MethodId::ALL.len(), MethodId::COUNT);
//! ```

use crate::detector::MetricKind;
use crate::threshold::{Direction, Threshold};
use std::fmt;
use std::str::FromStr;

/// Identifier of one detection method: the paper's five `(method, metric)`
/// pairs plus the continuous peak-excess extension.
///
/// The discriminant doubles as the index into a [`ScoreVector`], so the
/// declaration order is the canonical report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MethodId {
    /// Scaling detection (round-trip residual), MSE metric.
    ScalingMse,
    /// Scaling detection (round-trip residual), SSIM metric.
    ScalingSsim,
    /// Filtering detection (minimum-filter residual), MSE metric.
    FilteringMse,
    /// Filtering detection (minimum-filter residual), SSIM metric.
    FilteringSsim,
    /// Steganalysis: centered-spectrum-point count.
    Csp,
    /// Steganalysis extension: windowed radial peak excess.
    PeakExcess,
    /// Test-only seventh method proving the one-registration contract:
    /// scores the image's mean intensity.
    #[cfg(test)]
    DummyMean,
}

impl MethodId {
    /// Every registered method, in canonical (declaration) order.
    #[cfg(not(test))]
    pub const ALL: &'static [MethodId] = &[
        MethodId::ScalingMse,
        MethodId::ScalingSsim,
        MethodId::FilteringMse,
        MethodId::FilteringSsim,
        MethodId::Csp,
        MethodId::PeakExcess,
    ];

    /// Every registered method, in canonical (declaration) order.
    #[cfg(test)]
    pub const ALL: &'static [MethodId] = &[
        MethodId::ScalingMse,
        MethodId::ScalingSsim,
        MethodId::FilteringMse,
        MethodId::FilteringSsim,
        MethodId::Csp,
        MethodId::PeakExcess,
        MethodId::DummyMean,
    ];

    /// Number of registered methods (the length of a [`ScoreVector`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report name, e.g. `"scaling/mse"`. These strings are the
    /// on-disk keys of [`crate::persist::ThresholdSet`] and the member
    /// names in ensemble decisions, so they never change.
    pub const fn name(self) -> &'static str {
        match self {
            MethodId::ScalingMse => "scaling/mse",
            MethodId::ScalingSsim => "scaling/ssim",
            MethodId::FilteringMse => "filtering/mse",
            MethodId::FilteringSsim => "filtering/ssim",
            MethodId::Csp => "steganalysis/csp",
            MethodId::PeakExcess => "steganalysis/peak-excess",
            #[cfg(test)]
            MethodId::DummyMean => "test/dummy-mean",
        }
    }

    /// Which side of a threshold indicates an attack for this method.
    pub const fn direction(self) -> Direction {
        match self {
            MethodId::ScalingMse
            | MethodId::FilteringMse
            | MethodId::Csp
            | MethodId::PeakExcess => Direction::AboveIsAttack,
            MethodId::ScalingSsim | MethodId::FilteringSsim => Direction::BelowIsAttack,
            #[cfg(test)]
            MethodId::DummyMean => Direction::AboveIsAttack,
        }
    }

    /// The similarity metric behind a spatial-domain method, if any.
    pub const fn metric(self) -> Option<MetricKind> {
        match self {
            MethodId::ScalingMse | MethodId::FilteringMse => Some(MetricKind::Mse),
            MethodId::ScalingSsim | MethodId::FilteringSsim => Some(MetricKind::Ssim),
            _ => None,
        }
    }

    /// The scaling-detection method under `metric`.
    pub const fn scaling(metric: MetricKind) -> Self {
        match metric {
            MetricKind::Mse => MethodId::ScalingMse,
            MetricKind::Ssim => MethodId::ScalingSsim,
        }
    }

    /// The filtering-detection method under `metric`.
    pub const fn filtering(metric: MetricKind) -> Self {
        match metric {
            MetricKind::Mse => MethodId::FilteringMse,
            MetricKind::Ssim => MethodId::FilteringSsim,
        }
    }

    /// Looks a method up by its stable report name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|id| id.name() == name)
    }

    /// The fixed threshold this method uses in black-box deployments, if
    /// it needs no calibration at all. Only [`MethodId::Csp`] qualifies:
    /// the paper's `CSP_T = 2` is dataset-independent because the CSP
    /// count is a small integer with an absolute meaning (number of bright
    /// spectral blobs). Continuous scores like peak excess have no such
    /// universal scale and go through white-box or black-box calibration
    /// like the spatial methods.
    pub fn fixed_blackbox_threshold(self) -> Option<Threshold> {
        match self {
            MethodId::Csp => Some(Threshold::new(
                crate::steganalysis::CSP_UNIVERSAL_THRESHOLD,
                Direction::AboveIsAttack,
            )),
            _ => None,
        }
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown method name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMethod(pub String);

impl fmt::Display for UnknownMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown detection method {:?}", self.0)
    }
}

impl std::error::Error for UnknownMethod {}

impl FromStr for MethodId {
    type Err = UnknownMethod;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_name(s).ok_or_else(|| UnknownMethod(s.to_string()))
    }
}

/// One score per registered method, densely indexed by [`MethodId`].
///
/// Methods an engine did not score (because they were disabled through its
/// [`MethodSet`]) hold `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreVector {
    values: [f64; MethodId::COUNT],
}

impl ScoreVector {
    /// Creates a vector with every slot set to `value`.
    pub const fn splat(value: f64) -> Self {
        Self { values: [value; MethodId::COUNT] }
    }

    /// The score of one method.
    pub const fn get(&self, id: MethodId) -> f64 {
        self.values[id as usize]
    }

    /// Sets the score of one method.
    pub fn set(&mut self, id: MethodId, value: f64) {
        self.values[id as usize] = value;
    }

    /// Iterates `(id, score)` pairs in canonical method order.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, f64)> + '_ {
        MethodId::ALL.iter().map(move |&id| (id, self.values[id as usize]))
    }

    /// Scaling score under `metric` (thin shim over [`ScoreVector::get`]).
    pub fn scaling(&self, metric: MetricKind) -> f64 {
        self.get(MethodId::scaling(metric))
    }

    /// Filtering score under `metric` (thin shim over [`ScoreVector::get`]).
    pub fn filtering(&self, metric: MetricKind) -> f64 {
        self.get(MethodId::filtering(metric))
    }

    /// Scaling/MSE score (field-style shim).
    pub fn scaling_mse(&self) -> f64 {
        self.get(MethodId::ScalingMse)
    }

    /// Scaling/SSIM score (field-style shim).
    pub fn scaling_ssim(&self) -> f64 {
        self.get(MethodId::ScalingSsim)
    }

    /// Filtering/MSE score (field-style shim).
    pub fn filtering_mse(&self) -> f64 {
        self.get(MethodId::FilteringMse)
    }

    /// Filtering/SSIM score (field-style shim).
    pub fn filtering_ssim(&self) -> f64 {
        self.get(MethodId::FilteringSsim)
    }

    /// CSP count (field-style shim).
    pub fn csp(&self) -> f64 {
        self.get(MethodId::Csp)
    }

    /// Peak-excess score (field-style shim).
    pub fn peak_excess(&self) -> f64 {
        self.get(MethodId::PeakExcess)
    }
}

impl std::ops::Index<MethodId> for ScoreVector {
    type Output = f64;

    fn index(&self, id: MethodId) -> &f64 {
        &self.values[id as usize]
    }
}

impl std::ops::IndexMut<MethodId> for ScoreVector {
    fn index_mut(&mut self, id: MethodId) -> &mut f64 {
        &mut self.values[id as usize]
    }
}

/// A set of [`MethodId`]s as a bitset, for enabling/disabling methods per
/// engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MethodSet {
    bits: u32,
}

impl MethodSet {
    /// The empty set.
    pub const fn empty() -> Self {
        Self { bits: 0 }
    }

    /// The set of every registered method.
    pub const fn all() -> Self {
        let mut bits = 0u32;
        let mut i = 0;
        while i < MethodId::COUNT {
            bits |= 1 << (MethodId::ALL[i] as u32);
            i += 1;
        }
        Self { bits }
    }

    /// A set containing exactly the given methods.
    pub fn of(ids: &[MethodId]) -> Self {
        let mut set = Self::empty();
        for &id in ids {
            set.insert(id);
        }
        set
    }

    /// Adds `id`; returns whether it was newly inserted.
    pub fn insert(&mut self, id: MethodId) -> bool {
        let fresh = !self.contains(id);
        self.bits |= 1 << (id as u32);
        fresh
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: MethodId) -> bool {
        let present = self.contains(id);
        self.bits &= !(1 << (id as u32));
        present
    }

    /// Builder-style insert.
    #[must_use]
    pub fn with(mut self, id: MethodId) -> Self {
        self.insert(id);
        self
    }

    /// Builder-style remove.
    #[must_use]
    pub fn without(mut self, id: MethodId) -> Self {
        self.remove(id);
        self
    }

    /// Whether `id` is in the set.
    pub const fn contains(&self, id: MethodId) -> bool {
        self.bits & (1 << (id as u32)) != 0
    }

    /// Number of methods in the set.
    pub const fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    pub const fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterates the members in canonical method order.
    pub fn iter(self) -> impl Iterator<Item = MethodId> {
        MethodId::ALL.iter().copied().filter(move |&id| self.contains(id))
    }
}

// `Debug` lists member names rather than raw bits.
impl fmt::Debug for MethodSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut set = f.debug_set();
        for id in self.iter() {
            set.entry(&id.name());
        }
        set.finish()
    }
}

impl FromIterator<MethodId> for MethodSet {
    fn from_iter<I: IntoIterator<Item = MethodId>>(iter: I) -> Self {
        let mut set = Self::empty();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

/// Per-method score columns, filled in **one pass** over a sequence of
/// [`ScoreVector`]s. Calibration, ROC and evaluation all need the scores
/// of a corpus transposed method-wise; collecting a fresh `Vec<f64>` per
/// method re-walks the corpus [`MethodId::COUNT`] times. A `ScoreColumns`
/// walks it once — push each vector as it arrives (streamed scoring feeds
/// it incrementally) and borrow the finished columns.
#[derive(Debug, Clone)]
pub struct ScoreColumns {
    methods: MethodSet,
    columns: [Vec<f64>; MethodId::COUNT],
    rows: usize,
}

impl ScoreColumns {
    /// Empty columns for the given methods.
    pub fn new(methods: MethodSet) -> Self {
        Self { methods, columns: std::array::from_fn(|_| Vec::new()), rows: 0 }
    }

    /// Transposes an already-materialised slice of score vectors.
    pub fn from_vectors(methods: MethodSet, vectors: &[ScoreVector]) -> Self {
        let mut columns = Self::new(methods);
        for vector in vectors {
            columns.push(vector);
        }
        columns
    }

    /// Appends one row: each tracked method's score, in a single
    /// traversal of the vector.
    pub fn push(&mut self, scores: &ScoreVector) {
        for id in self.methods.iter() {
            self.columns[id as usize].push(scores.get(id));
        }
        self.rows += 1;
    }

    /// The tracked methods.
    pub const fn methods(&self) -> MethodSet {
        self.methods
    }

    /// Borrows one method's column, in push order. Columns of untracked
    /// methods are empty.
    pub fn column(&self, id: MethodId) -> &[f64] {
        &self.columns[id as usize]
    }

    /// Number of rows pushed.
    pub const fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows were pushed.
    pub const fn is_empty(&self) -> bool {
        self.rows == 0
    }
}

/// Test-only detector behind [`MethodId::DummyMean`]: the image's mean
/// intensity over all channels. Exists to prove that a new method needs
/// only a `MethodId` variant and one constructor arm.
#[cfg(test)]
#[derive(Debug, Clone, Default)]
pub struct DummyMeanDetector;

#[cfg(test)]
impl crate::detector::Detector for DummyMeanDetector {
    fn score(&self, image: &decamouflage_imaging::Image) -> Result<f64, crate::DetectError> {
        if image.plane_len() == 0 {
            return Ok(0.0);
        }
        Ok(image.mean_sample())
    }

    fn direction(&self) -> Direction {
        MethodId::DummyMean.direction()
    }

    fn name(&self) -> String {
        MethodId::DummyMean.name().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_names() {
        for &id in MethodId::ALL {
            assert_eq!(MethodId::from_name(id.name()), Some(id));
            assert_eq!(id.name().parse::<MethodId>().unwrap(), id);
            assert_eq!(id.to_string(), id.name());
        }
        assert_eq!(MethodId::from_name("nonsense"), None);
        let err = "nonsense".parse::<MethodId>().unwrap_err();
        assert!(err.to_string().contains("nonsense"));
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<_> = MethodId::ALL.iter().map(|id| id.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate method names");
        // The five paper methods keep their PR 1 report strings.
        assert_eq!(MethodId::ScalingMse.name(), "scaling/mse");
        assert_eq!(MethodId::ScalingSsim.name(), "scaling/ssim");
        assert_eq!(MethodId::FilteringMse.name(), "filtering/mse");
        assert_eq!(MethodId::FilteringSsim.name(), "filtering/ssim");
        assert_eq!(MethodId::Csp.name(), "steganalysis/csp");
        assert_eq!(MethodId::PeakExcess.name(), "steganalysis/peak-excess");
    }

    #[test]
    fn directions_match_metric_semantics() {
        for &id in MethodId::ALL {
            match id.metric() {
                Some(metric) => assert_eq!(id.direction(), metric.direction()),
                None => assert_eq!(id.direction(), Direction::AboveIsAttack),
            }
        }
    }

    #[test]
    fn metric_constructors_are_inverse_of_metric() {
        for metric in [MetricKind::Mse, MetricKind::Ssim] {
            assert_eq!(MethodId::scaling(metric).metric(), Some(metric));
            assert_eq!(MethodId::filtering(metric).metric(), Some(metric));
        }
        assert_eq!(MethodId::Csp.metric(), None);
        assert_eq!(MethodId::PeakExcess.metric(), None);
    }

    #[test]
    fn only_csp_has_a_fixed_blackbox_threshold() {
        for &id in MethodId::ALL {
            let fixed = id.fixed_blackbox_threshold();
            if id == MethodId::Csp {
                let t = fixed.unwrap();
                assert_eq!(t.value(), 2.0);
                assert_eq!(t.direction(), Direction::AboveIsAttack);
            } else {
                assert!(fixed.is_none(), "{id} should need calibration");
            }
        }
    }

    #[test]
    fn score_vector_indexes_by_id() {
        let mut scores = ScoreVector::splat(f64::NAN);
        for (i, &id) in MethodId::ALL.iter().enumerate() {
            scores.set(id, i as f64);
        }
        for (i, &id) in MethodId::ALL.iter().enumerate() {
            assert_eq!(scores.get(id), i as f64);
            assert_eq!(scores[id], i as f64);
        }
        scores[MethodId::Csp] = 42.0;
        assert_eq!(scores.csp(), 42.0);
        assert_eq!(scores.scaling(MetricKind::Mse), scores.scaling_mse());
        assert_eq!(scores.scaling(MetricKind::Ssim), scores.scaling_ssim());
        assert_eq!(scores.filtering(MetricKind::Mse), scores.filtering_mse());
        assert_eq!(scores.filtering(MetricKind::Ssim), scores.filtering_ssim());
        let collected: Vec<_> = scores.iter().collect();
        assert_eq!(collected.len(), MethodId::COUNT);
        assert_eq!(collected[MethodId::Csp as usize], (MethodId::Csp, 42.0));
    }

    #[test]
    fn method_set_operations() {
        let mut set = MethodSet::empty();
        assert!(set.is_empty());
        assert!(set.insert(MethodId::Csp));
        assert!(!set.insert(MethodId::Csp));
        assert!(set.contains(MethodId::Csp));
        assert_eq!(set.len(), 1);
        assert!(set.remove(MethodId::Csp));
        assert!(!set.remove(MethodId::Csp));
        assert!(set.is_empty());

        let all = MethodSet::all();
        assert_eq!(all.len(), MethodId::COUNT);
        assert_eq!(all.iter().collect::<Vec<_>>(), MethodId::ALL.to_vec());

        let pair = MethodSet::of(&[MethodId::PeakExcess, MethodId::ScalingMse]);
        assert_eq!(
            pair.iter().collect::<Vec<_>>(),
            vec![MethodId::ScalingMse, MethodId::PeakExcess],
            "iteration is canonical order, not insertion order"
        );
        assert_eq!(pair, [MethodId::ScalingMse, MethodId::PeakExcess].into_iter().collect());
        let without = all.without(MethodId::PeakExcess);
        assert!(!without.contains(MethodId::PeakExcess));
        assert_eq!(without.with(MethodId::PeakExcess), all);
        assert_eq!(format!("{pair:?}"), "{\"scaling/mse\", \"steganalysis/peak-excess\"}");
    }

    #[test]
    fn dummy_method_is_registered_in_test_builds() {
        assert!(MethodId::ALL.contains(&MethodId::DummyMean));
        assert_eq!(MethodId::from_name("test/dummy-mean"), Some(MethodId::DummyMean));
        assert!(MethodId::DummyMean.fixed_blackbox_threshold().is_none());
        use crate::detector::Detector;
        let det = DummyMeanDetector;
        let img =
            decamouflage_imaging::Image::filled(2, 2, decamouflage_imaging::Channels::Gray, 7.0);
        assert_eq!(det.score(&img).unwrap(), 7.0);
        assert_eq!(det.name(), "test/dummy-mean");
    }
}
