//! Run-time monitoring for deployed detectors.
//!
//! The paper's online mode screens a live request stream with thresholds
//! calibrated offline. Deployments additionally need to notice when the
//! *benign* traffic drifts away from the calibration distribution (new
//! camera, new content mix), because percentile thresholds silently rot.
//! [`DetectionMonitor`] wraps a calibrated detector, keeps rolling
//! statistics of recent scores and verdicts, and raises a drift warning
//! when the recent benign-score mean wanders too many calibration standard
//! deviations from the calibration mean.

use crate::detector::Detector;
use crate::engine::DetectionEngine;
use crate::method::MethodId;
use crate::stream::ImageSource;
use crate::threshold::Threshold;
use crate::DetectError;
use decamouflage_imaging::Image;
use decamouflage_telemetry::{Counter, Gauge, Telemetry};
use std::collections::VecDeque;

/// Verdict plus bookkeeping for one screened image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorVerdict {
    /// The detector score.
    pub score: f64,
    /// Whether the threshold flags the image as an attack.
    pub is_attack: bool,
    /// Whether the rolling benign-score window currently signals drift.
    pub drift_alert: bool,
}

/// Rolling statistics over the most recent screened images.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorStats {
    /// Images screened in total.
    pub screened: usize,
    /// Images flagged as attacks in total.
    pub flagged: usize,
    /// Images quarantined in total: the detector errored or produced a
    /// non-finite score. Quarantined images are counted here only — they
    /// are neither screened, nor flagged, nor admitted to the rolling
    /// drift window.
    pub quarantined: usize,
    /// Mean score of the current rolling window (accepted images only).
    pub window_mean: f64,
    /// Number of scores in the rolling window.
    pub window_len: usize,
}

/// Pre-resolved telemetry handles for one monitor, labelled with the
/// wrapped detector's name. All no-ops under a disabled [`Telemetry`].
#[derive(Debug, Clone, Default)]
struct MonitorMetrics {
    telemetry: Telemetry,
    screened: Counter,
    flagged: Counter,
    quarantined: Counter,
    drift_alerts: Counter,
    window_mean: Gauge,
    window_len: Gauge,
}

impl MonitorMetrics {
    fn new(telemetry: Telemetry, detector: &str) -> Self {
        let counter = |name| telemetry.counter(name, &[("detector", detector)]);
        let gauge = |name| telemetry.gauge(name, &[("detector", detector)]);
        Self {
            screened: counter("decam_monitor_screened_total"),
            flagged: counter("decam_monitor_flagged_total"),
            quarantined: counter("decam_monitor_quarantined_total"),
            drift_alerts: counter("decam_monitor_drift_alerts_total"),
            window_mean: gauge("decam_monitor_window_mean"),
            window_len: gauge("decam_monitor_window_len"),
            telemetry,
        }
    }
}

/// A calibrated detector wrapped with rolling statistics and drift
/// detection.
pub struct DetectionMonitor<D> {
    detector: D,
    threshold: Threshold,
    calibration_mean: f64,
    calibration_std: f64,
    drift_sigmas: f64,
    window: VecDeque<f64>,
    window_capacity: usize,
    screened: usize,
    flagged: usize,
    quarantined: usize,
    metrics: MonitorMetrics,
}

impl<D: Detector> DetectionMonitor<D> {
    /// Wraps a calibrated detector.
    ///
    /// `calibration_mean` / `calibration_std` describe the benign score
    /// distribution observed during calibration (e.g. from
    /// [`crate::pipeline::ScoredCorpus::benign_summary`]); `window` is the
    /// rolling window length and `drift_sigmas` the alert distance.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for a zero window, negative
    /// `drift_sigmas` or non-finite calibration statistics.
    pub fn new(
        detector: D,
        threshold: Threshold,
        calibration_mean: f64,
        calibration_std: f64,
        window: usize,
        drift_sigmas: f64,
    ) -> Result<Self, DetectError> {
        if window == 0 {
            return Err(DetectError::InvalidConfig { message: "window must be >= 1".into() });
        }
        // NaN must fail too, hence the explicit is_nan checks.
        if drift_sigmas <= 0.0
            || drift_sigmas.is_nan()
            || !calibration_mean.is_finite()
            || calibration_std < 0.0
            || calibration_std.is_nan()
        {
            return Err(DetectError::InvalidConfig {
                message: "drift parameters must be positive and finite".into(),
            });
        }
        let metrics = MonitorMetrics::new(decamouflage_telemetry::global(), &detector.name());
        Ok(Self {
            detector,
            threshold,
            calibration_mean,
            calibration_std,
            drift_sigmas,
            window: VecDeque::with_capacity(window),
            window_capacity: window,
            screened: 0,
            flagged: 0,
            quarantined: 0,
            metrics,
        })
    }

    /// Attaches a [`Telemetry`] handle: an enabled handle mirrors the
    /// monitor's screened/flagged/quarantined counters, drift alerts,
    /// and rolling-window statistics into its registry (labelled
    /// `detector=<name>`). The default is the process-global handle at
    /// construction time. Telemetry never changes verdicts.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.metrics = MonitorMetrics::new(telemetry, &self.detector.name());
        self
    }

    /// Screens one image: scores it, classifies it, and (for accepted
    /// images) updates the rolling benign window.
    ///
    /// A failing or non-finite score quarantines the image instead: the
    /// [`MonitorStats::quarantined`] counter is bumped, an error is
    /// returned, and neither the screened/flagged counters nor the drift
    /// window move — a burst of quarantined inputs cannot mask or fake a
    /// drift alert.
    ///
    /// # Errors
    ///
    /// Propagates the detector's [`DetectError`]; a non-finite score is
    /// reported as [`DetectError::Score`] with a
    /// [`ScoreFault::NonFiniteScore`](crate::ScoreFault::NonFiniteScore)
    /// cause.
    pub fn screen(&mut self, image: &Image) -> Result<MonitorVerdict, DetectError> {
        let score = match self.detector.score(image) {
            Ok(score) => score,
            Err(err) => {
                self.quarantined += 1;
                self.metrics.quarantined.inc();
                return Err(err);
            }
        };
        if !score.is_finite() {
            self.quarantined += 1;
            self.metrics.quarantined.inc();
            return Err(DetectError::Score(Box::new(crate::error::ScoreError::new(
                crate::error::ScoreFault::NonFiniteScore { score },
            ))));
        }
        let is_attack = self.threshold.is_attack(score);
        self.screened += 1;
        self.metrics.screened.inc();
        if is_attack {
            self.flagged += 1;
            self.metrics.flagged.inc();
        } else {
            if self.window.len() == self.window_capacity {
                self.window.pop_front();
            }
            self.window.push_back(score);
        }
        let drift_alert = self.drift_alert();
        if self.metrics.telemetry.is_enabled() {
            // The window-mean recomputation only happens with telemetry
            // on; verdicts never depend on it.
            if drift_alert {
                self.metrics.drift_alerts.inc();
            }
            self.metrics.window_len.set(self.window.len() as f64);
            let mean = if self.window.is_empty() {
                0.0
            } else {
                self.window.iter().sum::<f64>() / self.window.len() as f64
            };
            self.metrics.window_mean.set(mean);
        }
        Ok(MonitorVerdict { score, is_attack, drift_alert })
    }

    /// Screens every image pulled from an [`ImageSource`] with bounded
    /// memory: images are pulled one at a time, screened via
    /// [`DetectionMonitor::screen`], and their pixel buffers recycled
    /// through a small internal [`BufferPool`](crate::stream::BufferPool)
    /// — the monitor never holds more than one decoded image at once. A
    /// source item that failed to pull (unreadable file, decode error)
    /// counts as quarantined, exactly like a failing detector score.
    ///
    /// Returns the monitor's statistics after the stream is drained; the
    /// per-image verdicts feed the same counters and drift window as
    /// [`DetectionMonitor::screen`].
    pub fn screen_source(&mut self, source: &mut dyn ImageSource) -> MonitorStats {
        let mut pool = crate::stream::BufferPool::with_telemetry(4, &self.metrics.telemetry);
        while let Some(item) = source.next_image(&mut pool) {
            match item {
                Ok(image) => {
                    let _ = self.screen(&image);
                    pool.recycle(image);
                }
                Err(_) => {
                    self.quarantined += 1;
                    self.metrics.quarantined.inc();
                }
            }
        }
        self.stats()
    }

    /// Whether the rolling window mean has drifted more than
    /// `drift_sigmas` calibration standard deviations from the calibration
    /// mean. Requires a full window; always `false` before that.
    pub fn drift_alert(&self) -> bool {
        if self.window.len() < self.window_capacity {
            return false;
        }
        let mean = self.window.iter().sum::<f64>() / self.window.len() as f64;
        let spread = self.calibration_std.max(1e-12);
        (mean - self.calibration_mean).abs() > self.drift_sigmas * spread
    }

    /// Current counters and window statistics.
    pub fn stats(&self) -> MonitorStats {
        let window_mean = if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        };
        MonitorStats {
            screened: self.screened,
            flagged: self.flagged,
            quarantined: self.quarantined,
            window_mean,
            window_len: self.window.len(),
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// The active threshold.
    pub const fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// Replaces the threshold (e.g. after recalibration) and clears the
    /// rolling window.
    pub fn recalibrate(&mut self, threshold: Threshold, mean: f64, std: f64) {
        self.threshold = threshold;
        self.calibration_mean = mean;
        self.calibration_std = std;
        self.window.clear();
    }
}

impl DetectionMonitor<Box<dyn Detector>> {
    /// Builds a monitor for one registry method, using the engine's
    /// configuration ([`DetectionEngine::build_detector`]) as the single
    /// construction site — no per-method wiring in the monitoring layer.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] when the engine has the
    /// method disabled, plus everything [`DetectionMonitor::new`] rejects.
    pub fn for_engine_method(
        engine: &DetectionEngine,
        id: MethodId,
        threshold: Threshold,
        calibration_mean: f64,
        calibration_std: f64,
        window: usize,
        drift_sigmas: f64,
    ) -> Result<Self, DetectError> {
        if !engine.methods().contains(id) {
            return Err(DetectError::InvalidConfig {
                message: format!("engine has method {} disabled", id.name()),
            });
        }
        Self::new(
            engine.build_detector(id),
            threshold,
            calibration_mean,
            calibration_std,
            window,
            drift_sigmas,
        )
    }
}

impl<D: std::fmt::Debug> std::fmt::Debug for DetectionMonitor<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionMonitor")
            .field("detector", &self.detector)
            .field("threshold", &self.threshold)
            .field("screened", &self.screened)
            .field("flagged", &self.flagged)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::Direction;
    use decamouflage_imaging::Channels;

    #[derive(Debug)]
    struct MeanDetector;

    impl Detector for MeanDetector {
        fn score(&self, image: &Image) -> Result<f64, DetectError> {
            Ok(image.mean_sample())
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "mean".into()
        }
    }

    fn flat(v: f64) -> Image {
        Image::filled(2, 2, Channels::Gray, v)
    }

    fn monitor(window: usize) -> DetectionMonitor<MeanDetector> {
        DetectionMonitor::new(
            MeanDetector,
            Threshold::new(100.0, Direction::AboveIsAttack),
            50.0, // calibration mean
            5.0,  // calibration std
            window,
            3.0,
        )
        .unwrap()
    }

    #[test]
    fn screens_and_counts() {
        let mut m = monitor(4);
        assert!(!m.screen(&flat(40.0)).unwrap().is_attack);
        assert!(m.screen(&flat(150.0)).unwrap().is_attack);
        let stats = m.stats();
        assert_eq!(stats.screened, 2);
        assert_eq!(stats.flagged, 1);
        assert_eq!(stats.window_len, 1); // only the accepted image
    }

    #[test]
    fn no_drift_alert_with_in_distribution_traffic() {
        let mut m = monitor(4);
        for v in [48.0, 52.0, 49.0, 51.0, 50.0] {
            let verdict = m.screen(&flat(v)).unwrap();
            assert!(!verdict.drift_alert, "false drift alarm at {v}");
        }
    }

    #[test]
    fn drift_alert_fires_on_shifted_traffic() {
        let mut m = monitor(4);
        let mut alerted = false;
        // Benign (below threshold 100) but far above the calibration mean.
        for _ in 0..6 {
            alerted |= m.screen(&flat(80.0)).unwrap().drift_alert;
        }
        assert!(alerted, "shifted benign traffic must raise the drift alert");
    }

    #[test]
    fn window_must_fill_before_alerting() {
        let mut m = monitor(8);
        for _ in 0..7 {
            assert!(!m.screen(&flat(90.0)).unwrap().drift_alert);
        }
    }

    #[test]
    fn attacks_do_not_pollute_the_benign_window() {
        let mut m = monitor(2);
        // Attack-scored images are excluded from the window.
        m.screen(&flat(200.0)).unwrap();
        m.screen(&flat(210.0)).unwrap();
        assert_eq!(m.stats().window_len, 0);
        assert!(!m.drift_alert());
    }

    #[test]
    fn recalibrate_resets_the_window() {
        let mut m = monitor(2);
        m.screen(&flat(80.0)).unwrap();
        m.screen(&flat(82.0)).unwrap();
        assert!(m.drift_alert());
        m.recalibrate(Threshold::new(120.0, Direction::AboveIsAttack), 80.0, 5.0);
        assert!(!m.drift_alert());
        assert_eq!(m.threshold().value(), 120.0);
        assert_eq!(m.stats().window_len, 0);
    }

    #[test]
    fn constructor_validates() {
        let t = Threshold::new(1.0, Direction::AboveIsAttack);
        assert!(DetectionMonitor::new(MeanDetector, t, 0.0, 1.0, 0, 3.0).is_err());
        assert!(DetectionMonitor::new(MeanDetector, t, 0.0, 1.0, 4, -1.0).is_err());
        assert!(DetectionMonitor::new(MeanDetector, t, f64::NAN, 1.0, 4, 3.0).is_err());
    }

    #[test]
    fn engine_method_monitor_matches_standalone_detector() {
        use crate::engine::DetectionEngine;
        use crate::method::{MethodId, MethodSet};
        use decamouflage_imaging::Size;

        let engine = DetectionEngine::new(Size::square(8));
        let t = Threshold::new(1e9, Direction::AboveIsAttack);
        let mut m =
            DetectionMonitor::for_engine_method(&engine, MethodId::ScalingMse, t, 0.0, 1.0, 4, 3.0)
                .unwrap();
        let image = Image::from_fn_gray(24, 24, |x, y| ((x * 7 + y * 3) % 211) as f64);
        let verdict = m.screen(&image).unwrap();
        let standalone = engine.build_detector(MethodId::ScalingMse).score(&image).unwrap();
        assert_eq!(verdict.score, standalone);
        assert_eq!(m.detector().name(), MethodId::ScalingMse.name());

        // A disabled method is rejected up front.
        let gated =
            DetectionEngine::new(Size::square(8)).with_methods(MethodSet::of(&[MethodId::Csp]));
        let err =
            DetectionMonitor::for_engine_method(&gated, MethodId::ScalingMse, t, 0.0, 1.0, 4, 3.0)
                .err()
                .expect("disabled method must be rejected");
        assert!(err.to_string().contains("scaling/mse"));
    }

    #[test]
    fn quarantined_images_are_counted_separately() {
        use crate::faults::FaultyDetector;
        use crate::faults::{FaultKind, FaultPlan};

        // Calls 1 and 3 fail (typed error / NaN score); 0, 2, 4 are clean.
        let plan = FaultPlan::new().with(1, FaultKind::Error).with(3, FaultKind::NanScore);
        let mut m = DetectionMonitor::new(
            FaultyDetector::new(MeanDetector, plan),
            Threshold::new(100.0, Direction::AboveIsAttack),
            50.0,
            5.0,
            4,
            3.0,
        )
        .unwrap();

        assert!(!m.screen(&flat(48.0)).unwrap().is_attack);
        assert!(m.screen(&flat(48.0)).is_err(), "injected error quarantines");
        assert!(m.screen(&flat(150.0)).unwrap().is_attack);
        let nan_err = m.screen(&flat(48.0)).unwrap_err();
        assert!(nan_err.to_string().contains("non-finite score"), "{nan_err}");
        m.screen(&flat(52.0)).unwrap();

        let stats = m.stats();
        assert_eq!(stats.quarantined, 2);
        assert_eq!(stats.screened, 3, "quarantined images are not screened");
        assert_eq!(stats.flagged, 1);
        assert_eq!(stats.window_len, 2, "only accepted images reach the window");
    }

    #[test]
    fn drift_alert_ignores_quarantined_samples() {
        use crate::faults::{FaultKind, FaultPlan, FaultyDetector};

        // Every odd call reports NaN. If those samples leaked into the
        // window they would stall it below capacity (or poison its mean);
        // the accepted in-distribution traffic must still never alert.
        let plan = FaultPlan::new()
            .with(1, FaultKind::NanScore)
            .with(3, FaultKind::NanScore)
            .with(5, FaultKind::NanScore)
            .with(7, FaultKind::NanScore);
        let mut m = DetectionMonitor::new(
            FaultyDetector::new(MeanDetector, plan),
            Threshold::new(100.0, Direction::AboveIsAttack),
            50.0,
            5.0,
            4,
            3.0,
        )
        .unwrap();
        for v in [48.0, 0.0, 52.0, 0.0, 49.0, 0.0, 51.0, 0.0, 50.0] {
            match m.screen(&flat(v)) {
                Ok(verdict) => assert!(!verdict.drift_alert, "false drift alarm at {v}"),
                Err(_) => {}
            }
        }
        assert!(!m.drift_alert());
        let stats = m.stats();
        assert_eq!(stats.quarantined, 4);
        assert_eq!(stats.window_len, 4, "the window still filled from accepted images");
        assert!((stats.window_mean - 50.0).abs() < 2.0);
    }

    #[test]
    fn screen_source_drains_a_stream_with_bounded_memory() {
        use crate::error::{ScoreError, ScoreFault};
        use crate::stream::{BufferPool, ImageSource, SliceSource};

        // A source that yields two clean images, one unreadable item, then
        // one attack-scored image.
        struct Mixed {
            inner: SliceSource<'static>,
            emitted_bad: bool,
        }
        impl ImageSource for Mixed {
            fn next_image(&mut self, pool: &mut BufferPool) -> Option<Result<Image, ScoreError>> {
                if self.inner.len_hint() == Some(1) && !self.emitted_bad {
                    self.emitted_bad = true;
                    return Some(Err(ScoreError::new(ScoreFault::Unreadable {
                        message: "synthetic decode failure".into(),
                    })));
                }
                self.inner.next_image(pool)
            }
        }

        let images: &'static [Image] =
            Box::leak(vec![flat(48.0), flat(52.0), flat(150.0)].into_boxed_slice());
        let mut source = Mixed { inner: SliceSource::new(images), emitted_bad: false };
        let mut m = monitor(4);
        let stats = m.screen_source(&mut source);
        assert_eq!(stats.screened, 3);
        assert_eq!(stats.flagged, 1);
        assert_eq!(stats.quarantined, 1, "an unreadable item quarantines");
        assert_eq!(stats.window_len, 2, "only accepted images reach the window");
    }

    #[test]
    fn accessors_and_debug() {
        let m = monitor(2);
        assert_eq!(m.threshold().value(), 100.0);
        assert_eq!(m.detector().name(), "mean");
        assert!(format!("{m:?}").contains("DetectionMonitor"));
    }
}
