//! The `decamouflage-checkpoint v1` format: one shard's progress through
//! a corpus scan, written atomically at every chunk boundary so a crash
//! loses at most one chunk of work.
//!
//! A checkpoint records everything needed to resume or merge a shard:
//!
//! ```text
//! decamouflage-checkpoint v1
//! shard 2/3
//! corpus 64a7cdd168032b17 64
//! methods scaling/mse,filtering/ssim,steganalysis/csp
//! done 4
//! counter decam_engine_scored_total 3
//! hist decam_engine_stage_seconds{stage=decode} 3 4.50000000000000011e-3 …
//! score 1 7.24000000000000021e1 6.40000000000000013e-1 2.00000000000000000e0
//! score 5 1.19999999999999996e1 8.99999999999999967e-1 1.00000000000000000e0
//! quarantine 9 unreadable cannot read corpus/x07.bmp: truncated header
//! score 14 3.20000000000000018e1 7.00000000000000067e-1 0.00000000000000000e0
//! ```
//!
//! * `shard` — the [`ShardSpec`] this checkpoint belongs to (1-based
//!   `k/N` rendering).
//! * `corpus` — the [`CorpusFingerprint`] (order-sensitive hash over the
//!   *full* corpus key list, plus its length) that pins the checkpoint
//!   to one corpus; resume and merge refuse on mismatch.
//! * `methods` — the [`MethodSet`] whose scores the `score` rows carry,
//!   comma-joined in canonical order.
//! * `done` — the number of completed rows the file claims to hold; the
//!   parser counts and refuses a file truncated mid-write (belt to the
//!   atomic-rename braces).
//! * `counter`/`gauge`/`hist` — an optional embedded telemetry
//!   [`RegistrySnapshot`], so merged scans can report exact combined
//!   histogram moments (`sum_sq` never survives a Prometheus exposition,
//!   so it must travel here).
//! * `score`/`quarantine` rows — per-image results addressed by
//!   **corpus-global** index, in strictly ascending order. Scores are
//!   written with 17 significant digits (exact `f64` round-trip);
//!   quarantine rows carry the stable [`crate::ScoreFault::kind`] tag and the
//!   cause message.
//!
//! The quarantine message is the *cause* only — deliberately not the
//! full [`ScoreError`] display, whose embedded shard-local image index
//! would differ between a sharded and an unsharded scan of the same
//! corpus and break the bit-identical-merge invariant.

use super::textfmt;
use crate::error::ScoreError;
use crate::method::{MethodId, MethodSet, ScoreColumns, ScoreVector};
use crate::stream::{stable_key_hash, ShardSpec, FNV_OFFSET, FNV_PRIME};
use crate::DetectError;
use decamouflage_telemetry::{HistogramSnapshot, Labels, RegistrySnapshot};
use std::fmt::Write as _;
use std::path::Path;

const HEADER: &str = "decamouflage-checkpoint v1";

/// Every stable [`ScoreFault::kind`](crate::ScoreFault::kind) tag — the
/// admissible `quarantine` row kinds. Grows when the fault taxonomy
/// does; existing tags never change.
const FAULT_KINDS: [&str; 8] = [
    "degenerate-dimensions",
    "non-finite-pixel",
    "below-minimum-size",
    "non-finite-score",
    "detect",
    "panic",
    "injected",
    "unreadable",
];

/// An order-sensitive fingerprint of a corpus: a 64-bit hash folded over
/// the full key list (each key contributing its [`stable_key_hash`])
/// plus the corpus length. Two corpora fingerprint equal only when they
/// list the same keys in the same canonical order, which is exactly the
/// precondition for shard checkpoints to be resumable and mergeable —
/// global row indices are meaningless across different listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusFingerprint {
    hash: u64,
    len: usize,
}

impl CorpusFingerprint {
    /// Fingerprints a corpus from its canonical key list (e.g.
    /// [`DirectorySource::shard_keys`](crate::stream::DirectorySource::shard_keys)).
    pub fn of_keys<I>(keys: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut hash = FNV_OFFSET;
        let mut len = 0usize;
        for key in keys {
            hash ^= stable_key_hash(key.as_ref());
            hash = hash.wrapping_mul(FNV_PRIME);
            len += 1;
        }
        Self { hash, len }
    }

    /// The combined 64-bit hash.
    pub const fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of keys (images) in the corpus.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the corpus holds no keys.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Display for CorpusFingerprint {
    /// The on-disk rendering: `hash(hex, 16 digits) length`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x} {}", self.hash, self.len)
    }
}

/// One quarantined position of a scan: its corpus-global index, the
/// stable fault-kind tag, and the cause message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    index: usize,
    kind: String,
    message: String,
}

impl QuarantineRecord {
    /// The corpus-global index of the quarantined image.
    pub const fn index(&self) -> usize {
        self.index
    }

    /// The stable [`ScoreFault::kind`](crate::ScoreFault::kind) tag.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The human-readable cause (the fault's display, without the
    /// shard-local index prefix).
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// One completed row of a checkpoint, in corpus-global index order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Row<'a> {
    /// A scored image: its global index and its row in the score columns.
    Scored {
        /// Corpus-global image index.
        index: usize,
        /// Row into [`ScanCheckpoint::columns`] /
        /// [`ScanCheckpoint::score_vector_at`].
        row: usize,
    },
    /// A quarantined position.
    Quarantined(&'a QuarantineRecord),
}

impl Row<'_> {
    /// The row's corpus-global index.
    pub(crate) fn index(&self) -> usize {
        match self {
            Row::Scored { index, .. } => *index,
            Row::Quarantined(rec) => rec.index,
        }
    }
}

/// Merged in-order walk over a checkpoint's scored and quarantined rows.
pub(crate) struct RowIter<'a> {
    checkpoint: &'a ScanCheckpoint,
    scored: usize,
    quarantined: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = Row<'a>;

    fn next(&mut self) -> Option<Row<'a>> {
        let scored = self.checkpoint.scored_indices.get(self.scored).copied();
        let quarantined = self.checkpoint.quarantined.get(self.quarantined);
        let take_scored = match (scored, quarantined) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(index), Some(rec)) => index < rec.index,
        };
        if take_scored {
            let row = self.scored;
            self.scored += 1;
            Some(Row::Scored { index: scored.expect("checked above"), row })
        } else {
            self.quarantined += 1;
            Some(Row::Quarantined(&self.checkpoint.quarantined[self.quarantined - 1]))
        }
    }
}

/// One shard's progress through a corpus scan, in memory. See the
/// [module docs](self) for the on-disk format.
///
/// Rows are recorded by strictly ascending corpus-global index — the
/// natural order of a shard scan — which is what makes duplicate
/// detection and merge validation cheap.
#[derive(Debug, Clone)]
pub struct ScanCheckpoint {
    shard: ShardSpec,
    fingerprint: CorpusFingerprint,
    scored_indices: Vec<usize>,
    columns: ScoreColumns,
    quarantined: Vec<QuarantineRecord>,
    metrics: RegistrySnapshot,
}

impl ScanCheckpoint {
    /// An empty checkpoint for one shard of a fingerprinted corpus,
    /// recording scores of `methods`.
    pub fn new(shard: ShardSpec, fingerprint: CorpusFingerprint, methods: MethodSet) -> Self {
        Self {
            shard,
            fingerprint,
            scored_indices: Vec::new(),
            columns: ScoreColumns::new(methods),
            quarantined: Vec::new(),
            metrics: RegistrySnapshot::default(),
        }
    }

    /// The shard this checkpoint belongs to.
    pub const fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// The fingerprint of the corpus being scanned.
    pub const fn fingerprint(&self) -> CorpusFingerprint {
        self.fingerprint
    }

    /// The methods whose scores the checkpoint records.
    pub const fn methods(&self) -> MethodSet {
        self.columns.methods()
    }

    /// Number of completed rows (scored + quarantined).
    pub fn done(&self) -> usize {
        self.scored_indices.len() + self.quarantined.len()
    }

    /// Corpus-global indices of the scored rows, ascending; row `r` of
    /// [`columns`](ScanCheckpoint::columns) belongs to
    /// `scored_indices()[r]`.
    pub fn scored_indices(&self) -> &[usize] {
        &self.scored_indices
    }

    /// The per-method score columns of the scored rows.
    pub const fn columns(&self) -> &ScoreColumns {
        &self.columns
    }

    /// The quarantined positions, ascending by index.
    pub fn quarantined(&self) -> &[QuarantineRecord] {
        &self.quarantined
    }

    /// The embedded telemetry snapshot (empty unless
    /// [`set_metrics`](ScanCheckpoint::set_metrics) was called).
    pub const fn metrics(&self) -> &RegistrySnapshot {
        &self.metrics
    }

    /// Embeds a telemetry snapshot, replacing any previous one.
    pub fn set_metrics(&mut self, snapshot: RegistrySnapshot) {
        self.metrics = snapshot;
    }

    /// The scored row `row` as a dense [`ScoreVector`] (untracked
    /// methods hold NaN).
    ///
    /// # Panics
    ///
    /// Panics if `row >= columns().len()`.
    pub fn score_vector_at(&self, row: usize) -> ScoreVector {
        let mut vector = ScoreVector::splat(f64::NAN);
        for id in self.methods().iter() {
            vector.set(id, self.columns.column(id)[row]);
        }
        vector
    }

    /// Merged in-order walk over scored and quarantined rows.
    pub(crate) fn rows(&self) -> RowIter<'_> {
        RowIter { checkpoint: self, scored: 0, quarantined: 0 }
    }

    /// The highest recorded index, if any row was recorded.
    fn last_index(&self) -> Option<usize> {
        let scored = self.scored_indices.last().copied();
        let quarantined = self.quarantined.last().map(|rec| rec.index);
        scored.into_iter().chain(quarantined).max()
    }

    /// Validates that `index` may be recorded next.
    fn check_next_index(&self, index: usize) -> Result<(), String> {
        if index >= self.fingerprint.len {
            return Err(format!(
                "row index {index} out of range for a corpus of {} images",
                self.fingerprint.len
            ));
        }
        if let Some(last) = self.last_index() {
            if index <= last {
                return Err(format!(
                    "row index {index} repeats or precedes index {last} \
                     (rows must be strictly ascending)"
                ));
            }
        }
        Ok(())
    }

    fn push_scored(&mut self, index: usize, scores: &ScoreVector) -> Result<(), String> {
        self.check_next_index(index)?;
        self.scored_indices.push(index);
        self.columns.push(scores);
        Ok(())
    }

    fn push_quarantine(&mut self, record: QuarantineRecord) -> Result<(), String> {
        self.check_next_index(record.index)?;
        self.quarantined.push(record);
        Ok(())
    }

    /// Replays a quarantine row taken from another checkpoint — the merge
    /// layer's counterpart of [`ScanCheckpoint::record`] for errors that
    /// only exist as persisted records.
    pub(crate) fn replay_quarantine(&mut self, record: QuarantineRecord) -> Result<(), String> {
        self.push_quarantine(record)
    }

    /// Records the outcome of corpus-global image `index`. Errors store
    /// their stable fault kind and cause message (newlines flattened to
    /// spaces so the record stays one line).
    ///
    /// # Errors
    ///
    /// [`DetectError::CheckpointMismatch`] when `index` is out of range
    /// for the corpus or not strictly greater than every recorded index.
    pub fn record(
        &mut self,
        index: usize,
        result: &Result<ScoreVector, ScoreError>,
    ) -> Result<(), DetectError> {
        let pushed = match result {
            Ok(scores) => self.push_scored(index, scores),
            Err(err) => {
                let message: String = err
                    .cause
                    .to_string()
                    .chars()
                    .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                    .collect();
                self.push_quarantine(QuarantineRecord {
                    index,
                    kind: err.cause.kind().to_string(),
                    message,
                })
            }
        };
        pushed.map_err(|message| DetectError::CheckpointMismatch { message })
    }

    /// The checkpoint as it would have been written after only the first
    /// `done` completed rows — i.e. the state a crash after that many
    /// positions would have left on disk. Used to exercise resume paths
    /// deterministically (tests, recovery drills). The embedded metrics
    /// snapshot is cleared: a crashed process's final metrics are
    /// unknowable.
    pub fn prefix(&self, done: usize) -> Self {
        let mut out = Self::new(self.shard, self.fingerprint, self.methods());
        for row in self.rows().take(done) {
            let pushed = match row {
                Row::Scored { index, row } => out.push_scored(index, &self.score_vector_at(row)),
                Row::Quarantined(rec) => out.push_quarantine(rec.clone()),
            };
            pushed.expect("a prefix of ascending rows stays ascending");
        }
        out
    }

    /// Checks that this checkpoint can resume a scan over the given
    /// shard/corpus/methods, where `kept` lists the corpus-global
    /// indices the shard owns in scan order. A valid resumable
    /// checkpoint's rows are exactly the first [`done`](ScanCheckpoint::done)
    /// entries of `kept`.
    ///
    /// # Errors
    ///
    /// [`DetectError::CheckpointMismatch`] naming whatever differs.
    pub fn validate_resume(
        &self,
        shard: ShardSpec,
        fingerprint: CorpusFingerprint,
        methods: MethodSet,
        kept: &[usize],
    ) -> Result<(), DetectError> {
        let mismatch = |message: String| DetectError::CheckpointMismatch { message };
        if self.shard != shard {
            return Err(mismatch(format!(
                "checkpoint is for shard {}, scan is shard {shard}",
                self.shard
            )));
        }
        if self.fingerprint != fingerprint {
            return Err(mismatch(format!(
                "checkpoint corpus fingerprint [{}] does not match the scanned corpus [{}] — \
                 files were added, removed, or renamed since the checkpoint was written",
                self.fingerprint, fingerprint
            )));
        }
        if self.methods() != methods {
            return Err(mismatch(format!(
                "checkpoint records methods [{}], scan uses [{}]",
                method_names(self.methods()),
                method_names(methods)
            )));
        }
        if self.done() > kept.len() {
            return Err(mismatch(format!(
                "checkpoint records {} completed images but the shard owns only {}",
                self.done(),
                kept.len()
            )));
        }
        for (position, row) in self.rows().enumerate() {
            if row.index() != kept[position] {
                return Err(mismatch(format!(
                    "checkpoint row {position} is corpus index {}, the shard expects {}",
                    row.index(),
                    kept[position]
                )));
            }
        }
        Ok(())
    }

    /// Serialises to the v1 text format.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] when the checkpoint cannot be
    /// represented: no methods, or an embedded metric whose name/label
    /// tokens contain the format's delimiters.
    pub fn to_text(&self) -> Result<String, DetectError> {
        if self.methods().is_empty() {
            return Err(DetectError::InvalidConfig {
                message: "a checkpoint needs at least one method".into(),
            });
        }
        let mut out = String::from(HEADER);
        out.push('\n');
        let _ = writeln!(out, "shard {}", self.shard);
        let _ = writeln!(out, "corpus {}", self.fingerprint);
        let _ = writeln!(out, "methods {}", method_names(self.methods()));
        let _ = writeln!(out, "done {}", self.done());
        for (name, labels, value) in &self.metrics.counters {
            let _ = writeln!(out, "counter {} {value}", render_series(name, labels)?);
        }
        for (name, labels, value) in &self.metrics.gauges {
            let _ = writeln!(out, "gauge {} {value:.17e}", render_series(name, labels)?);
        }
        for (name, labels, snapshot) in &self.metrics.histograms {
            let _ = write!(
                out,
                "hist {} {} {:.17e} {:.17e} ",
                render_series(name, labels)?,
                snapshot.count(),
                snapshot.sum(),
                snapshot.sum_sq()
            );
            push_csv(&mut out, snapshot.bounds().iter().map(|b| format!("{b:.17e}")));
            out.push(' ');
            push_csv(&mut out, snapshot.bucket_counts().iter().map(u64::to_string));
            out.push('\n');
        }
        for row in self.rows() {
            match row {
                Row::Scored { index, row } => {
                    let _ = write!(out, "score {index}");
                    for id in self.methods().iter() {
                        let _ = write!(out, " {:.17e}", self.columns.column(id)[row]);
                    }
                    out.push('\n');
                }
                Row::Quarantined(rec) => {
                    let _ = write!(out, "quarantine {} {}", rec.index, rec.kind);
                    if !rec.message.is_empty() {
                        let _ = write!(out, " {}", rec.message);
                    }
                    out.push('\n');
                }
            }
        }
        Ok(out)
    }

    /// Parses the v1 text format, strictly: wrong or truncated headers,
    /// malformed lines, unknown record or fault kinds, out-of-order or
    /// out-of-range indices, and a `done` count disagreeing with the
    /// rows actually present (a file truncated mid-write) are all typed
    /// errors with the offending line number.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] as described above.
    pub fn from_text(text: &str) -> Result<Self, DetectError> {
        let mut body = textfmt::parse_body(text, HEADER)?;
        let mut required = |keyword: &str| -> Result<(usize, String), DetectError> {
            let (lineno, line) = body.next().ok_or_else(|| DetectError::InvalidConfig {
                message: format!("truncated checkpoint: missing `{keyword}` line"),
            })?;
            let (key, rest) = split_keyword(line);
            if key != keyword {
                return Err(textfmt::line_error(
                    lineno,
                    format!("expected a `{keyword}` line, got {line:?}"),
                ));
            }
            Ok((lineno, rest.to_string()))
        };

        let (lineno, rest) = required("shard")?;
        let shard = ShardSpec::parse(&rest)
            .map_err(|_| textfmt::line_error(lineno, format!("malformed shard spec {rest:?}")))?;

        let (lineno, rest) = required("corpus")?;
        let fingerprint = (|| {
            let (hash, len) = rest.split_once(' ')?;
            Some(CorpusFingerprint {
                hash: u64::from_str_radix(hash, 16).ok()?,
                len: len.trim().parse().ok()?,
            })
        })()
        .ok_or_else(|| {
            textfmt::line_error(lineno, format!("malformed corpus fingerprint {rest:?}"))
        })?;

        let (lineno, rest) = required("methods")?;
        let mut methods = MethodSet::empty();
        if rest.is_empty() {
            return Err(textfmt::line_error(lineno, "empty methods list"));
        }
        for name in rest.split(',') {
            let id = MethodId::from_name(name.trim()).ok_or_else(|| {
                textfmt::line_error(lineno, format!("unknown detection method {name:?}"))
            })?;
            if !methods.insert(id) {
                return Err(textfmt::line_error(lineno, format!("duplicate method {name:?}")));
            }
        }

        let (lineno, rest) = required("done")?;
        let declared_done: usize = rest
            .parse()
            .map_err(|_| textfmt::line_error(lineno, format!("malformed done count {rest:?}")))?;

        let mut checkpoint = Self::new(shard, fingerprint, methods);
        let mut metrics = RegistrySnapshot::default();
        for (lineno, line) in body {
            let (key, rest) = split_keyword(line);
            let bad = |message: String| textfmt::line_error(lineno, message);
            match key {
                "counter" => {
                    let (series, value) = split_keyword(rest);
                    let (name, labels) = parse_series(lineno, series)?;
                    let value = value
                        .parse()
                        .map_err(|_| bad(format!("malformed counter value {value:?}")))?;
                    metrics.counters.push((name, labels, value));
                }
                "gauge" => {
                    let (series, value) = split_keyword(rest);
                    let (name, labels) = parse_series(lineno, series)?;
                    let value = value
                        .parse()
                        .map_err(|_| bad(format!("malformed gauge value {value:?}")))?;
                    metrics.gauges.push((name, labels, value));
                }
                "hist" => {
                    let fields: Vec<&str> = rest.split_whitespace().collect();
                    let &[series, count, sum, sum_sq, bounds, buckets] = fields.as_slice() else {
                        return Err(bad(format!(
                            "expected `hist series count sum sum_sq bounds buckets`, got {line:?}"
                        )));
                    };
                    let (name, labels) = parse_series(lineno, series)?;
                    let snapshot = (|| {
                        HistogramSnapshot::from_parts(
                            bounds.split(',').map(str::parse).collect::<Result<_, _>>().ok()?,
                            buckets.split(',').map(str::parse).collect::<Result<_, _>>().ok()?,
                            count.parse().ok()?,
                            sum.parse().ok()?,
                            sum_sq.parse().ok()?,
                        )
                    })()
                    .ok_or_else(|| bad(format!("inconsistent histogram state {rest:?}")))?;
                    metrics.histograms.push((name, labels, snapshot));
                }
                "score" => {
                    let mut tokens = rest.split_whitespace();
                    let index: usize = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad(format!("malformed score row {line:?}")))?;
                    let mut scores = ScoreVector::splat(f64::NAN);
                    for id in methods.iter() {
                        let value: f64 =
                            tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                                bad(format!("score row holds fewer than {} values", methods.len()))
                            })?;
                        scores.set(id, value);
                    }
                    if tokens.next().is_some() {
                        return Err(bad(format!(
                            "score row holds more than {} values",
                            methods.len()
                        )));
                    }
                    checkpoint.push_scored(index, &scores).map_err(bad)?;
                }
                "quarantine" => {
                    let (index, rest) = split_keyword(rest);
                    let index: usize = index
                        .parse()
                        .map_err(|_| bad(format!("malformed quarantine row {line:?}")))?;
                    let (kind, message) = split_keyword(rest);
                    if !FAULT_KINDS.contains(&kind) {
                        return Err(bad(format!("unknown fault kind {kind:?}")));
                    }
                    checkpoint
                        .push_quarantine(QuarantineRecord {
                            index,
                            kind: kind.to_string(),
                            message: message.to_string(),
                        })
                        .map_err(bad)?;
                }
                other => return Err(bad(format!("unknown record kind {other:?}"))),
            }
        }
        if checkpoint.done() != declared_done {
            return Err(DetectError::InvalidConfig {
                message: format!(
                    "checkpoint declares {declared_done} completed rows but holds {} — \
                     the file was truncated or tampered with",
                    checkpoint.done()
                ),
            });
        }
        metrics.counters.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        metrics.gauges.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        metrics.histograms.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        checkpoint.metrics = metrics;
        Ok(checkpoint)
    }

    /// Writes the checkpoint to a file atomically (temp file + rename) —
    /// a crash mid-write leaves the previous checkpoint intact, so a
    /// resume loses at most the rows recorded since the last save.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] for serialisation or I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DetectError> {
        textfmt::write_atomic(path, &self.to_text()?, "checkpoint")
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] for I/O or parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DetectError> {
        Self::from_text(&textfmt::read(path, "checkpoint")?)
    }
}

/// Comma-joined method names in canonical order — the `methods` line
/// payload and the rendering merge errors use.
pub(crate) fn method_names(methods: MethodSet) -> String {
    methods.iter().map(MethodId::name).collect::<Vec<_>>().join(",")
}

/// Splits a line into its first whitespace-separated token and the
/// trimmed remainder (empty when there is none).
fn split_keyword(line: &str) -> (&str, &str) {
    match line.split_once(char::is_whitespace) {
        Some((key, rest)) => (key, rest.trim()),
        None => (line, ""),
    }
}

/// Appends `items` comma-joined; an empty sequence renders as `-` so the
/// line keeps its field count.
fn push_csv(out: &mut String, items: impl Iterator<Item = String>) {
    let mut any = false;
    for (position, item) in items.enumerate() {
        if position > 0 {
            out.push(',');
        }
        out.push_str(&item);
        any = true;
    }
    if !any {
        out.push('-');
    }
}

/// Renders a metric series as `name` or `name{k=v,…}`, refusing tokens
/// that would collide with the format's delimiters.
fn render_series(name: &str, labels: &Labels) -> Result<String, DetectError> {
    let check = |token: &str| -> Result<(), DetectError> {
        let clash = |c: char| c.is_whitespace() || matches!(c, ',' | '=' | '{' | '}');
        if token.is_empty() || token.chars().any(clash) {
            return Err(DetectError::InvalidConfig {
                message: format!(
                    "metric series token {token:?} cannot be embedded in a checkpoint"
                ),
            });
        }
        Ok(())
    };
    check(name)?;
    if labels.is_empty() {
        return Ok(name.to_string());
    }
    let mut out = format!("{name}{{");
    for (position, (key, value)) in labels.iter().enumerate() {
        check(key)?;
        check(value)?;
        if position > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}={value}");
    }
    out.push('}');
    Ok(out)
}

/// Parses `name` or `name{k=v,…}` back into a `(name, sorted labels)`
/// key.
fn parse_series(lineno: usize, token: &str) -> Result<(String, Labels), DetectError> {
    let bad = || textfmt::line_error(lineno, format!("malformed metric series {token:?}"));
    match token.split_once('{') {
        None => Ok((token.to_string(), Labels::new())),
        Some((name, rest)) => {
            let inner = rest.strip_suffix('}').ok_or_else(bad)?;
            let mut labels = Labels::new();
            for pair in inner.split(',') {
                let (key, value) = pair.split_once('=').ok_or_else(bad)?;
                labels.push((key.to_string(), value.to_string()));
            }
            labels.sort();
            Ok((name.to_string(), labels))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ScoreFault;

    fn fingerprint(n: usize) -> CorpusFingerprint {
        CorpusFingerprint::of_keys((0..n).map(|i| format!("img-{i:05}")))
    }

    fn methods() -> MethodSet {
        MethodSet::of(&[MethodId::ScalingMse, MethodId::Csp])
    }

    fn scores(mse: f64, csp: f64) -> ScoreVector {
        let mut v = ScoreVector::splat(f64::NAN);
        v.set(MethodId::ScalingMse, mse);
        v.set(MethodId::Csp, csp);
        v
    }

    /// A populated checkpoint: scores at 1 and 5, a quarantine at 3.
    fn sample() -> ScanCheckpoint {
        let mut ckpt = ScanCheckpoint::new(ShardSpec::full(), fingerprint(8), methods());
        ckpt.record(1, &Ok(scores(72.4, 2.0))).unwrap();
        ckpt.record(
            3,
            &Err(ScoreError::new(ScoreFault::Unreadable {
                message: "cannot read x.bmp: truncated".into(),
            })),
        )
        .unwrap();
        ckpt.record(5, &Ok(scores(1.5, 0.0))).unwrap();
        ckpt
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_length_aware() {
        let a = CorpusFingerprint::of_keys(["x", "y"]);
        let b = CorpusFingerprint::of_keys(["y", "x"]);
        let c = CorpusFingerprint::of_keys(["x", "y", "z"]);
        assert_ne!(a, b, "order matters");
        assert_ne!(a, c);
        assert_eq!(a, CorpusFingerprint::of_keys(["x", "y"]));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(CorpusFingerprint::of_keys(Vec::<String>::new()).is_empty());
        assert!(a.to_string().contains(&format!("{:016x}", a.hash())));
    }

    #[test]
    fn roundtrip_preserves_rows_counts_and_exact_scores() {
        let ckpt = sample();
        assert_eq!(ckpt.done(), 3);
        let text = ckpt.to_text().unwrap();
        let parsed = ScanCheckpoint::from_text(&text).unwrap();
        assert_eq!(parsed.to_text().unwrap(), text, "serialisation is a fixed point");
        assert_eq!(parsed.shard(), ckpt.shard());
        assert_eq!(parsed.fingerprint(), ckpt.fingerprint());
        assert_eq!(parsed.methods(), ckpt.methods());
        assert_eq!(parsed.scored_indices(), &[1, 5]);
        assert_eq!(parsed.columns().column(MethodId::ScalingMse), &[72.4, 1.5]);
        assert_eq!(parsed.columns().column(MethodId::Csp), &[2.0, 0.0]);
        assert_eq!(parsed.quarantined().len(), 1);
        let rec = &parsed.quarantined()[0];
        assert_eq!((rec.index(), rec.kind()), (3, "unreadable"));
        assert_eq!(rec.message(), "unreadable source item: cannot read x.bmp: truncated");
        assert_eq!(parsed.score_vector_at(1).get(MethodId::ScalingMse), 1.5);
        assert!(parsed.score_vector_at(1).get(MethodId::FilteringMse).is_nan());
    }

    #[test]
    fn roundtrip_preserves_awkward_f64s_exactly() {
        let mut ckpt = ScanCheckpoint::new(ShardSpec::full(), fingerprint(4), methods());
        let awkward = 1_714.960_000_000_000_1_f64;
        ckpt.record(0, &Ok(scores(awkward, f64::MIN_POSITIVE))).unwrap();
        let parsed = ScanCheckpoint::from_text(&ckpt.to_text().unwrap()).unwrap();
        assert_eq!(parsed.columns().column(MethodId::ScalingMse), &[awkward]);
        assert_eq!(parsed.columns().column(MethodId::Csp), &[f64::MIN_POSITIVE]);
    }

    #[test]
    fn every_fault_kind_roundtrips() {
        let faults = [
            ScoreFault::DegenerateDimensions { width: 0, height: 4 },
            ScoreFault::NonFinitePixel { sample: 7 },
            ScoreFault::BelowMinimumSize {
                width: 2,
                height: 2,
                required: 8,
                requirement: "SSIM window",
            },
            ScoreFault::NonFiniteScore { score: f64::NAN },
            ScoreFault::Detect(DetectError::InvalidConfig { message: "multi\nline".into() }),
            ScoreFault::Panicked { message: "boom".into() },
            ScoreFault::Injected,
            ScoreFault::Unreadable { message: "gone".into() },
        ];
        let mut ckpt = ScanCheckpoint::new(ShardSpec::full(), fingerprint(faults.len()), methods());
        for (index, fault) in faults.into_iter().enumerate() {
            assert!(
                FAULT_KINDS.contains(&fault.kind()),
                "{} missing from FAULT_KINDS",
                fault.kind()
            );
            ckpt.record(index, &Err(ScoreError::new(fault))).unwrap();
        }
        let parsed = ScanCheckpoint::from_text(&ckpt.to_text().unwrap()).unwrap();
        let kinds: Vec<&str> = parsed.quarantined().iter().map(QuarantineRecord::kind).collect();
        assert_eq!(kinds, FAULT_KINDS);
        assert_eq!(
            parsed.quarantined()[4].message(),
            "invalid config: multi line",
            "newlines flatten to spaces"
        );
    }

    #[test]
    fn metrics_roundtrip_with_exact_moments() {
        let registry = decamouflage_telemetry::registry::MetricsRegistry::new();
        registry.counter("decam_scored_total", &[("shard", "2of3")]).add(5);
        registry.gauge("decam_peak", &[]).set(3.5);
        let h = registry.histogram("decam_lat_seconds", &[("stage", "decode")]);
        h.record(0.0034);
        h.record(0.21);
        let snapshot = registry.snapshot();

        let mut ckpt = sample();
        ckpt.set_metrics(snapshot.clone());
        let parsed = ScanCheckpoint::from_text(&ckpt.to_text().unwrap()).unwrap();
        assert_eq!(parsed.metrics(), &snapshot, "embedded snapshot survives byte-exactly");
    }

    #[test]
    fn unembeddable_metric_tokens_are_write_errors() {
        let mut ckpt = sample();
        let mut snapshot = RegistrySnapshot::default();
        snapshot.counters.push(("bad name".into(), Labels::new(), 1));
        ckpt.set_metrics(snapshot);
        let err = ckpt.to_text().unwrap_err();
        assert!(err.to_string().contains("cannot be embedded"), "{err}");
    }

    #[test]
    fn wrong_version_and_garbage_headers_are_rejected() {
        for text in ["", "decamouflage-checkpoint v2\nshard 1/1\n", "\u{0}\u{1}binary junk\n"] {
            let err = ScanCheckpoint::from_text(text).unwrap_err();
            assert!(matches!(err, DetectError::InvalidConfig { .. }));
            assert!(err.to_string().contains("expected header"), "{text:?}: {err}");
        }
    }

    #[test]
    fn truncated_files_are_rejected() {
        let full = sample().to_text().unwrap();
        // Cut after the header region: drops score/quarantine rows, so the
        // declared `done` count no longer matches.
        let upto_rows = full.find("score ").unwrap();
        let err = ScanCheckpoint::from_text(&full[..upto_rows]).unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
        assert!(err.to_string().contains("declares 3 completed rows but holds 0"), "{err}");

        // Cut mid-header: a required line is missing entirely.
        let upto_methods = full.find("methods").unwrap();
        let err = ScanCheckpoint::from_text(&full[..upto_methods]).unwrap_err();
        assert!(err.to_string().contains("missing `methods` line"), "{err}");

        // Cut mid-row: the final score row loses its last value. (A cut
        // inside a value can survive parsing — "1.23" is a valid prefix of
        // "1.2345e0" — which is exactly why checkpoints are written
        // atomically and carry a `done` count as a second guard.)
        let after_last_value = full.rfind(' ').unwrap() + 1;
        let err = ScanCheckpoint::from_text(&full[..after_last_value]).unwrap_err();
        assert!(err.to_string().contains("score row holds fewer"), "{err}");
    }

    #[test]
    fn duplicate_and_out_of_order_indices_are_rejected_with_line_numbers() {
        let full = sample().to_text().unwrap();
        let duplicated = format!("{full}score 5 1.0e0 2.0e0\n");
        let fixed = duplicated.replace("done 3", "done 4");
        let err = ScanCheckpoint::from_text(&fixed).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("line 9"), "{message}");
        assert!(message.contains("repeats or precedes"), "{message}");

        let mut ckpt = sample();
        let err = ckpt.record(2, &Ok(scores(0.0, 0.0))).unwrap_err();
        assert!(matches!(err, DetectError::CheckpointMismatch { .. }), "{err}");
        let err = ckpt.record(100, &Ok(scores(0.0, 0.0))).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn malformed_bodies_are_rejected_with_line_numbers() {
        let head = |rest: &str| format!("{HEADER}\n{rest}");
        let cases = [
            ("shard x/y\n", "malformed shard spec"),
            ("banana 1/1\n", "expected a `shard` line"),
            ("shard 1/1\ncorpus zz 4\n", "malformed corpus fingerprint"),
            ("shard 1/1\ncorpus 00000000000000aa 4\nmethods nope/nope\n", "unknown detection method"),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse,scaling/mse\n",
                "duplicate method",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone x\n",
                "malformed done count",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone 0\nwat 1\n",
                "unknown record kind",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone 1\nscore 0\n",
                "fewer than 1 values",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone 1\nscore 0 1.0 2.0\n",
                "more than 1 values",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone 1\nquarantine 0 gremlin lost\n",
                "unknown fault kind",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone 1\nscore 9 1.0\n",
                "out of range",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone 0\ncounter decam{x 1\n",
                "malformed metric series",
            ),
            (
                "shard 1/1\ncorpus 00000000000000aa 4\nmethods scaling/mse\ndone 0\nhist decam 1 0.5 0.25 - -\n",
                "inconsistent histogram state",
            ),
        ];
        for (body, needle) in cases {
            let err = ScanCheckpoint::from_text(&head(body)).unwrap_err();
            let message = err.to_string();
            assert!(matches!(err, DetectError::InvalidConfig { .. }), "{body:?}");
            assert!(message.contains(needle), "{body:?}: got {message:?}");
            assert!(message.contains("line "), "{body:?}: wants a line number, got {message:?}");
        }
    }

    #[test]
    fn validate_resume_refuses_mismatched_scans() {
        let ckpt = sample(); // full-shard checkpoint over fingerprint(8), rows 1,3,5
        let kept: Vec<usize> = (0..8).collect();
        ckpt.validate_resume(ShardSpec::full(), fingerprint(8), methods(), &kept[1..])
            .expect_err("kept list not matching the recorded prefix must refuse");
        ckpt.validate_resume(ShardSpec::full(), fingerprint(9), methods(), &kept)
            .expect_err("wrong corpus fingerprint must refuse");
        ckpt.validate_resume(ShardSpec::new(0, 2).unwrap(), fingerprint(8), methods(), &kept)
            .expect_err("wrong shard must refuse");
        ckpt.validate_resume(
            ShardSpec::full(),
            fingerprint(8),
            MethodSet::of(&[MethodId::Csp]),
            &kept,
        )
        .expect_err("different method set must refuse");
        let err = ckpt
            .validate_resume(ShardSpec::full(), fingerprint(8), methods(), &[1, 3])
            .unwrap_err();
        assert!(matches!(err, DetectError::CheckpointMismatch { .. }));
        assert!(err.to_string().contains("owns only 2"), "{err}");

        // The happy path: a kept list whose prefix is exactly the rows.
        ckpt.validate_resume(ShardSpec::full(), fingerprint(8), methods(), &[1, 3, 5, 7]).unwrap();
    }

    #[test]
    fn prefix_reconstructs_the_mid_scan_state() {
        let ckpt = sample();
        let mid = ckpt.prefix(2);
        assert_eq!(mid.done(), 2);
        assert_eq!(mid.scored_indices(), &[1]);
        assert_eq!(mid.quarantined()[0].index(), 3);
        assert_eq!(mid.columns().column(MethodId::ScalingMse), &[72.4]);
        assert!(mid.metrics().is_empty(), "a crash never persists final metrics");
        assert_eq!(ckpt.prefix(ckpt.done()).to_text().unwrap(), ckpt.to_text().unwrap());
        assert_eq!(ckpt.prefix(0).done(), 0);
    }

    #[test]
    fn empty_methods_cannot_serialise() {
        let ckpt = ScanCheckpoint::new(ShardSpec::full(), fingerprint(1), MethodSet::empty());
        assert!(ckpt.to_text().is_err());
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed() {
        let dir = std::env::temp_dir().join(format!("decam-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.ckpt");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        let loaded = ScanCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.to_text().unwrap(), ckpt.to_text().unwrap());
        // Overwrite (the per-chunk save pattern) leaves no temp droppings.
        ckpt.save(&path).unwrap();
        assert!(!std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().contains(".tmp.")));
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(ScanCheckpoint::load(&path).is_err(), "missing file is a typed error");
    }
}
