//! Shared scaffolding for the v1 line-oriented text formats.
//!
//! The thresholds file and the scan checkpoint share one on-disk
//! discipline: a versioned header line, whitespace-separated body lines,
//! `#` comments and blank lines ignored, strict parsing with 1-based
//! file line numbers in every error, and atomic writes (temp file +
//! rename) so a crash never leaves a half-written file behind. This
//! module is the single home of that discipline.

use crate::DetectError;
use std::path::Path;

/// Validates the header line of a v1 text file and returns its body as
/// `(file line number, trimmed line)` pairs, skipping blank lines and
/// `#` comments. Line numbers are 1-based (the header is line 1), so
/// they can go straight into error messages.
///
/// # Errors
///
/// [`DetectError::InvalidConfig`] when the first line is not exactly
/// `header` (a missing, truncated, or wrong-version header).
pub fn parse_body<'a>(
    text: &'a str,
    header: &str,
) -> Result<impl Iterator<Item = (usize, &'a str)>, DetectError> {
    let mut lines = text.lines();
    let first = lines.next().map(str::trim);
    if first != Some(header) {
        return Err(DetectError::InvalidConfig {
            message: format!("expected header {header:?}, found {first:?}"),
        });
    }
    Ok(lines.enumerate().filter_map(|(offset, raw)| {
        let line = raw.trim();
        (!line.is_empty() && !line.starts_with('#')).then_some((offset + 2, line))
    }))
}

/// An [`DetectError::InvalidConfig`] carrying the offending 1-based file
/// line number — the uniform shape of every v1 parse error.
pub fn line_error(lineno: usize, message: impl std::fmt::Display) -> DetectError {
    DetectError::InvalidConfig { message: format!("line {lineno}: {message}") }
}

/// Reads a v1 text file to a string; `what` names the artefact in the
/// error message (`"thresholds"`, `"checkpoint"`).
///
/// # Errors
///
/// [`DetectError::InvalidConfig`] wrapping any I/O failure as
/// `failed to read {what}: …`.
pub fn read(path: impl AsRef<Path>, what: &str) -> Result<String, DetectError> {
    std::fs::read_to_string(path)
        .map_err(|e| DetectError::InvalidConfig { message: format!("failed to read {what}: {e}") })
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// same-directory temp file which is then renamed over `path`, so
/// readers (and crash recovery) only ever observe the old or the new
/// complete file, never a truncated one. `what` names the artefact in
/// the error message.
///
/// # Errors
///
/// [`DetectError::InvalidConfig`] wrapping any I/O failure as
/// `failed to write {what}: …`.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str, what: &str) -> Result<(), DetectError> {
    let path = path.as_ref();
    let io_error = |e: std::io::Error| DetectError::InvalidConfig {
        message: format!("failed to write {what}: {e}"),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents).map_err(io_error)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_error(e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_body_yields_file_line_numbers_and_skips_noise() {
        let text = "hdr v1\n\n# comment\n  payload one  \n\npayload two\n";
        let lines: Vec<_> = parse_body(text, "hdr v1").unwrap().collect();
        assert_eq!(lines, vec![(4, "payload one"), (6, "payload two")]);
    }

    #[test]
    fn parse_body_rejects_wrong_missing_or_truncated_headers() {
        for text in ["", "hdr v2\n", "hdr v1 extra\nx\n", "\u{0}binary\n"] {
            let err = match parse_body(text, "hdr v1") {
                Err(err) => err,
                Ok(_) => panic!("header of {text:?} must be rejected"),
            };
            assert!(err.to_string().contains("expected header \"hdr v1\""), "{text:?}: {err}");
        }
        // The header may carry surrounding whitespace, nothing else.
        assert!(parse_body("  hdr v1  \nx\n", "hdr v1").is_ok());
    }

    #[test]
    fn line_error_formats_uniformly() {
        let err = line_error(7, "bad token \"x\"");
        assert_eq!(err.to_string(), "invalid config: line 7: bad token \"x\"");
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("decam-textfmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artefact.txt");
        write_atomic(&path, "hdr v1\nfirst\n", "artefact").unwrap();
        write_atomic(&path, "hdr v1\nsecond\n", "artefact").unwrap();
        assert_eq!(read(&path, "artefact").unwrap(), "hdr v1\nsecond\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive a successful write");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_into_a_missing_directory_errors_with_what() {
        let err =
            write_atomic("/nonexistent/decam/x.txt", "hdr\n", "checkpoint shard").unwrap_err();
        assert!(err.to_string().contains("failed to write checkpoint shard"), "{err}");
        let err = read("/nonexistent/decam/x.txt", "checkpoint shard").unwrap_err();
        assert!(err.to_string().contains("failed to read checkpoint shard"), "{err}");
    }
}
