//! Plain-text persistence: calibrated thresholds and scan checkpoints.
//!
//! Offline calibration and online detection usually run in different
//! processes; the thresholds must survive in between. Likewise a sharded
//! corpus scan runs across processes and machines and must survive a
//! crash. Both travel as deliberately boring line-oriented text files
//! (no serialisation dependency, diff-friendly, hand-editable) sharing
//! one discipline — versioned header, strict line-numbered parsing,
//! atomic writes — implemented once in [`textfmt`]:
//!
//! * [`ThresholdSet`] (here) — the `decamouflage-thresholds v1` format:
//!
//!   ```text
//!   decamouflage-thresholds v1
//!   # comments and blank lines are ignored
//!   scaling/mse above 72.4
//!   filtering/ssim below 0.64
//!   steganalysis/csp above 2
//!   ```
//!
//! * [`checkpoint::ScanCheckpoint`] — the `decamouflage-checkpoint v1`
//!   format recording one shard's progress through a corpus scan.
//!
//! In memory the threshold set is keyed by the typed [`MethodId`]
//! registry; the on-disk names are exactly [`MethodId::name`], so files
//! written before the registry existed (same strings, free-form keys)
//! load unchanged. A name that matches no registered method is a parse
//! *error* carrying the offending line number — never a silent skip —
//! because a typo in a threshold file must not quietly drop an ensemble
//! member.

pub mod checkpoint;
pub mod textfmt;

use crate::method::MethodId;
use crate::threshold::{Direction, Threshold};
use crate::DetectError;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

const HEADER: &str = "decamouflage-thresholds v1";

/// A set of calibrated thresholds keyed by [`MethodId`] (ordered by the
/// registry's canonical method order for stable output).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThresholdSet {
    entries: BTreeMap<MethodId, Threshold>,
}

impl ThresholdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the threshold for a method. Returns the
    /// previous value, if any.
    pub fn insert(&mut self, id: MethodId, threshold: Threshold) -> Option<Threshold> {
        self.entries.insert(id, threshold)
    }

    /// Looks up a threshold by method.
    pub fn get(&self, id: MethodId) -> Option<Threshold> {
        self.entries.get(&id).copied()
    }

    /// Looks up a threshold by its stable report name (the on-disk key).
    pub fn get_by_name(&self, name: &str) -> Option<Threshold> {
        MethodId::from_name(name).and_then(|id| self.get(id))
    }

    /// Number of stored thresholds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, threshold)` pairs in canonical method order.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, Threshold)> + '_ {
        self.entries.iter().map(|(&id, &t)| (id, t))
    }

    /// Serialises to the v1 text format (keys are [`MethodId::name`]).
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (id, threshold) in &self.entries {
            let dir = match threshold.direction() {
                Direction::AboveIsAttack => "above",
                Direction::BelowIsAttack => "below",
            };
            // 17 significant digits round-trip any f64 exactly.
            let _ = writeln!(out, "{} {dir} {:.17e}", id.name(), threshold.value());
        }
        out
    }

    /// Parses the v1 text format.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for a missing/unknown header,
    /// malformed lines, names not in the method registry, unknown
    /// directions, unparsable values or duplicate methods — each with the
    /// offending line number.
    pub fn from_text(text: &str) -> Result<Self, DetectError> {
        let mut set = Self::new();
        for (lineno, line) in textfmt::parse_body(text, HEADER)? {
            let bad = |message: String| textfmt::line_error(lineno, message);
            let mut parts = line.split_whitespace();
            let (name, dir, value) = match (parts.next(), parts.next(), parts.next(), parts.next())
            {
                (Some(n), Some(d), Some(v), None) => (n, d, v),
                _ => return Err(bad(format!("expected `name direction value`, got {line:?}"))),
            };
            let id = MethodId::from_name(name)
                .ok_or_else(|| bad(format!("unknown detection method {name:?}")))?;
            let direction = match dir {
                "above" => Direction::AboveIsAttack,
                "below" => Direction::BelowIsAttack,
                other => {
                    return Err(bad(format!("unknown direction {other:?} (expected above/below)")))
                }
            };
            let value: f64 =
                value.parse().map_err(|_| bad(format!("unparsable value {value:?}")))?;
            if !value.is_finite() {
                return Err(bad("non-finite threshold".into()));
            }
            if set.insert(id, Threshold::new(value, direction)).is_some() {
                return Err(bad(format!("duplicate entry {name:?}")));
            }
        }
        Ok(set)
    }

    /// Writes the set to a file atomically (temp file + rename, see
    /// [`textfmt::write_atomic`]).
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DetectError> {
        textfmt::write_atomic(path, &self.to_text(), "thresholds")
    }

    /// Reads a set from a file.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] for I/O or parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DetectError> {
        Self::from_text(&textfmt::read(path, "thresholds")?)
    }
}

impl FromIterator<(MethodId, Threshold)> for ThresholdSet {
    fn from_iter<I: IntoIterator<Item = (MethodId, Threshold)>>(iter: I) -> Self {
        Self { entries: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ThresholdSet {
        let mut set = ThresholdSet::new();
        set.insert(MethodId::ScalingMse, Threshold::new(72.4, Direction::AboveIsAttack));
        set.insert(MethodId::FilteringSsim, Threshold::new(0.64, Direction::BelowIsAttack));
        set.insert(MethodId::Csp, Threshold::new(2.0, Direction::AboveIsAttack));
        set
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let set = sample();
        let parsed = ThresholdSet::from_text(&set.to_text()).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn typed_roundtrip_covers_every_registered_method() {
        let mut set = ThresholdSet::new();
        for (i, &id) in MethodId::ALL.iter().enumerate() {
            set.insert(id, Threshold::new(0.5 + i as f64, id.direction()));
        }
        let parsed = ThresholdSet::from_text(&set.to_text()).unwrap();
        assert_eq!(parsed, set);
        assert_eq!(parsed.len(), MethodId::COUNT);
    }

    #[test]
    fn roundtrip_preserves_full_f64_precision() {
        let mut set = ThresholdSet::new();
        let awkward = 1_714.960_000_000_000_1_f64;
        set.insert(MethodId::ScalingMse, Threshold::new(awkward, Direction::AboveIsAttack));
        let parsed = ThresholdSet::from_text(&set.to_text()).unwrap();
        assert_eq!(parsed.get(MethodId::ScalingMse).unwrap().value(), awkward);
    }

    #[test]
    fn loads_fixture_in_the_old_string_keyed_format() {
        // Verbatim output of the pre-registry (string-keyed) writer: plain
        // decimal values, alphabetical order, hand-edited comments. The
        // names happen to be the registry names, so typed loading accepts
        // the file unchanged.
        let fixture = "decamouflage-thresholds v1\n\
                       # calibrated 2025-11-02 on neurips-like train split\n\
                       filtering/ssim below 0.64\n\
                       scaling/mse above 72.4\n\
                       steganalysis/csp above 2\n";
        let set = ThresholdSet::from_text(fixture).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.get(MethodId::ScalingMse).unwrap().value(), 72.4);
        assert_eq!(set.get(MethodId::FilteringSsim).unwrap().direction(), Direction::BelowIsAttack);
        assert!(set.get(MethodId::Csp).unwrap().is_attack(2.0));
        assert_eq!(set.get_by_name("scaling/mse"), set.get(MethodId::ScalingMse));
        // Typed iteration reorders into canonical method order.
        let ids: Vec<MethodId> = set.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![MethodId::ScalingMse, MethodId::FilteringSsim, MethodId::Csp]);
    }

    #[test]
    fn unknown_method_name_errors_with_line_number() {
        let text = format!("{HEADER}\n\n# comment\nscaling/mse above 5\nscaling/rmse above 9\n");
        let err = ThresholdSet::from_text(&text).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("line 5"), "want offending line number, got {message:?}");
        assert!(message.contains("scaling/rmse"), "want offending name, got {message:?}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{HEADER}\n\n# a comment\nscaling/mse above 5\n");
        let set = ThresholdSet::from_text(&text).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.get(MethodId::ScalingMse).unwrap().is_attack(6.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(ThresholdSet::from_text("").is_err());
        assert!(ThresholdSet::from_text("wrong header\n").is_err());
        let h = HEADER;
        assert!(ThresholdSet::from_text(&format!("{h}\nscaling/mse above\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\nscaling/mse sideways 1.0\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\nscaling/mse above xyz\n")).is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\nscaling/mse above inf\n")).is_err());
        assert!(ThresholdSet::from_text(&format!(
            "{h}\nscaling/mse above 1\nscaling/mse below 2\n"
        ))
        .is_err());
        assert!(ThresholdSet::from_text(&format!("{h}\nscaling/mse above 1 extra\n")).is_err());
    }

    #[test]
    fn truncated_file_errors_with_line_number() {
        // A file cut off mid-write (e.g. disk full during save) leaves a
        // partial last line; loading it must fail with a typed error naming
        // that line, not silently load a partial set.
        let full = sample().to_text();
        // Cut inside the last line's direction token ("steganalysis/csp ab").
        let truncated = &full[..full.rfind("above").unwrap() + 2];
        let err = ThresholdSet::from_text(truncated).unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
        let message = err.to_string();
        assert!(message.contains("line 4"), "want the truncated line number, got {message:?}");
    }

    #[test]
    fn garbage_file_errors_with_typed_cause() {
        let err = ThresholdSet::from_text("\u{0}\u{1}binary junk\nmore junk\n").unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
        assert!(err.to_string().contains("expected header"), "{err}");

        let dir = std::env::temp_dir().join("decamouflage-persist-garbage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, b"decamouflage-thresholds v1\n\x7f\x45\x4c\x46 junk line\n").unwrap();
        let err = ThresholdSet::load(&path).unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_method_line_errors_with_line_number() {
        let text = format!(
            "{HEADER}\n# calibrated twice by mistake\nscaling/mse above 1\n\
             filtering/mse above 3\nscaling/mse below 2\n"
        );
        let err = ThresholdSet::from_text(&text).unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
        let message = err.to_string();
        assert!(message.contains("line 5"), "want the duplicate's line, got {message:?}");
        assert!(message.contains("duplicate"), "{message}");
        assert!(message.contains("scaling/mse"), "{message}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("decamouflage-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("thresholds.txt");
        let set = sample();
        set.save(&path).unwrap();
        assert_eq!(ThresholdSet::load(&path).unwrap(), set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(ThresholdSet::load("/nonexistent/decamouflage.txt").is_err());
    }

    #[test]
    fn insert_replaces_and_reports() {
        let mut set = ThresholdSet::new();
        assert!(set.is_empty());
        assert!(set
            .insert(MethodId::PeakExcess, Threshold::new(1.0, Direction::AboveIsAttack))
            .is_none());
        let old = set.insert(MethodId::PeakExcess, Threshold::new(2.0, Direction::AboveIsAttack));
        assert_eq!(old.unwrap().value(), 1.0);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iteration_is_canonical_method_ordered() {
        let set = sample();
        let ids: Vec<MethodId> = set.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![MethodId::ScalingMse, MethodId::FilteringSsim, MethodId::Csp]);
        let collected: ThresholdSet = set.iter().collect();
        assert_eq!(collected, set);
    }
}
