//! The scaling-detection method (paper §3.1, Algorithm 1).
//!
//! Reverse-engineer the attack: downscale the input to the CNN input size,
//! upscale back, and compare with the input. Benign images survive the
//! round trip; attack images reveal the embedded target and diverge.

use crate::detector::{Detector, MetricKind};
use crate::threshold::Direction;
use crate::DetectError;
use decamouflage_imaging::scale::{ScaleAlgorithm, Scaler};
use decamouflage_imaging::{Image, Size};
use decamouflage_metrics::{mse, ssim, SsimConfig};

/// Scaling-detection scorer: `metric(I, upscale(downscale(I)))`.
#[derive(Debug, Clone)]
pub struct ScalingDetector {
    target: Size,
    algorithm: ScaleAlgorithm,
    metric: MetricKind,
    ssim_config: SsimConfig,
}

impl ScalingDetector {
    /// Creates a detector that round-trips through `target` using
    /// `algorithm` and compares with `metric`.
    pub fn new(target: Size, algorithm: ScaleAlgorithm, metric: MetricKind) -> Self {
        Self { target, algorithm, metric, ssim_config: SsimConfig::default() }
    }

    /// Overrides the SSIM parameters (ignored for the MSE metric).
    pub fn with_ssim_config(mut self, config: SsimConfig) -> Self {
        self.ssim_config = config;
        self
    }

    /// The CNN input size the round trip passes through.
    pub const fn target(&self) -> Size {
        self.target
    }

    /// The scaling algorithm used for the round trip.
    pub const fn algorithm(&self) -> ScaleAlgorithm {
        self.algorithm
    }

    /// The comparison metric.
    pub const fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The round-tripped image `S = upscale(downscale(I))` — exposed for
    /// visual inspection (the paper's Figure 17 panels).
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Imaging`] if either scaler rejects the image.
    pub fn round_tripped(&self, image: &Image) -> Result<Image, DetectError> {
        let down = Scaler::new(image.size(), self.target, self.algorithm)?.apply(image)?;
        let up = Scaler::new(self.target, image.size(), self.algorithm)?.apply(&down)?;
        Ok(up)
    }
}

impl Detector for ScalingDetector {
    fn score(&self, image: &Image) -> Result<f64, DetectError> {
        let round = self.round_tripped(image)?;
        let value = match self.metric {
            MetricKind::Mse => mse(image, &round)?,
            MetricKind::Ssim => ssim(image, &round, &self.ssim_config)?,
        };
        Ok(value)
    }

    fn direction(&self) -> Direction {
        self.metric.direction()
    }

    fn name(&self) -> String {
        format!("scaling/{}", self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_attack::{craft_attack, AttackConfig};
    use decamouflage_imaging::scale::Scaler;

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            (128.0 + 60.0 * ((x as f64) * 0.06).sin() + 40.0 * ((y as f64) * 0.045).cos()).round()
        })
    }

    fn busy_target(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| ((x * 83 + y * 47) % 256) as f64)
    }

    fn attack_image(src: usize, dst: usize, algo: ScaleAlgorithm) -> Image {
        let scaler = Scaler::new(Size::square(src), Size::square(dst), algo).unwrap();
        craft_attack(&smooth(src), &busy_target(dst), &scaler, &AttackConfig::default())
            .unwrap()
            .image
    }

    #[test]
    fn benign_mse_is_small_attack_mse_is_large() {
        let det = ScalingDetector::new(Size::square(16), ScaleAlgorithm::Bilinear, MetricKind::Mse);
        let benign_score = det.score(&smooth(64)).unwrap();
        let attack_score = det.score(&attack_image(64, 16, ScaleAlgorithm::Bilinear)).unwrap();
        assert!(
            attack_score > 10.0 * benign_score.max(1.0),
            "benign {benign_score}, attack {attack_score}"
        );
    }

    #[test]
    fn benign_ssim_is_high_attack_ssim_is_low() {
        let det =
            ScalingDetector::new(Size::square(16), ScaleAlgorithm::Bilinear, MetricKind::Ssim);
        let benign_score = det.score(&smooth(64)).unwrap();
        let attack_score = det.score(&attack_image(64, 16, ScaleAlgorithm::Bilinear)).unwrap();
        assert!(benign_score > 0.8, "benign SSIM {benign_score}");
        assert!(attack_score < benign_score - 0.2, "attack SSIM {attack_score}");
    }

    #[test]
    fn detects_nearest_attacks_too() {
        let det = ScalingDetector::new(Size::square(16), ScaleAlgorithm::Nearest, MetricKind::Mse);
        let benign_score = det.score(&smooth(64)).unwrap();
        let attack_score = det.score(&attack_image(64, 16, ScaleAlgorithm::Nearest)).unwrap();
        assert!(attack_score > 5.0 * benign_score.max(1.0));
    }

    #[test]
    fn directions_follow_metric() {
        let mse_det =
            ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Mse);
        let ssim_det =
            ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Ssim);
        assert_eq!(mse_det.direction(), Direction::AboveIsAttack);
        assert_eq!(ssim_det.direction(), Direction::BelowIsAttack);
        assert_eq!(mse_det.name(), "scaling/mse");
        assert_eq!(ssim_det.name(), "scaling/ssim");
    }

    #[test]
    fn round_tripped_has_input_shape() {
        let det = ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Mse);
        let img = smooth(32);
        let rt = det.round_tripped(&img).unwrap();
        assert_eq!(rt.size(), img.size());
    }

    #[test]
    fn accessors() {
        let det = ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bicubic, MetricKind::Ssim)
            .with_ssim_config(SsimConfig { radius: 3, ..SsimConfig::default() });
        assert_eq!(det.target(), Size::square(8));
        assert_eq!(det.algorithm(), ScaleAlgorithm::Bicubic);
        assert_eq!(det.metric(), MetricKind::Ssim);
    }

    #[test]
    fn black_box_mismatch_still_detects() {
        // Detector uses bilinear, attacker used nearest: the embedded
        // pixels still break the round trip.
        let det = ScalingDetector::new(Size::square(16), ScaleAlgorithm::Bilinear, MetricKind::Mse);
        let benign_score = det.score(&smooth(64)).unwrap();
        let attack_score = det.score(&attack_image(64, 16, ScaleAlgorithm::Nearest)).unwrap();
        assert!(
            attack_score > 5.0 * benign_score.max(1.0),
            "benign {benign_score}, attack {attack_score}"
        );
    }
}
