//! Sharded, resumable, mergeable corpus scans.
//!
//! This module is the orchestration layer of the shard/checkpoint/merge
//! architecture:
//!
//! 1. [`crate::stream::ShardSpec`] partitions a corpus by stable key
//!    hash; a shard's owner scans only its members.
//! 2. [`scan_shard`] drives [`DetectionEngine::score_stream`] over one
//!    shard, recording every outcome into a
//!    [`ScanCheckpoint`]
//!    persisted at chunk boundaries — a crash loses at most one chunk,
//!    and a reloaded checkpoint resumes where it stopped.
//! 3. [`ScanReport::merge`] combines the completed shard checkpoints
//!    back into one corpus-wide report (scores, quarantines, merged
//!    telemetry) that feeds threshold recalibration.
//!
//! The contract threaded through all three layers: a sharded, resumed,
//! merged scan is **bit-identical** (scores and quarantine records) to a
//! single eager pass over the same corpus. The
//! `shard_merge_equivalence` property tests pin this down.

use crate::engine::DetectionEngine;
use crate::error::{DetectError, ScoreError};
use crate::method::{MethodId, ScoreColumns, ScoreVector};
use crate::persist::checkpoint::{CorpusFingerprint, QuarantineRecord, Row, ScanCheckpoint};
use crate::persist::ThresholdSet;
use crate::stream::{ImageSource, ShardSpec, StreamConfig};
use crate::threshold::percentile_blackbox;
use decamouflage_telemetry::RegistrySnapshot;

fn mismatch(message: String) -> DetectError {
    DetectError::CheckpointMismatch { message }
}

/// Merges telemetry snapshots, surfacing layout conflicts as
/// [`DetectError::CheckpointMismatch`].
fn merge_metrics(
    base: &RegistrySnapshot,
    extra: &RegistrySnapshot,
) -> Result<RegistrySnapshot, DetectError> {
    base.merge(extra).map_err(|e| mismatch(format!("cannot merge telemetry snapshots: {e}")))
}

/// Scans one shard of a corpus to completion, checkpointing as it goes.
///
/// `source` must yield exactly the shard's **remaining** images — the
/// caller restricts it to the shard's members (e.g.
/// [`DirectorySource::restrict_to_shard`](crate::stream::DirectorySource::restrict_to_shard)
/// or [`ShardedSource`](crate::stream::ShardedSource)) and, when
/// resuming, skips the first [`done`](ScanCheckpoint::done) of them.
/// `kept` lists the corpus-global indices the shard owns, in scan order;
/// the `i`-th streamed image is recorded as corpus index
/// `kept[done + i]`.
///
/// `persist` is called with the updated checkpoint at every
/// [`chunk_size`](StreamConfig::chunk_size) boundary (of cumulative
/// rows, so resumed scans persist at the same boundaries a straight-run
/// scan would) and once more after the final row: a crash between
/// persists loses at most one chunk of work. `on_result` observes every
/// outcome with its corpus-global index — the CLI's per-image report
/// lines.
///
/// The checkpoint's embedded telemetry is the metrics it carried on
/// entry (a resumed scan's prior-process metrics) merged with this
/// engine's snapshot at each persist point, so counters and histogram
/// moments accumulate across a crash/resume chain.
///
/// # Errors
///
/// [`DetectError::CheckpointMismatch`] when the source yields more or
/// fewer images than `kept` still owes, when recording violates the
/// checkpoint's ascending-index contract, or when telemetry snapshots
/// cannot be merged; any error returned by `persist` is passed through.
pub fn scan_shard(
    engine: &DetectionEngine,
    source: &mut dyn ImageSource,
    kept: &[usize],
    config: &StreamConfig,
    mut checkpoint: ScanCheckpoint,
    mut persist: impl FnMut(&ScanCheckpoint) -> Result<(), DetectError>,
    mut on_result: impl FnMut(usize, &Result<ScoreVector, ScoreError>),
) -> Result<ScanCheckpoint, DetectError> {
    let baseline_metrics = checkpoint.metrics().clone();
    let mut failure: Option<DetectError> = None;
    {
        let refresh_metrics = |checkpoint: &mut ScanCheckpoint| -> Result<(), DetectError> {
            let current = engine.telemetry().snapshot().unwrap_or_default();
            checkpoint.set_metrics(merge_metrics(&baseline_metrics, &current)?);
            Ok(())
        };
        let mut step = |checkpoint: &mut ScanCheckpoint,
                        result: Result<ScoreVector, ScoreError>|
         -> Result<(), DetectError> {
            let Some(&global) = kept.get(checkpoint.done()) else {
                return Err(mismatch(format!(
                    "source yielded more images than the {} the shard owns",
                    kept.len()
                )));
            };
            checkpoint.record(global, &result)?;
            on_result(global, &result);
            if checkpoint.done().is_multiple_of(config.chunk_size) {
                refresh_metrics(checkpoint)?;
                persist(checkpoint)?;
            }
            Ok(())
        };
        engine.score_stream(source, config, |_, result| {
            if failure.is_none() {
                failure = step(&mut checkpoint, result).err();
            }
        });
        if let Some(err) = failure {
            return Err(err);
        }
        if checkpoint.done() != kept.len() {
            return Err(mismatch(format!(
                "source ended after {} of the {} images the shard owns — \
                 the corpus changed while scanning",
                checkpoint.done(),
                kept.len()
            )));
        }
        refresh_metrics(&mut checkpoint)?;
    }
    persist(&checkpoint)?;
    Ok(checkpoint)
}

/// A corpus-wide scan result assembled from completed shard
/// checkpoints.
///
/// The combined row state lives in an internal [`ScanCheckpoint`] with
/// the full (`1/1`) shard spec and an **empty** embedded telemetry
/// snapshot, so [`ScanReport::to_text`] is byte-stable regardless of
/// wall-clock timings; the merged telemetry is kept alongside and
/// exported separately.
#[derive(Debug)]
pub struct ScanReport {
    combined: ScanCheckpoint,
    metrics: RegistrySnapshot,
}

impl ScanReport {
    /// Merges completed shard checkpoints into one corpus-wide report.
    /// A single full-shard checkpoint is the degenerate (unsharded)
    /// case, so `merge` is also the uniform way to turn any finished
    /// scan into a report.
    ///
    /// # Errors
    ///
    /// [`DetectError::CheckpointMismatch`] unless the checkpoints agree
    /// on corpus fingerprint, method set, and shard count; cover shard
    /// indices `1..=N` exactly once; and together record every corpus
    /// image exactly once. Telemetry snapshots must merge cleanly.
    pub fn merge(shards: &[ScanCheckpoint]) -> Result<Self, DetectError> {
        let Some(first) = shards.first() else {
            return Err(mismatch("cannot merge zero checkpoints".to_string()));
        };
        let count = first.shard().count();
        let fingerprint = first.fingerprint();
        let methods = first.methods();
        let mut seen = vec![false; count];
        for ckpt in shards {
            if ckpt.shard().count() != count {
                return Err(mismatch(format!(
                    "checkpoint {} uses a different shard count than {}",
                    ckpt.shard(),
                    first.shard()
                )));
            }
            if ckpt.fingerprint() != fingerprint {
                return Err(mismatch(format!(
                    "checkpoint for shard {} was taken over a different corpus \
                     [{}] than shard {} [{}]",
                    ckpt.shard(),
                    ckpt.fingerprint(),
                    first.shard(),
                    fingerprint
                )));
            }
            if ckpt.methods() != methods {
                return Err(mismatch(format!(
                    "checkpoint for shard {} records a different method set",
                    ckpt.shard()
                )));
            }
            let index = ckpt.shard().index();
            if seen[index] {
                return Err(mismatch(format!("shard {} appears twice", ckpt.shard())));
            }
            seen[index] = true;
        }
        if let Some(missing) = seen.iter().position(|present| !present) {
            return Err(mismatch(format!("shard {}/{count} is missing", missing + 1)));
        }
        let recorded: usize = shards.iter().map(ScanCheckpoint::done).sum();
        if recorded != fingerprint.len() {
            return Err(mismatch(format!(
                "shards record {recorded} of {} corpus images — \
                 every shard must have finished before merging",
                fingerprint.len()
            )));
        }

        // The shards are hash-disjoint, so their row streams interleave:
        // walk the corpus index space and take the matching head each
        // step. With the totals already balanced, a miss here means some
        // other index was recorded twice.
        let mut combined = ScanCheckpoint::new(ShardSpec::full(), fingerprint, methods);
        let mut heads: Vec<_> = shards.iter().map(|c| c.rows().peekable()).collect();
        for global in 0..fingerprint.len() {
            let mut owner = None;
            for (position, head) in heads.iter_mut().enumerate() {
                if head.peek().is_some_and(|row| row.index() == global) {
                    owner = Some(position);
                    break;
                }
            }
            let Some(position) = owner else {
                return Err(mismatch(format!(
                    "corpus index {global} is recorded by no shard \
                     (so another index must be recorded twice)"
                )));
            };
            match heads[position].next().expect("peeked above") {
                Row::Scored { row, .. } => {
                    combined.record(global, &Ok(shards[position].score_vector_at(row)))?
                }
                Row::Quarantined(rec) => {
                    combined.replay_quarantine(rec.clone()).map_err(|e| {
                        mismatch(format!("cannot replay corpus index {global}: {e}"))
                    })?;
                }
            }
        }

        let mut metrics = RegistrySnapshot::default();
        for ckpt in shards {
            metrics = merge_metrics(&metrics, ckpt.metrics())?;
        }
        Ok(Self { combined, metrics })
    }

    /// The corpus fingerprint the report covers.
    pub fn fingerprint(&self) -> CorpusFingerprint {
        self.combined.fingerprint()
    }

    /// Number of images in the scanned corpus.
    pub fn corpus_len(&self) -> usize {
        self.combined.fingerprint().len()
    }

    /// The method set every row carries.
    pub fn methods(&self) -> crate::method::MethodSet {
        self.combined.methods()
    }

    /// Corpus-global indices of the scored (non-quarantined) images,
    /// ascending.
    pub fn scored_indices(&self) -> &[usize] {
        self.combined.scored_indices()
    }

    /// The scored images' per-method score columns, in
    /// [`scored_indices`](Self::scored_indices) order.
    pub fn columns(&self) -> &ScoreColumns {
        self.combined.columns()
    }

    /// The quarantined positions, ascending by corpus index.
    pub fn quarantined(&self) -> &[QuarantineRecord] {
        self.combined.quarantined()
    }

    /// The merged telemetry of all shards: counters summed, gauges
    /// maxed, histogram moments added exactly.
    pub fn metrics(&self) -> &RegistrySnapshot {
        &self.metrics
    }

    /// Serialises the combined row state in the checkpoint v1 text
    /// format (shard `1/1`, no embedded telemetry). Byte-identical for
    /// any sharding/resume history over the same corpus — the CI smoke
    /// diffs exactly this text.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] when the method set is empty (see
    /// [`ScanCheckpoint::to_text`]).
    pub fn to_text(&self) -> Result<String, DetectError> {
        self.combined.to_text()
    }

    /// Mean and population standard deviation of a method's scored
    /// column; `None` when the method is absent or nothing was scored.
    /// These are the `calibration_mean` / `calibration_std` inputs of
    /// [`DetectionMonitor::recalibrate`](crate::monitor::DetectionMonitor::recalibrate).
    pub fn column_stats(&self, id: MethodId) -> Option<(f64, f64)> {
        if !self.methods().contains(id) {
            return None;
        }
        let column = self.columns().column(id);
        if column.is_empty() {
            return None;
        }
        let n = column.len() as f64;
        let mean = column.iter().sum::<f64>() / n;
        let variance = column.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Some((mean, variance.sqrt()))
    }

    /// Recalibrates black-box thresholds from the merged corpus: each
    /// method takes its universal fixed threshold when the registry
    /// defines one (CSP's `T = 2`), otherwise the benign-percentile
    /// threshold over its merged score column. This is the corpus-scale
    /// end of the drift-monitor story — scan shards anywhere, merge,
    /// recalibrate once.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidCalibration`] from
    /// [`percentile_blackbox`] (empty column, NaN scores, bad
    /// `tail_percent`).
    pub fn recalibrate_blackbox(&self, tail_percent: f64) -> Result<ThresholdSet, DetectError> {
        let mut set = ThresholdSet::new();
        for id in self.methods().iter() {
            let threshold = match id.fixed_blackbox_threshold() {
                Some(fixed) => fixed,
                None => {
                    percentile_blackbox(self.columns().column(id), tail_percent, id.direction())?
                }
            };
            set.insert(id, threshold);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DetectionEngine;
    use crate::method::MethodSet;
    use crate::stream::{FnSource, ShardedSource};
    use crate::threshold::Direction;
    use decamouflage_imaging::{Image, Size};
    use decamouflage_telemetry::MetricsRegistry;

    fn key(i: usize) -> String {
        format!("img-{i:05}")
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(key).collect()
    }

    fn slot_image(index: u64, poisoned: bool) -> Image {
        let mut img = Image::from_fn_gray(16, 16, |x, y| {
            ((x * 7 + y * 13 + index as usize * 29) % 251) as f64
        });
        if poisoned {
            img.set(3, 5, 0, f64::NAN);
        }
        img
    }

    fn methods() -> MethodSet {
        MethodSet::of(&[MethodId::ScalingMse, MethodId::Csp])
    }

    fn scores(mse: f64, csp: f64) -> ScoreVector {
        let mut v = ScoreVector::splat(f64::NAN);
        v.set(MethodId::ScalingMse, mse);
        v.set(MethodId::Csp, csp);
        v
    }

    /// Runs a full sharded scan of `n` generated images (every index in
    /// `poison` NaN-poisoned) and returns the per-shard checkpoints.
    fn scan_all_shards(n: usize, shard_count: usize, poison: &[usize]) -> Vec<ScanCheckpoint> {
        let engine = DetectionEngine::new(Size::square(8));
        let all = keys(n);
        let fingerprint = CorpusFingerprint::of_keys(&all);
        let config = StreamConfig::default().with_threads(2).with_chunk_size(3);
        (0..shard_count)
            .map(|index| {
                let spec = ShardSpec::new(index, shard_count).unwrap();
                let kept = spec.partition(&all);
                let inner = FnSource::new(n, |i| slot_image(i, poison.contains(&(i as usize))));
                let mut source = ShardedSource::new(inner, spec, key);
                let checkpoint = ScanCheckpoint::new(spec, fingerprint, engine.methods());
                scan_shard(&engine, &mut source, &kept, &config, checkpoint, |_| Ok(()), |_, _| {})
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn sharded_scan_merges_back_to_the_eager_oracle() {
        let n = 14;
        let half = n / 2;
        let poison = [4, 9];
        let engine = DetectionEngine::new(Size::square(8));
        let shards = scan_all_shards(n, 3, &poison);
        let report = ScanReport::merge(&shards).unwrap();

        // Oracle: one eager resilient pass over the same images — the
        // batch fans out benign indices 0..half then attack half..n.
        let outcome = engine.score_corpus_resilient(
            |i| slot_image(i, poison.contains(&(i as usize))),
            |i| slot_image(half as u64 + i, poison.contains(&(half + i as usize))),
            half,
            2,
        );
        let eager: Vec<_> = outcome.benign.into_iter().chain(outcome.attack).enumerate().collect();

        assert_eq!(report.corpus_len(), n);
        assert_eq!(report.scored_indices().len() + report.quarantined().len(), n);
        for (index, result) in eager {
            match result {
                Ok(vector) => {
                    let pos = report
                        .scored_indices()
                        .iter()
                        .position(|&g| g == index)
                        .expect("scored in both");
                    for id in report.methods().iter() {
                        assert_eq!(
                            report.columns().column(id)[pos].to_bits(),
                            vector.get(id).to_bits(),
                            "{id:?} at corpus index {index}"
                        );
                    }
                }
                Err(err) => {
                    let rec = report
                        .quarantined()
                        .iter()
                        .find(|rec| rec.index() == index)
                        .expect("quarantined in both");
                    assert_eq!(rec.kind(), err.cause.kind());
                    assert_eq!(rec.message(), err.cause.to_string());
                }
            }
        }
    }

    #[test]
    fn mid_scan_crash_resumes_to_the_identical_checkpoint() {
        let n = 10;
        let engine = DetectionEngine::new(Size::square(8));
        let all = keys(n);
        let fingerprint = CorpusFingerprint::of_keys(&all);
        let spec = ShardSpec::new(0, 2).unwrap();
        let kept = spec.partition(&all);
        assert!(kept.len() >= 2, "fixture shard must own at least two images");
        let config = StreamConfig::default().with_threads(1).with_chunk_size(2);

        let run = |checkpoint: ScanCheckpoint, skip: usize| {
            let inner = FnSource::new(n, |i| slot_image(i, false));
            let mut source = ShardedSource::new(inner, spec, |i| key(i)).skipping(skip);
            scan_shard(&engine, &mut source, &kept, &config, checkpoint, |_| Ok(()), |_, _| {})
                .unwrap()
        };
        let straight = run(ScanCheckpoint::new(spec, fingerprint, engine.methods()), 0);

        // Crash after the first row, reload the persisted prefix, resume.
        let crashed = straight.prefix(1);
        let reloaded = ScanCheckpoint::from_text(&crashed.to_text().unwrap()).unwrap();
        reloaded.validate_resume(spec, fingerprint, engine.methods(), &kept).unwrap();
        let resumed = run(reloaded, 1);

        assert_eq!(resumed.to_text().unwrap(), straight.to_text().unwrap());
    }

    #[test]
    fn scan_shard_persists_at_chunk_boundaries_and_at_the_end() {
        let n = 7;
        let engine = DetectionEngine::new(Size::square(8));
        let all = keys(n);
        let spec = ShardSpec::full();
        let config = StreamConfig::default().with_threads(1).with_chunk_size(3);
        let mut persisted = Vec::new();
        let mut seen = Vec::new();
        let mut source = FnSource::new(n, |i| slot_image(i, false));
        let checkpoint =
            ScanCheckpoint::new(spec, CorpusFingerprint::of_keys(&all), engine.methods());
        let final_ckpt = scan_shard(
            &engine,
            &mut source,
            &(0..n).collect::<Vec<_>>(),
            &config,
            checkpoint,
            |c| {
                persisted.push(c.done());
                Ok(())
            },
            |index, _| seen.push(index),
        )
        .unwrap();
        // Boundaries at 3 and 6, then the final persist at 7.
        assert_eq!(persisted, vec![3, 6, 7]);
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        assert_eq!(final_ckpt.done(), n);
    }

    #[test]
    fn scan_shard_refuses_a_corpus_that_changed_size() {
        let engine = DetectionEngine::new(Size::square(8));
        let all = keys(5);
        let spec = ShardSpec::full();
        let config = StreamConfig::default().with_threads(1);
        // The shard claims five images but the source only has three.
        let mut source = FnSource::new(3, |i| slot_image(i, false));
        let err = scan_shard(
            &engine,
            &mut source,
            &[0, 1, 2, 3, 4],
            &config,
            ScanCheckpoint::new(spec, CorpusFingerprint::of_keys(&all), engine.methods()),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("source ended after 3 of the 5"), "{err}");
    }

    fn manual_checkpoint(
        spec: ShardSpec,
        fingerprint: CorpusFingerprint,
        rows: &[(usize, Result<ScoreVector, ScoreError>)],
    ) -> ScanCheckpoint {
        let mut ckpt = ScanCheckpoint::new(spec, fingerprint, methods());
        for (index, result) in rows {
            ckpt.record(*index, result).unwrap();
        }
        ckpt
    }

    #[test]
    fn merge_validates_its_inputs() {
        let fp = CorpusFingerprint::of_keys(keys(4));
        let other_fp = CorpusFingerprint::of_keys(keys(5));
        let s1 = ShardSpec::new(0, 2).unwrap();
        let s2 = ShardSpec::new(1, 2).unwrap();
        let half1 =
            manual_checkpoint(s1, fp, &[(0, Ok(scores(1.0, 0.0))), (2, Ok(scores(2.0, 0.0)))]);
        let half2 =
            manual_checkpoint(s2, fp, &[(1, Ok(scores(3.0, 1.0))), (3, Ok(scores(4.0, 2.0)))]);

        let cases: Vec<(Vec<ScanCheckpoint>, &str)> = vec![
            (vec![], "cannot merge zero checkpoints"),
            (vec![half1.clone(), half1.clone()], "appears twice"),
            (vec![half1.clone()], "shard 2/2 is missing"),
            (
                vec![half1.clone(), manual_checkpoint(ShardSpec::full(), fp, &[])],
                "different shard count",
            ),
            (vec![half1.clone(), manual_checkpoint(s2, other_fp, &[])], "different corpus"),
            (
                vec![half1.clone(), manual_checkpoint(s2, fp, &[(1, Ok(scores(3.0, 1.0)))])],
                "shards record 3 of 4",
            ),
            (
                vec![half1.clone(), {
                    let narrower = MethodSet::of(&[MethodId::ScalingMse]);
                    ScanCheckpoint::new(s2, fp, narrower)
                }],
                "different method set",
            ),
        ];
        for (shards, needle) in cases {
            let err = ScanReport::merge(&shards).unwrap_err();
            assert!(matches!(err, DetectError::CheckpointMismatch { .. }), "{err}");
            assert!(err.to_string().contains(needle), "{needle:?} not in {err}");
        }

        let report = ScanReport::merge(&[half2, half1]).unwrap();
        assert_eq!(report.scored_indices(), &[0, 1, 2, 3]);
        assert_eq!(report.columns().column(MethodId::ScalingMse), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(report.columns().column(MethodId::Csp), &[0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn merge_detects_cross_shard_duplicate_indices() {
        let fp = CorpusFingerprint::of_keys(keys(4));
        let s1 = ShardSpec::new(0, 2).unwrap();
        let s2 = ShardSpec::new(1, 2).unwrap();
        // Both shards record index 1; index 3 is nobody's. Totals match.
        let a = manual_checkpoint(s1, fp, &[(0, Ok(scores(1.0, 0.0))), (1, Ok(scores(2.0, 0.0)))]);
        let b = manual_checkpoint(s2, fp, &[(1, Ok(scores(3.0, 0.0))), (2, Ok(scores(4.0, 0.0)))]);
        let err = ScanReport::merge(&[a, b]).unwrap_err();
        assert!(err.to_string().contains("recorded by no shard"), "{err}");
    }

    #[test]
    fn merged_histogram_moments_are_the_sum_of_the_shards() {
        let fp = CorpusFingerprint::of_keys(keys(2));
        let s1 = ShardSpec::new(0, 2).unwrap();
        let s2 = ShardSpec::new(1, 2).unwrap();
        let shard_metrics = |values: &[f64], scans: u64| {
            let registry = MetricsRegistry::new();
            let hist = registry.histogram("decode_seconds", &[]);
            for &v in values {
                hist.record(v);
            }
            registry.counter("scans_total", &[]).add(scans);
            registry.snapshot()
        };
        let mut a = manual_checkpoint(s1, fp, &[(0, Ok(scores(1.0, 0.0)))]);
        a.set_metrics(shard_metrics(&[0.25, 1.5], 1));
        let mut b = manual_checkpoint(s2, fp, &[(1, Ok(scores(2.0, 0.0)))]);
        b.set_metrics(shard_metrics(&[0.75], 2));

        let report = ScanReport::merge(&[a, b]).unwrap();
        let reference = shard_metrics(&[0.25, 1.5, 0.75], 3);
        assert_eq!(report.metrics(), &reference);
        // And the report text itself carries no telemetry at all.
        let text = report.to_text().unwrap();
        assert!(!text.contains("hist "), "{text}");
        assert!(!text.contains("counter "), "{text}");
        let roundtrip = ScanCheckpoint::from_text(&text).unwrap();
        assert_eq!(roundtrip.metrics(), &RegistrySnapshot::default());
    }

    #[test]
    fn recalibration_covers_fixed_and_percentile_methods() {
        let n = 20;
        let fp = CorpusFingerprint::of_keys(keys(n));
        let rows: Vec<_> = (0..n).map(|i| (i, Ok(scores(i as f64, 0.0)))).collect();
        let ckpt = manual_checkpoint(ShardSpec::full(), fp, &rows);
        let report = ScanReport::merge(&[ckpt]).unwrap();

        let set = report.recalibrate_blackbox(5.0).unwrap();
        let csp = set.get(MethodId::Csp).unwrap();
        assert_eq!((csp.value(), csp.direction()), (2.0, Direction::AboveIsAttack));
        let mse = set.get(MethodId::ScalingMse).unwrap();
        let expected = percentile_blackbox(
            report.columns().column(MethodId::ScalingMse),
            5.0,
            Direction::AboveIsAttack,
        )
        .unwrap();
        assert_eq!(mse.value(), expected.value());

        // The merged column stats drive the drift monitor's recalibration.
        let (mean, std) = report.column_stats(MethodId::ScalingMse).unwrap();
        assert!((mean - 9.5).abs() < 1e-12, "{mean}");
        assert!(std > 0.0);
        let engine = DetectionEngine::new(Size::square(8));
        let mut monitor = crate::monitor::DetectionMonitor::for_engine_method(
            &engine,
            MethodId::ScalingMse,
            mse,
            0.0,
            1.0,
            8,
            3.0,
        )
        .unwrap();
        monitor.recalibrate(mse, mean, std);
        assert_eq!(report.column_stats(MethodId::PeakExcess), None);
    }
}
