use crate::method::MethodId;
use std::fmt;

/// Error type for detection operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum DetectError {
    /// An imaging primitive failed (scaling, filtering, …).
    Imaging(decamouflage_imaging::ImagingError),
    /// A metric computation failed.
    Metric(decamouflage_metrics::MetricError),
    /// A calibration input was unusable (empty score set, NaN scores, …).
    InvalidCalibration {
        /// Human-readable description.
        message: String,
    },
    /// A framework configuration value was unusable.
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// A per-image scoring failure surfaced through a fail-fast API
    /// (quarantine causes that have no older [`DetectError`] variant:
    /// validation rejections, recovered panics, injected faults).
    Score(Box<ScoreError>),
    /// A scan checkpoint is internally valid but does not belong to the
    /// operation at hand: wrong corpus fingerprint on `--resume`,
    /// overlapping or missing shards on merge, mismatched method sets, …
    /// Distinct from [`DetectError::InvalidConfig`] (which covers files
    /// that fail to *parse*) so callers can tell "corrupt file" from
    /// "valid file, wrong scan".
    CheckpointMismatch {
        /// Human-readable description of what does not line up.
        message: String,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Imaging(err) => write!(f, "imaging error: {err}"),
            Self::Metric(err) => write!(f, "metric error: {err}"),
            Self::InvalidCalibration { message } => write!(f, "invalid calibration: {message}"),
            Self::InvalidConfig { message } => write!(f, "invalid config: {message}"),
            Self::Score(err) => write!(f, "score error: {err}"),
            Self::CheckpointMismatch { message } => write!(f, "checkpoint mismatch: {message}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Imaging(err) => Some(err),
            Self::Metric(err) => Some(err),
            Self::Score(err) => Some(err),
            _ => None,
        }
    }
}

impl From<decamouflage_imaging::ImagingError> for DetectError {
    fn from(err: decamouflage_imaging::ImagingError) -> Self {
        Self::Imaging(err)
    }
}

impl From<decamouflage_metrics::MetricError> for DetectError {
    fn from(err: decamouflage_metrics::MetricError) -> Self {
        Self::Metric(err)
    }
}

impl From<ScoreError> for DetectError {
    /// Converts a per-image failure into the fail-fast error type. A cause
    /// that merely wraps a [`DetectError`] unwraps back to it, so the
    /// fail-fast APIs reimplemented on the resilient path report the exact
    /// errors they always did.
    fn from(err: ScoreError) -> Self {
        match err.cause {
            ScoreFault::Detect(inner) => inner,
            _ => Self::Score(Box::new(err)),
        }
    }
}

/// Typed cause of a per-image scoring failure — the error taxonomy behind
/// input quarantine.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScoreFault {
    /// The image has a zero-area (or otherwise degenerate) pixel grid.
    DegenerateDimensions {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
    },
    /// A pixel sample was NaN or infinite.
    NonFinitePixel {
        /// Flat sample index of the first offending value.
        sample: usize,
    },
    /// The image is smaller than a configured analysis window.
    BelowMinimumSize {
        /// Image width in pixels.
        width: usize,
        /// Image height in pixels.
        height: usize,
        /// Minimum side length the offending method requires.
        required: usize,
        /// Which configured window imposed the bound (for messages).
        requirement: &'static str,
    },
    /// A detector produced a NaN or infinite score.
    NonFiniteScore {
        /// The offending score.
        score: f64,
    },
    /// The scoring path returned a typed error.
    Detect(DetectError),
    /// The scoring path panicked; the payload was recovered by
    /// `catch_unwind` and the batch kept running.
    Panicked {
        /// The panic payload, stringified where possible.
        message: String,
    },
    /// A [`FaultPlan`](crate::faults::FaultPlan) fired at this index.
    Injected,
    /// A stream source could not produce this item (e.g. a file that
    /// failed to decode). The position is quarantined like any other
    /// scoring failure; the stream keeps flowing.
    Unreadable {
        /// Human-readable description of the source failure.
        message: String,
    },
    /// A stream source produced bytes no codec claims (unknown magic)
    /// or a claimed format with an unsupported feature. Distinguished
    /// from [`ScoreFault::Unreadable`] so clients can tell "wrong file
    /// type" from "corrupt file".
    UnsupportedFormat {
        /// Human-readable description of what was unsupported.
        message: String,
    },
}

impl ScoreFault {
    /// A short, stable kebab-case tag for this fault kind, used as the
    /// `fault` label on quarantine telemetry counters. Tags never change
    /// once shipped — dashboards key on them.
    pub const fn kind(&self) -> &'static str {
        match self {
            Self::DegenerateDimensions { .. } => "degenerate-dimensions",
            Self::NonFinitePixel { .. } => "non-finite-pixel",
            Self::BelowMinimumSize { .. } => "below-minimum-size",
            Self::NonFiniteScore { .. } => "non-finite-score",
            Self::Detect(_) => "detect",
            Self::Panicked { .. } => "panic",
            Self::Injected => "injected",
            Self::Unreadable { .. } => "unreadable",
            Self::UnsupportedFormat { .. } => "unsupported-format",
        }
    }
}

impl fmt::Display for ScoreFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegenerateDimensions { width, height } => {
                write!(f, "degenerate image dimensions {width}x{height}")
            }
            Self::NonFinitePixel { sample } => {
                write!(f, "non-finite pixel value at flat sample index {sample}")
            }
            Self::BelowMinimumSize { width, height, required, requirement } => write!(
                f,
                "image {width}x{height} is smaller than the configured {requirement} \
                 (needs both sides >= {required})"
            ),
            Self::NonFiniteScore { score } => write!(f, "non-finite score {score}"),
            Self::Detect(err) => write!(f, "{err}"),
            Self::Panicked { message } => write!(f, "scoring panicked: {message}"),
            Self::Injected => write!(f, "injected fault"),
            Self::Unreadable { message } => write!(f, "unreadable source item: {message}"),
            Self::UnsupportedFormat { message } => {
                write!(f, "unsupported source format: {message}")
            }
        }
    }
}

/// A structured per-image scoring failure: which image of a batch, which
/// method the failure is attributable to (where known), and the typed
/// [`ScoreFault`] cause.
///
/// Produced by the quarantine layer
/// ([`DetectionEngine::validate_image`](crate::DetectionEngine::validate_image),
/// [`DetectionEngine::score_resilient`](crate::DetectionEngine::score_resilient),
/// [`DetectionEngine::score_corpus_resilient`](crate::DetectionEngine::score_corpus_resilient)).
#[derive(Debug)]
pub struct ScoreError {
    /// The image's scoring index. Single-image APIs use `0`; batch APIs use
    /// the batch-global fan-out index (all benign indices before all attack
    /// indices).
    pub index: usize,
    /// The method the failure is attributable to, where one is.
    pub method: Option<MethodId>,
    /// The typed cause.
    pub cause: ScoreFault,
}

impl ScoreError {
    /// Wraps a cause with index `0` and no attributed method.
    pub fn new(cause: ScoreFault) -> Self {
        Self { index: 0, method: None, cause }
    }

    /// Wraps a fail-fast [`DetectError`] raised while scoring `index`.
    pub fn detect(index: usize, err: DetectError) -> Self {
        Self { index, method: None, cause: ScoreFault::Detect(err) }
    }

    /// Builds the error for a recovered panic payload at `index`.
    pub fn panicked(index: usize, payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        Self { index, method: None, cause: ScoreFault::Panicked { message } }
    }

    /// Builds the error an injected [`FaultKind::Error`](crate::faults::FaultKind)
    /// fault reports at `index`.
    pub fn injected(index: usize) -> Self {
        Self { index, method: None, cause: ScoreFault::Injected }
    }

    /// Re-addresses the error to a batch index (builder style).
    #[must_use]
    pub fn at_index(mut self, index: usize) -> Self {
        self.index = index;
        self
    }

    /// Attributes the error to a method (builder style).
    #[must_use]
    pub fn for_method(mut self, id: MethodId) -> Self {
        self.method = Some(id);
        self
    }

    /// Whether the cause is a recovered panic.
    pub const fn is_panic(&self) -> bool {
        matches!(self.cause, ScoreFault::Panicked { .. })
    }
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image {}", self.index)?;
        if let Some(id) = self.method {
            write!(f, " ({})", id.name())?;
        }
        write!(f, ": {}", self.cause)
    }
}

impl std::error::Error for ScoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.cause {
            ScoreFault::Detect(err) => Some(err),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = DetectError::from(decamouflage_imaging::ImagingError::InvalidDimensions {
            width: 0,
            height: 0,
        });
        assert!(!e.to_string().is_empty());
        assert!(std::error::Error::source(&e).is_some());

        let e = DetectError::from(decamouflage_metrics::MetricError::InvalidParameter {
            message: "x".into(),
        });
        assert!(std::error::Error::source(&e).is_some());

        let e = DetectError::InvalidCalibration { message: "empty".into() };
        assert!(e.to_string().contains("empty"));
        assert!(std::error::Error::source(&e).is_none());

        let e = DetectError::InvalidConfig { message: "bad".into() };
        assert!(e.to_string().contains("bad"));

        let e = DetectError::CheckpointMismatch { message: "shard 2/3 appears twice".into() };
        assert!(e.to_string().contains("checkpoint mismatch: shard 2/3 appears twice"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DetectError>();
        assert_send_sync::<ScoreError>();
    }

    #[test]
    fn score_error_display_names_index_method_and_cause() {
        let e = ScoreError::new(ScoreFault::DegenerateDimensions { width: 0, height: 4 })
            .at_index(7)
            .for_method(MethodId::Csp);
        let message = e.to_string();
        assert!(message.contains("image 7"), "{message}");
        assert!(message.contains("steganalysis/csp"), "{message}");
        assert!(message.contains("0x4"), "{message}");
    }

    #[test]
    fn detect_cause_unwraps_back_to_the_original_error() {
        let original = DetectError::InvalidConfig { message: "inner".into() };
        let wrapped = ScoreError::detect(3, original);
        match DetectError::from(wrapped) {
            DetectError::InvalidConfig { message } => assert_eq!(message, "inner"),
            other => panic!("expected the inner error back, got {other:?}"),
        }
    }

    #[test]
    fn non_detect_causes_wrap_into_a_score_variant() {
        let e = DetectError::from(ScoreError::injected(5));
        match &e {
            DetectError::Score(inner) => {
                assert_eq!(inner.index, 5);
                assert!(matches!(inner.cause, ScoreFault::Injected));
            }
            other => panic!("expected Score variant, got {other:?}"),
        }
        assert!(e.to_string().contains("injected fault"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn panic_payloads_stringify() {
        let e = ScoreError::panicked(1, Box::new("str payload"));
        assert!(e.is_panic());
        assert!(e.to_string().contains("str payload"));
        let e = ScoreError::panicked(1, Box::new(String::from("string payload")));
        assert!(e.to_string().contains("string payload"));
        let e = ScoreError::panicked(1, Box::new(42usize));
        assert!(e.to_string().contains("non-string panic payload"));
    }
}
