use std::fmt;

/// Error type for detection operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum DetectError {
    /// An imaging primitive failed (scaling, filtering, …).
    Imaging(decamouflage_imaging::ImagingError),
    /// A metric computation failed.
    Metric(decamouflage_metrics::MetricError),
    /// A calibration input was unusable (empty score set, NaN scores, …).
    InvalidCalibration {
        /// Human-readable description.
        message: String,
    },
    /// A framework configuration value was unusable.
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Imaging(err) => write!(f, "imaging error: {err}"),
            Self::Metric(err) => write!(f, "metric error: {err}"),
            Self::InvalidCalibration { message } => write!(f, "invalid calibration: {message}"),
            Self::InvalidConfig { message } => write!(f, "invalid config: {message}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Imaging(err) => Some(err),
            Self::Metric(err) => Some(err),
            _ => None,
        }
    }
}

impl From<decamouflage_imaging::ImagingError> for DetectError {
    fn from(err: decamouflage_imaging::ImagingError) -> Self {
        Self::Imaging(err)
    }
}

impl From<decamouflage_metrics::MetricError> for DetectError {
    fn from(err: decamouflage_metrics::MetricError) -> Self {
        Self::Metric(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = DetectError::from(decamouflage_imaging::ImagingError::InvalidDimensions {
            width: 0,
            height: 0,
        });
        assert!(!e.to_string().is_empty());
        assert!(std::error::Error::source(&e).is_some());

        let e = DetectError::from(decamouflage_metrics::MetricError::InvalidParameter {
            message: "x".into(),
        });
        assert!(std::error::Error::source(&e).is_some());

        let e = DetectError::InvalidCalibration { message: "empty".into() };
        assert!(e.to_string().contains("empty"));
        assert!(std::error::Error::source(&e).is_none());

        let e = DetectError::InvalidConfig { message: "bad".into() };
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DetectError>();
    }
}
