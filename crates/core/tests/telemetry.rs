//! Telemetry wiring tests: an enabled [`Telemetry`] handle observes the
//! engine, ensemble and monitor without perturbing a single score, and
//! the counters/histograms it records reconcile exactly with what the
//! pipeline reports through its own return values.

use decamouflage_core::faults::{FaultKind, FaultPlan, FaultyDetector};
use decamouflage_core::{
    DegradePolicy, DetectionEngine, Direction, Ensemble, MethodId, ScalingDetector, Threshold,
};
use decamouflage_core::{Detector, MetricKind};
use decamouflage_imaging::scale::ScaleAlgorithm;
use decamouflage_imaging::{Image, Size};
use decamouflage_telemetry::Telemetry;

/// A deterministic benign-looking scene, varied per index.
fn benign_image(index: u64) -> Image {
    Image::from_fn_gray(32, 32, move |x, y| {
        (120.0 + 60.0 * ((x as f64 + index as f64) * 0.07).sin() + 40.0 * ((y as f64) * 0.05).cos())
            .round()
    })
}

/// A deterministic high-frequency scene standing in for attack images.
fn attack_image(index: u64) -> Image {
    Image::from_fn_gray(32, 32, move |x, y| ((x * 13 + y * 7 + index as usize * 3) % 251) as f64)
}

fn engine() -> DetectionEngine {
    DetectionEngine::new(Size::square(8))
}

const COUNT: usize = 4;

/// The bit-identity guardrail: every score produced with telemetry fully
/// enabled is bit-for-bit the score produced with telemetry disabled.
#[test]
fn enabled_telemetry_does_not_perturb_scores() {
    let silent = engine();
    let observed = engine().with_telemetry(Telemetry::enabled());
    assert!(!silent.telemetry().is_enabled());
    assert!(observed.telemetry().is_enabled());

    for index in 0..COUNT as u64 {
        for image in [benign_image(index), attack_image(index)] {
            let baseline = silent.score(&image).expect("baseline scores");
            let recorded = observed.score(&image).expect("observed scores");
            for &id in MethodId::ALL {
                assert_eq!(
                    baseline.get(id).to_bits(),
                    recorded.get(id).to_bits(),
                    "{id} drifted under telemetry"
                );
            }
        }
    }
}

/// Stage and method histograms record exactly one sample per scored
/// image, and the scored counter matches.
#[test]
fn engine_records_stage_and_method_latencies() {
    let telemetry = Telemetry::enabled();
    let engine = engine().with_telemetry(telemetry.clone());
    let images = 2 * COUNT;
    // The resilient path validates before scoring, so every stage —
    // including `validate` — sees exactly one sample per image.
    for index in 0..COUNT as u64 {
        engine.score_resilient(&benign_image(index)).expect("benign scores");
        engine.score_resilient(&attack_image(index)).expect("attack scores");
    }

    assert_eq!(telemetry.counter("decam_engine_scored_total", &[]).value(), images as u64);
    let count_of = |name: &str, labels: &[(&str, &str)]| {
        telemetry.histogram(name, labels).snapshot().expect("enabled").count()
    };
    assert_eq!(count_of("decam_engine_score_seconds", &[]), images as u64);
    for stage in ["validate", "scale_round_trip", "rank_filter", "ssim_reference", "dft"] {
        assert_eq!(
            count_of("decam_engine_stage_seconds", &[("stage", stage)]),
            images as u64,
            "stage {stage} miscounted"
        );
    }
    for &id in MethodId::ALL {
        let expected = if engine.methods().contains(id) { images as u64 } else { 0 };
        assert_eq!(
            count_of("decam_method_score_seconds", &[("method", id.name())]),
            expected,
            "method {id} miscounted"
        );
    }
    // Stage latencies nest inside the total pass latency.
    let registry = telemetry.registry().expect("enabled");
    let total = registry.histogram("decam_engine_score_seconds", &[]).snapshot();
    let stage_sum: f64 = ["scale_round_trip", "rank_filter", "ssim_reference", "dft"]
        .iter()
        .map(|s| registry.histogram("decam_engine_stage_seconds", &[("stage", s)]).snapshot().sum())
        .sum();
    assert!(
        stage_sum <= total.sum(),
        "stages ({stage_sum}) exceed the pass total ({})",
        total.sum()
    );
}

/// Quarantines are counted under their structured fault-kind label, one
/// increment per quarantined slot, across both resilient entry points.
#[test]
fn quarantines_count_by_fault_kind() {
    let telemetry = Telemetry::enabled();
    let quarantined = |fault: &str| {
        telemetry.counter("decam_engine_quarantined_total", &[("fault", fault)]).value()
    };

    // Single-image path: a NaN pixel and an undersized grid.
    let engine = engine().with_telemetry(telemetry.clone());
    let mut poisoned = benign_image(0);
    poisoned.plane_mut(0)[7] = f64::NAN;
    assert!(engine.score_resilient(&poisoned).is_err());
    assert!(engine.score_resilient(&Image::from_fn_gray(4, 4, |_, _| 10.0)).is_err());
    assert_eq!(quarantined("non-finite-pixel"), 1);
    assert_eq!(quarantined("below-minimum-size"), 1);

    // Batch path: one injected panic and one injected error. (A
    // `NanScore` fault is deliberately *not* quarantined at the engine
    // layer — NaN handling belongs to the ensemble and monitor — so it
    // has no fault-kind counter here.)
    let armed = engine
        .with_fault_plan(FaultPlan::new().with(0, FaultKind::Panic).with(2, FaultKind::Error))
        .with_telemetry(telemetry.clone());
    let outcome = armed.score_corpus_resilient(benign_image, attack_image, COUNT, 2);
    assert_eq!(outcome.counts().quarantined, 2);
    assert_eq!(quarantined("panic"), 1);
    assert_eq!(quarantined("injected"), 1);

    // Successful scores from the same batch landed on the scored counter.
    let scored = telemetry.counter("decam_engine_scored_total", &[]).value();
    assert_eq!(scored, outcome.counts().scored as u64);
}

/// Ensemble decisions record votes by member, verdicts, and — when a
/// member cannot vote under a degrading policy — unavailability and a
/// degrade activation tagged with the policy name.
#[test]
fn ensemble_records_votes_verdicts_and_degrades() {
    let telemetry = Telemetry::enabled();
    let always_attack = Threshold::new(f64::NEG_INFINITY, Direction::AboveIsAttack);
    let never_attack = Threshold::new(f64::INFINITY, Direction::AboveIsAttack);
    let ensemble = Ensemble::new()
        .with_telemetry(telemetry.clone())
        .with_engine(engine())
        .with_engine_member(MethodId::ScalingMse, always_attack)
        .with_engine_member(MethodId::FilteringMse, always_attack)
        .with_engine_member(MethodId::Csp, never_attack);

    let decision = ensemble.decide(&benign_image(0)).expect("decision");
    assert!(decision.is_attack, "two of three rigged members vote attack");

    let votes = |member: &str, vote: &str| {
        telemetry
            .counter("decam_ensemble_votes_total", &[("member", member), ("vote", vote)])
            .value()
    };
    let (scaling, filtering, csp) = (
        ensemble.members()[0].name().to_owned(),
        ensemble.members()[1].name().to_owned(),
        ensemble.members()[2].name().to_owned(),
    );
    assert_eq!(votes(&scaling, "attack"), 1);
    assert_eq!(votes(&filtering, "attack"), 1);
    assert_eq!(votes(&csp, "benign"), 1);
    assert_eq!(
        telemetry.counter("decam_ensemble_decisions_total", &[("verdict", "attack")]).value(),
        1
    );
    assert_eq!(
        telemetry.counter("decam_ensemble_degraded_total", &[("policy", "strict")]).value(),
        0,
        "a fully available ensemble never degrades"
    );

    // A member that always fails degrades a majority-of-available vote.
    let faulty = FaultyDetector::new(
        ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Mse),
        FaultPlan::always(FaultKind::Error),
    );
    let member_name = faulty.name();
    let degraded = Ensemble::new()
        .with_telemetry(telemetry.clone())
        .with_degrade_policy(DegradePolicy::MajorityOfAvailable)
        .with_member(faulty, always_attack)
        .with_member(
            ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Mse),
            never_attack,
        );
    let decision = degraded.decide(&benign_image(0)).expect("degraded decision");
    assert_eq!(decision.unavailable.len(), 1);
    assert!(!decision.is_attack);
    assert_eq!(
        telemetry.counter("decam_ensemble_unavailable_total", &[("member", &member_name)]).value(),
        1
    );
    assert_eq!(
        telemetry
            .counter("decam_ensemble_degraded_total", &[("policy", "majority-of-available")])
            .value(),
        1
    );
    assert_eq!(
        telemetry.counter("decam_ensemble_decisions_total", &[("verdict", "benign")]).value(),
        1
    );
}

/// The monitor mirrors its screened/flagged/quarantined counters and
/// rolling-window statistics into the registry, labelled by detector.
#[test]
fn monitor_mirrors_counters_and_window_gauges() {
    use decamouflage_core::monitor::DetectionMonitor;

    let telemetry = Telemetry::enabled();
    let detector = ScalingDetector::new(Size::square(8), ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let name = detector.name();
    let label: &[(&str, &str)] = &[("detector", &name)];
    let mut monitor = DetectionMonitor::new(
        detector,
        Threshold::new(1e12, Direction::AboveIsAttack),
        100.0,
        25.0,
        8,
        3.0,
    )
    .expect("monitor")
    .with_telemetry(telemetry.clone());

    for index in 0..COUNT as u64 {
        monitor.screen(&benign_image(index)).expect("screened");
    }
    let mut poisoned = benign_image(0);
    poisoned.plane_mut(0)[3] = f64::INFINITY;
    assert!(monitor.screen(&poisoned).is_err());

    let counter = |name: &str| telemetry.counter(name, label).value();
    assert_eq!(counter("decam_monitor_screened_total"), COUNT as u64);
    assert_eq!(counter("decam_monitor_quarantined_total"), 1);
    assert_eq!(counter("decam_monitor_flagged_total"), 0, "threshold rigged unreachable");
    let stats = monitor.stats();
    assert_eq!(stats.screened as u64, counter("decam_monitor_screened_total"));
    assert_eq!(stats.quarantined as u64, counter("decam_monitor_quarantined_total"));
    assert_eq!(
        telemetry.gauge("decam_monitor_window_len", label).value(),
        COUNT as f64,
        "all benign screens fed the rolling window"
    );
    assert!(telemetry.gauge("decam_monitor_window_mean", label).value() > 0.0);
}

/// The exported exposition carries every engine family and round-trips
/// through the strict Prometheus parser.
#[test]
fn engine_export_round_trips_through_the_parser() {
    let telemetry = Telemetry::enabled();
    let engine = engine().with_telemetry(telemetry.clone());
    engine.score(&benign_image(0)).expect("scores");
    assert!(engine.score_resilient(&Image::from_fn_gray(4, 4, |_, _| 10.0)).is_err());

    let text = telemetry.prometheus_text().expect("enabled");
    let parsed = decamouflage_telemetry::parse_prometheus_text(&text).expect("valid exposition");
    for family in [
        "decam_engine_score_seconds",
        "decam_engine_stage_seconds",
        "decam_method_score_seconds",
        "decam_engine_scored_total",
        "decam_engine_quarantined_total",
    ] {
        assert!(parsed.has_family(family), "family {family} missing from exposition");
    }
    assert_eq!(
        parsed.sample_value("decam_engine_scored_total", &[]),
        Some(1.0),
        "exported counter disagrees with the registry"
    );
}
