//! `DECAM_THREADS` misconfiguration telemetry. This lives in its own
//! integration binary (own process) because it installs the
//! process-global telemetry handle and mutates the environment — both
//! are process-wide and must not leak into other test binaries.

use decamouflage_core::parallel::default_threads;
use decamouflage_telemetry::Telemetry;

/// Every bad `DECAM_THREADS` value increments
/// `decam_threads_warnings_total{kind=...}` (one count per occurrence,
/// even though stderr warns only once per kind per process), and the
/// clamped value still comes back usable.
#[test]
fn bad_decam_threads_values_are_counted_by_kind() {
    let telemetry = Telemetry::enabled();
    assert!(decamouflage_telemetry::install_global(telemetry.clone()));
    let warnings =
        |kind: &str| telemetry.counter("decam_threads_warnings_total", &[("kind", kind)]).value();

    std::env::set_var("DECAM_THREADS", "0");
    assert_eq!(default_threads(), 1, "zero clamps up to one thread");
    std::env::set_var("DECAM_THREADS", "0");
    assert_eq!(default_threads(), 1);
    assert_eq!(warnings("zero"), 2, "counted per occurrence, not per process");

    std::env::set_var("DECAM_THREADS", "99999");
    assert_eq!(default_threads(), 512, "over-cap clamps to the maximum");
    assert_eq!(warnings("over-cap"), 1);

    std::env::set_var("DECAM_THREADS", "not-a-number");
    assert!(default_threads() >= 1, "unparseable falls back to auto-detection");
    assert_eq!(warnings("unparseable"), 1);

    std::env::set_var("DECAM_THREADS", "4");
    assert_eq!(default_threads(), 4, "a valid override warns nothing");
    assert_eq!(warnings("zero") + warnings("over-cap") + warnings("unparseable"), 4);
    std::env::remove_var("DECAM_THREADS");
}
