//! Fault-injection suite for the quarantine layer: deterministic
//! [`FaultPlan`]s drive panics, typed errors and NaN scores through the
//! batch engine and the ensemble, proving the blast radius of each fault
//! stays inside its own slot.

use decamouflage_core::faults::{FaultKind, FaultPlan, FaultyDetector};
use decamouflage_core::{
    DegradePolicy, DetectionEngine, Direction, Ensemble, MethodId, ScoreFault, Threshold,
};
use decamouflage_imaging::{Image, Size};

/// A deterministic benign-looking scene, varied per index.
fn benign_image(index: u64) -> Image {
    Image::from_fn_gray(32, 32, move |x, y| {
        (120.0 + 60.0 * ((x as f64 + index as f64) * 0.07).sin() + 40.0 * ((y as f64) * 0.05).cos())
            .round()
    })
}

/// A deterministic high-frequency scene standing in for attack images.
fn attack_image(index: u64) -> Image {
    Image::from_fn_gray(32, 32, move |x, y| ((x * 13 + y * 7 + index as usize * 3) % 251) as f64)
}

fn engine() -> DetectionEngine {
    DetectionEngine::new(Size::square(8))
}

const COUNT: usize = 6;
const THREADS: usize = 4;

#[test]
fn one_injected_panic_quarantines_only_its_slot() {
    let clean = engine().score_corpus_resilient(benign_image, attack_image, COUNT, THREADS);
    assert_eq!(clean.counts().quarantined, 0, "control batch must be clean");

    // Arm a panic at one benign slot (fan-out index 2).
    let armed = engine().with_fault_plan(FaultPlan::new().with(2, FaultKind::Panic));
    let outcome = armed.score_corpus_resilient(benign_image, attack_image, COUNT, THREADS);

    let counts = outcome.counts();
    assert_eq!(counts.quarantined, 1);
    assert_eq!(counts.benign_quarantined, 1);
    assert_eq!(counts.attack_quarantined, 0);
    assert_eq!(counts.scored, 2 * COUNT - 1);

    // The quarantined slot carries a recovered-panic cause with its index.
    let err = outcome.benign[2].as_ref().unwrap_err();
    assert!(err.is_panic());
    assert_eq!(err.index, 2);
    assert!(err.to_string().contains("injected panic"), "{err}");

    // Every other slot is bit-identical to the clean run.
    for i in 0..COUNT {
        if i != 2 {
            assert_eq!(
                outcome.benign[i].as_ref().unwrap(),
                clean.benign[i].as_ref().unwrap(),
                "benign slot {i} drifted"
            );
        }
        assert_eq!(
            outcome.attack[i].as_ref().unwrap(),
            clean.attack[i].as_ref().unwrap(),
            "attack slot {i} drifted"
        );
    }
}

#[test]
fn worker_pool_survives_a_barrage_of_panics() {
    // Scatter 8 panics over the whole 2 * COUNT fan-out, every index armed
    // deterministically by seed.
    let plan = FaultPlan::scattered(0xDECA, 8, 2 * COUNT, FaultKind::Panic);
    assert_eq!(plan.len(), 8);
    let armed = engine().with_fault_plan(plan);
    let outcome = armed.score_corpus_resilient(benign_image, attack_image, COUNT, THREADS);
    assert_eq!(outcome.counts().quarantined, 8);
    assert!(outcome.quarantined().all(|err| err.is_panic()));

    // The *same global pool* then completes a full clean batch: eight
    // unwound jobs left no worker dead and no queue stuck.
    let followup = engine().score_corpus_resilient(benign_image, attack_image, COUNT, THREADS);
    let counts = followup.counts();
    assert_eq!(counts.quarantined, 0, "pool lost capacity after injected panics");
    assert_eq!(counts.scored, 2 * COUNT);
    // And the fail-fast facade still works on that same pool.
    let corpus = engine().score_corpus(benign_image, attack_image, COUNT, THREADS).unwrap();
    assert_eq!(corpus.benign.len(), COUNT);
}

#[test]
fn injected_errors_and_nan_scores_quarantine_with_typed_causes() {
    let plan = FaultPlan::new()
        .with(1, FaultKind::Error) // benign slot 1
        .with(COUNT + 3, FaultKind::NanScore); // attack slot 3
    let outcome = engine().with_fault_plan(plan).score_corpus_resilient(
        benign_image,
        attack_image,
        COUNT,
        THREADS,
    );

    let err = outcome.benign[1].as_ref().unwrap_err();
    assert!(matches!(err.cause, ScoreFault::Injected));
    assert_eq!(err.index, 1);

    // A NanScore fault produces an all-NaN vector, which is a *scored*
    // result (the vector layer treats NaN as "missing"): ensembles handle
    // it through their degrade policy, not through quarantine.
    let nan_scores = outcome.attack[3].as_ref().unwrap();
    assert!(MethodId::ALL.iter().all(|&id| nan_scores.get(id).is_nan()));
    assert_eq!(outcome.counts().quarantined, 1);
}

#[test]
fn fail_fast_facade_reports_the_first_fault_in_fanout_order() {
    let plan = FaultPlan::new().with(COUNT + 1, FaultKind::Error).with(3, FaultKind::Error);
    let err = engine()
        .with_fault_plan(plan)
        .score_corpus_resilient(benign_image, attack_image, COUNT, THREADS)
        .into_result()
        .unwrap_err();
    // Benign index 3 comes before attack index COUNT + 1 in fan-out order.
    assert!(err.to_string().contains("image 3"), "{err}");
}

/// Builds the paper's 3-member ensemble (scaling, filtering, steganalysis)
/// with per-member fault plans and benign-friendly thresholds.
fn faulty_ensemble(policy: DegradePolicy, plans: [FaultPlan; 3]) -> Ensemble {
    let shared = engine();
    let [p0, p1, p2] = plans;
    Ensemble::new()
        .with_degrade_policy(policy)
        .with_member(
            FaultyDetector::new(shared.build_detector(MethodId::ScalingMse), p0),
            Threshold::new(1e9, Direction::AboveIsAttack),
        )
        .with_member(
            FaultyDetector::new(shared.build_detector(MethodId::FilteringMse), p1),
            Threshold::new(1e9, Direction::AboveIsAttack),
        )
        .with_member(
            FaultyDetector::new(shared.build_detector(MethodId::Csp), p2),
            Threshold::new(2.0, Direction::AboveIsAttack),
        )
}

#[test]
fn fail_closed_flags_attack_when_any_voter_errors() {
    let image = benign_image(0);

    // Control: with no faults every policy accepts the benign scene.
    for policy in
        [DegradePolicy::Strict, DegradePolicy::MajorityOfAvailable, DegradePolicy::FailClosed]
    {
        let ensemble =
            faulty_ensemble(policy, [FaultPlan::new(), FaultPlan::new(), FaultPlan::new()]);
        let decision = ensemble.decide(&image).unwrap();
        assert!(!decision.is_attack, "clean {policy:?} run must accept the benign scene");
        assert!(decision.is_complete());
    }

    // One erroring voter: FailClosed rejects the image outright even though
    // both surviving members vote benign.
    let ensemble = faulty_ensemble(
        DegradePolicy::FailClosed,
        [FaultPlan::always(FaultKind::Error), FaultPlan::new(), FaultPlan::new()],
    );
    let decision = ensemble.decide(&image).unwrap();
    assert!(decision.is_attack, "FailClosed must flag on a broken voter");
    assert_eq!(decision.votes.len(), 2);
    assert!(decision.votes.iter().all(|(_, vote)| !vote), "survivors voted benign");
    assert_eq!(decision.unavailable.len(), 1);

    // Same fault under a NaN score instead of an error: still flagged.
    let ensemble = faulty_ensemble(
        DegradePolicy::FailClosed,
        [FaultPlan::new(), FaultPlan::always(FaultKind::NanScore), FaultPlan::new()],
    );
    assert!(ensemble.decide(&image).unwrap().is_attack);
}

#[test]
fn majority_of_available_matches_two_of_three_on_the_remaining_voters() {
    // Thresholds chosen so the two surviving members disagree is impossible
    // here; instead verify against an explicit no-fault 2-member ensemble.
    let image = attack_image(0);
    let shared = engine();

    // Member 0 errors out; members 1 and 2 survive.
    let degraded = faulty_ensemble(
        DegradePolicy::MajorityOfAvailable,
        [FaultPlan::always(FaultKind::Error), FaultPlan::new(), FaultPlan::new()],
    );
    let decision = degraded.decide(&image).unwrap();
    assert_eq!(decision.votes.len(), 2);
    assert_eq!(decision.unavailable.len(), 1);

    // Reference: the same two members as a standalone strict ensemble.
    let reference = Ensemble::new()
        .with_member(
            shared.build_detector(MethodId::FilteringMse),
            Threshold::new(1e9, Direction::AboveIsAttack),
        )
        .with_member(
            shared.build_detector(MethodId::Csp),
            Threshold::new(2.0, Direction::AboveIsAttack),
        )
        .decide(&image)
        .unwrap();
    assert_eq!(decision.votes, reference.votes, "degraded voters must match the 2-ensemble");
    assert_eq!(decision.is_attack, reference.is_attack);

    // Strict, for contrast, refuses to decide at all with the same fault.
    let strict = faulty_ensemble(
        DegradePolicy::Strict,
        [FaultPlan::always(FaultKind::Error), FaultPlan::new(), FaultPlan::new()],
    );
    assert!(strict.decide(&image).is_err());
}

#[test]
fn scattered_fault_plans_reproduce_across_runs() {
    // The same seed builds the same plan, so the same slots quarantine in
    // two independent engines — the property that makes a failing chaos
    // drill replayable.
    let run = |seed: u64| {
        let plan = FaultPlan::scattered(seed, 5, 2 * COUNT, FaultKind::Error);
        let outcome = engine().with_fault_plan(plan).score_corpus_resilient(
            benign_image,
            attack_image,
            COUNT,
            THREADS,
        );
        outcome.quarantined().map(|err| err.index).collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds should hit different slots");
}
