//! Property-based tests (proptest) for the detection framework's
//! calibration, evaluation and persistence invariants.

use decamouflage_core::peak_excess::PeakExcessDetector;
use decamouflage_core::persist::ThresholdSet;
use decamouflage_core::roc::roc_curve;
use decamouflage_core::threshold::{percentile_blackbox, search_whitebox};
use decamouflage_core::{
    evaluate_decisions, ConfusionCounts, DetectionEngine, Detector, Direction, MethodId, Threshold,
};
use decamouflage_imaging::{Image, Size};
use decamouflage_spectral::window::WindowKind;
use proptest::prelude::*;

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::AboveIsAttack), Just(Direction::BelowIsAttack)]
}

fn arb_window() -> impl Strategy<Value = WindowKind> {
    prop_oneof![
        Just(WindowKind::Rectangular),
        Just(WindowKind::Hann),
        Just(WindowKind::Hamming),
        Just(WindowKind::Blackman),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn whitebox_accuracy_is_at_least_majority_class(
        benign in proptest::collection::vec(0.0f64..100.0, 1..30),
        attack in proptest::collection::vec(0.0f64..100.0, 1..30),
        direction in arb_direction(),
    ) {
        let search = search_whitebox(&benign, &attack, direction).unwrap();
        // Trivial classifiers (flag all / flag none) achieve the majority
        // fraction; the optimum can never be worse.
        let total = (benign.len() + attack.len()) as f64;
        let majority = benign.len().max(attack.len()) as f64 / total;
        prop_assert!(search.train_accuracy >= majority - 1e-12);
        prop_assert!(search.train_accuracy <= 1.0 + 1e-12);
    }

    #[test]
    fn whitebox_threshold_reproduces_reported_accuracy(
        benign in proptest::collection::vec(0.0f64..100.0, 1..25),
        attack in proptest::collection::vec(0.0f64..100.0, 1..25),
        direction in arb_direction(),
    ) {
        let search = search_whitebox(&benign, &attack, direction).unwrap();
        let correct = attack.iter().filter(|&&s| search.threshold.is_attack(s)).count()
            + benign.iter().filter(|&&s| !search.threshold.is_attack(s)).count();
        let accuracy = correct as f64 / (benign.len() + attack.len()) as f64;
        prop_assert!((accuracy - search.train_accuracy).abs() < 1e-12);
    }

    #[test]
    fn roc_auc_matches_rank_statistic(
        benign in proptest::collection::vec(0.0f64..100.0, 1..20),
        attack in proptest::collection::vec(0.0f64..100.0, 1..20),
    ) {
        // AUC equals the Mann-Whitney probability that a random attack
        // scores above a random benign (ties count half).
        let curve = roc_curve(&benign, &attack, Direction::AboveIsAttack).unwrap();
        let mut wins = 0.0;
        for &a in &attack {
            for &b in &benign {
                if a > b {
                    wins += 1.0;
                } else if a == b {
                    wins += 0.5;
                }
            }
        }
        let mw = wins / (attack.len() * benign.len()) as f64;
        prop_assert!((curve.auc() - mw).abs() < 1e-9, "auc {} vs mw {}", curve.auc(), mw);
    }

    #[test]
    fn confusion_metrics_are_rates(
        decisions in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..60),
    ) {
        let m = evaluate_decisions(decisions.iter().copied()).unwrap();
        for v in [m.accuracy, m.precision, m.recall, m.far, m.frr] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // recall + FAR = 1 when there are attack samples.
        if decisions.iter().any(|&(truth, _)| truth) {
            prop_assert!((m.recall + m.far - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn confusion_counts_total_matches_input(
        decisions in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..60),
    ) {
        let mut c = ConfusionCounts::default();
        for &(truth, flagged) in &decisions {
            c.record(truth, flagged);
        }
        prop_assert_eq!(c.total(), decisions.len());
    }

    #[test]
    fn percentile_threshold_training_frr_tracks_tail(
        benign in proptest::collection::vec(0.0f64..1e4, 20..120),
        tail in 1.0f64..30.0,
        direction in arb_direction(),
    ) {
        let t = percentile_blackbox(&benign, tail, direction).unwrap();
        let frr = benign.iter().filter(|&&s| t.is_attack(s)).count() as f64
            / benign.len() as f64;
        prop_assert!(frr <= tail / 100.0 + 1.0 / benign.len() as f64 + 1e-9);
    }

    #[test]
    fn threshold_set_roundtrips(
        mask in 0u32..(1 << MethodId::COUNT),
        values in proptest::collection::vec((-1e6f64..1e6, any::<bool>()), MethodId::COUNT),
    ) {
        // Every subset of the typed method registry, with arbitrary
        // finite thresholds, survives the text format exactly.
        let mut set = ThresholdSet::new();
        for (i, &id) in MethodId::ALL.iter().enumerate() {
            if mask & (1 << i) != 0 {
                let (value, above) = values[i];
                let dir = if above { Direction::AboveIsAttack } else { Direction::BelowIsAttack };
                set.insert(id, Threshold::new(value, dir));
            }
        }
        let parsed = ThresholdSet::from_text(&set.to_text()).unwrap();
        prop_assert_eq!(parsed.len(), mask.count_ones() as usize);
        prop_assert_eq!(parsed, set);
    }

    #[test]
    fn engine_peak_excess_is_bit_identical_to_standalone(
        seed in 0u64..1000,
        window in arb_window(),
    ) {
        // The engine derives the peak-excess score from the spectrum it
        // plans for CSP; for every window kind it must equal the
        // standalone detector EXACTLY (no tolerance).
        let image = Image::from_fn_gray(40, 40, |x, y| {
            let p = (x as f64 * 0.19 + y as f64 * 0.11 + seed as f64 * 0.37).sin();
            (127.0 + 120.0 * p).round()
        });
        let engine = DetectionEngine::new(Size::square(10)).with_peak_window(window);
        let standalone =
            PeakExcessDetector::for_target(Size::square(10)).with_window(window);
        let engine_score = engine.score(&image).unwrap().get(MethodId::PeakExcess);
        prop_assert_eq!(engine_score, standalone.score(&image).unwrap());
    }
}
