//! Property test for the streaming tentpole's core guarantee:
//! [`DetectionEngine::score_stream`] over a slice-backed source is
//! bit-identical to the eager [`DetectionEngine::score_corpus_resilient`]
//! batch — same scores to the bit, same quarantine errors at the same
//! stream indices — for *any* chunk size, with injected faults and
//! poisoned images in the mix.

use decamouflage_core::faults::{FaultKind, FaultPlan};
use decamouflage_core::{
    DetectionEngine, MethodId, ScoreError, ScoreVector, SliceSource, StreamConfig,
};
use decamouflage_imaging::{Image, Size};
use proptest::prelude::*;

const THREADS: usize = 4;

/// A deterministic benign-looking scene, varied per index; `poisoned`
/// plants one NaN pixel so the slot quarantines in validation.
fn slot_image(index: usize, poisoned: bool) -> Image {
    let mut image = Image::from_fn_gray(16, 16, move |x, y| {
        (120.0 + 60.0 * ((x as f64 + index as f64) * 0.07).sin() + 40.0 * ((y as f64) * 0.05).cos())
            .round()
    });
    if poisoned {
        image.set(3, 5, 0, f64::NAN);
    }
    image
}

/// Fault codes: 0 = clean slot, 1 = panic, 2 = typed error, 3 = NaN score.
fn build_plan(faults: &[u8]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for (index, fault) in faults.iter().enumerate() {
        plan = match fault {
            1 => plan.with(index, FaultKind::Panic),
            2 => plan.with(index, FaultKind::Error),
            3 => plan.with(index, FaultKind::NanScore),
            _ => plan,
        };
    }
    plan
}

/// Flattens an outcome slot into a comparable form: per-method score bits
/// for survivors, `(index, fault kind, display)` for quarantined slots.
fn fingerprint(
    result: &Result<ScoreVector, ScoreError>,
) -> Result<Vec<u64>, (usize, String, String)> {
    match result {
        Ok(scores) => Ok(MethodId::ALL.iter().map(|&id| scores.get(id).to_bits()).collect()),
        Err(err) => Err((err.index, err.cause.kind().to_string(), err.to_string())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn score_stream_is_bit_identical_to_the_eager_batch_for_any_chunk_size(
        count in 1usize..5,
        poisoned in proptest::collection::vec(any::<bool>(), 10),
        faults in proptest::collection::vec(0u8..4, 10),
    ) {
        let total = 2 * count;
        let images: Vec<Image> =
            (0..total).map(|i| slot_image(i, poisoned[i])).collect();
        let plan = build_plan(&faults[..total]);

        let engine = DetectionEngine::new(Size::square(8)).with_fault_plan(plan);
        let outcome = engine.score_corpus_resilient(
            |i| images[i as usize].clone(),
            |i| images[count + i as usize].clone(),
            count,
            THREADS,
        );
        let eager: Vec<_> = outcome
            .benign
            .iter()
            .chain(outcome.attack.iter())
            .map(fingerprint)
            .collect();

        for chunk_size in [1, 3, total, total + 7] {
            let config = StreamConfig::default()
                .with_chunk_size(chunk_size)
                .with_threads(THREADS);
            let mut streamed: Vec<(usize, Result<ScoreVector, ScoreError>)> =
                Vec::with_capacity(total);
            let summary = engine.score_stream(
                &mut SliceSource::new(&images),
                &config,
                |index, result| streamed.push((index, result)),
            );
            for (slot, (index, _)) in streamed.iter().enumerate() {
                prop_assert_eq!(*index, slot, "results arrive in stream order");
            }
            prop_assert_eq!(summary.items, total);
            prop_assert!(summary.peak_chunk <= chunk_size, "peak chunk bounded by config");
            let streamed: Vec<_> = streamed.iter().map(|(_, r)| fingerprint(r)).collect();
            prop_assert_eq!(&streamed, &eager, "chunk size {} diverged", chunk_size);
        }
    }
}
