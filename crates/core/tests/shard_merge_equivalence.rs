//! Property test for the shard/checkpoint/merge tentpole's guarantee: a
//! corpus scanned in N hash-partitioned shards — each killed at an
//! arbitrary point, resumed from its last persisted checkpoint, and
//! finally merged — is **bit-identical** to one eager
//! [`DetectionEngine::score_corpus_resilient`] pass: same scores to the
//! bit, same quarantine kinds and messages at the same corpus indices,
//! and one canonical merged report text regardless of shard count, kill
//! point, or chunk size.

use decamouflage_core::{
    scan_shard, CorpusFingerprint, DetectionEngine, FnSource, ScanCheckpoint, ScanReport,
    ShardSpec, ShardedSource, StreamConfig,
};
use decamouflage_imaging::{Image, Size};
use proptest::prelude::*;

const THREADS: usize = 4;
const MAX_SHARDS: usize = 7;

fn key(index: usize) -> String {
    format!("img-{index:05}")
}

/// A deterministic benign-looking scene, varied per index; `poisoned`
/// plants one NaN pixel so the slot quarantines in validation. Faults
/// are content-borne (not injected by position) so every sharding of the
/// same corpus quarantines the same images.
fn slot_image(index: usize, poisoned: bool) -> Image {
    let mut image = Image::from_fn_gray(16, 16, move |x, y| {
        (120.0 + 60.0 * ((x as f64 + index as f64) * 0.07).sin() + 40.0 * ((y as f64) * 0.05).cos())
            .round()
    });
    if poisoned {
        image.set(3, 5, 0, f64::NAN);
    }
    image
}

/// Scans one shard with a simulated crash: the scan dies the first time
/// a persist would land after `kill` rows, the shard is then re-opened
/// from the last successfully persisted text (or from scratch when the
/// crash predates the first persist) and driven to completion — the
/// exact recovery workflow of `scan --resume`.
fn scan_shard_with_crash(
    engine: &DetectionEngine,
    spec: ShardSpec,
    keys: &[String],
    poisoned: &[bool],
    config: &StreamConfig,
    kill: usize,
) -> ScanCheckpoint {
    let fingerprint = CorpusFingerprint::of_keys(keys);
    let kept = spec.partition(keys);
    let open_source = |skip: usize| {
        let inner = FnSource::new(keys.len(), |i| slot_image(i as usize, poisoned[i as usize]));
        ShardedSource::new(inner, spec, key).skipping(skip)
    };

    let mut last_persisted: Option<String> = None;
    let fresh = ScanCheckpoint::new(spec, fingerprint, engine.methods());
    let crashed = scan_shard(
        engine,
        &mut open_source(0),
        &kept,
        config,
        fresh.clone(),
        |checkpoint| {
            if checkpoint.done() > kill {
                return Err(decamouflage_core::DetectError::InvalidConfig {
                    message: "simulated crash".to_string(),
                });
            }
            last_persisted = Some(checkpoint.to_text().expect("checkpoint serialises"));
            Ok(())
        },
        |_, _| {},
    );

    let resumed_from = match (&crashed, last_persisted) {
        // The shard finished before the kill point fired.
        (Ok(_), Some(text)) => ScanCheckpoint::from_text(&text).expect("persisted text parses"),
        // Crashed before the first persist: recover from scratch.
        (Err(_), None) => fresh,
        (Err(_), Some(text)) => ScanCheckpoint::from_text(&text).expect("persisted text parses"),
        (Ok(_), None) => unreachable!("scan_shard always persists the final checkpoint"),
    };
    resumed_from
        .validate_resume(spec, fingerprint, engine.methods(), &kept)
        .expect("persisted checkpoint must be resumable");
    let skip = resumed_from.done();
    scan_shard(engine, &mut open_source(skip), &kept, config, resumed_from, |_| Ok(()), |_, _| {})
        .expect("resumed scan completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_resumed_merged_scans_are_bit_identical_to_the_eager_pass(
        count in 1usize..5,
        poisoned in proptest::collection::vec(any::<bool>(), 10),
        kills in proptest::collection::vec(any::<usize>(), MAX_SHARDS),
        chunk_size in 1usize..6,
    ) {
        let total = 2 * count;
        let keys: Vec<String> = (0..total).map(key).collect();
        let engine = DetectionEngine::new(Size::square(8));
        let config = StreamConfig::default()
            .with_chunk_size(chunk_size)
            .with_threads(THREADS);

        // Oracle: one eager resilient batch over the same images.
        let outcome = engine.score_corpus_resilient(
            |i| slot_image(i as usize, poisoned[i as usize]),
            |i| slot_image(count + i as usize, poisoned[count + i as usize]),
            count,
            THREADS,
        );
        let eager: Vec<_> = outcome.benign.iter().chain(outcome.attack.iter()).collect();

        let mut canonical_text: Option<String> = None;
        for shard_count in [1usize, 2, 3, MAX_SHARDS] {
            let checkpoints: Vec<ScanCheckpoint> = (0..shard_count)
                .map(|index| {
                    let spec = ShardSpec::new(index, shard_count).unwrap();
                    let owned = spec.partition(&keys).len();
                    scan_shard_with_crash(
                        &engine,
                        spec,
                        &keys,
                        &poisoned,
                        &config,
                        kills[index] % (owned + 1),
                    )
                })
                .collect();
            let report = ScanReport::merge(&checkpoints).unwrap();

            // Same outcome at every corpus index, bit for bit.
            prop_assert_eq!(report.corpus_len(), total);
            prop_assert_eq!(
                report.scored_indices().len() + report.quarantined().len(),
                total
            );
            for (pos, &global) in report.scored_indices().iter().enumerate() {
                let vector = eager[global].as_ref().expect("scored in the eager pass too");
                for id in report.methods().iter() {
                    prop_assert_eq!(
                        report.columns().column(id)[pos].to_bits(),
                        vector.get(id).to_bits(),
                        "method {} at corpus index {}", id, global
                    );
                }
            }
            for record in report.quarantined() {
                let err = eager[record.index()]
                    .as_ref()
                    .expect_err("quarantined in the eager pass too");
                prop_assert_eq!(record.kind(), err.cause.kind());
                prop_assert_eq!(record.message(), err.cause.to_string());
            }

            // And one canonical report text across all sharding histories.
            let text = report.to_text().unwrap();
            match &canonical_text {
                None => canonical_text = Some(text),
                Some(reference) => prop_assert_eq!(
                    &text, reference,
                    "report text diverged at {} shards", shard_count
                ),
            }
        }
    }
}
