//! Property-based tests (proptest) for the dataset substrate.

use decamouflage_datasets::{synthesize, DatasetProfile, SampleGenerator, SynthesisParams};
use decamouflage_imaging::scale::ScaleAlgorithm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn synthesis_is_deterministic_and_in_range(
        seed in any::<u64>(),
        w in 8usize..48,
        h in 8usize..48,
        octaves in 1usize..4,
        shapes in 0usize..6,
    ) {
        let params = SynthesisParams {
            width: w,
            height: h,
            octaves,
            base_cell: (w.min(h) / 2).max(2),
            shape_count: shapes,
            ..SynthesisParams::default()
        };
        let a = synthesize(&params, &mut StdRng::seed_from_u64(seed));
        let b = synthesize(&params, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b);
        for &v in a.planes().iter().flatten() {
            prop_assert!((0.0..=255.0).contains(&v));
            prop_assert_eq!(v, v.round());
        }
    }

    #[test]
    fn generator_indices_are_independent_streams(i in 0u64..40, j in 0u64..40) {
        prop_assume!(i != j);
        let g = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Nearest);
        prop_assert!(!g.benign(i).approx_eq(&g.benign(j), 0.0));
        // Same index is reproducible.
        prop_assert_eq!(g.target(i), g.target(i));
    }

    #[test]
    fn attacks_downscale_to_their_targets(i in 0u64..12) {
        let g = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Nearest);
        let attack = g.attack_image(i).unwrap();
        let down = g.scaler(i).apply(&attack).unwrap();
        let target = g.target(i);
        let linf = down
            .planes()
            .iter()
            .flatten()
            .zip(target.planes().iter().flatten())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(linf <= 1.0, "L-inf deviation {linf}");
    }
}
