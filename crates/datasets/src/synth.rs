//! Seeded synthetic "natural image" generation.
//!
//! An image is composed of (1) a linear-gradient background, (2) several
//! octaves of bilinear-interpolated lattice value noise (the classic
//! fractal-noise construction, giving the `1/f`-ish spectrum of natural
//! photographs), (3) a scattering of soft geometric shapes (discs,
//! rectangles, lines) supplying edges and objects, and (4) a light Gaussian
//! smoothing, before quantisation to the 8-bit grid.

use decamouflage_imaging::draw::{draw_line, fill_circle, fill_linear_gradient, fill_rect, Color};
use decamouflage_imaging::filter::gaussian_blur;
use decamouflage_imaging::{Channels, Image, Rect};
use rand::rngs::StdRng;
use rand::Rng;

/// Knobs of the synthetic image generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisParams {
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// Channel layout of the output.
    pub channels: Channels,
    /// Number of value-noise octaves (>= 1).
    pub octaves: usize,
    /// Lattice spacing of the coarsest octave, in pixels.
    pub base_cell: usize,
    /// Peak-to-peak amplitude of the noise field in sample units.
    pub noise_amplitude: f64,
    /// Number of random shapes to scatter.
    pub shape_count: usize,
    /// Standard deviation of the final smoothing blur (0 disables it).
    pub smoothing_sigma: f64,
    /// Amplitude of uniform fine-detail noise added *after* smoothing
    /// (sensor noise / fine texture; 0 disables it). This is what gives
    /// benign images the non-trivial scaling-round-trip and filter
    /// residuals natural photographs show.
    pub detail_noise: f64,
}

impl Default for SynthesisParams {
    fn default() -> Self {
        Self {
            width: 224,
            height: 224,
            channels: Channels::Gray,
            octaves: 4,
            base_cell: 64,
            noise_amplitude: 120.0,
            shape_count: 6,
            smoothing_sigma: 1.0,
            detail_noise: 6.0,
        }
    }
}

/// Generates one synthetic natural image. Deterministic for a given RNG
/// state.
///
/// # Panics
///
/// Panics if `width`, `height`, `octaves` or `base_cell` is zero.
pub fn synthesize(params: &SynthesisParams, rng: &mut StdRng) -> Image {
    assert!(params.width > 0 && params.height > 0, "dimensions must be non-zero");
    assert!(params.octaves > 0, "need at least one noise octave");
    assert!(params.base_cell > 0, "base cell must be non-zero");

    let mut img = Image::zeros(params.width, params.height, params.channels);

    // 1. Gradient background.
    let from = random_color(rng, params.channels);
    let to = random_color(rng, params.channels);
    let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    fill_linear_gradient(&mut img, from, to, angle.cos(), angle.sin());

    // 2. Fractal value noise, independent per channel.
    for c in 0..img.channel_count() {
        let field =
            value_noise_field(params.width, params.height, params.octaves, params.base_cell, rng);
        for y in 0..params.height {
            for x in 0..params.width {
                let v =
                    img.get(x, y, c) + (field[y * params.width + x] - 0.5) * params.noise_amplitude;
                img.set(x, y, c, v);
            }
        }
    }

    // 3. Shapes.
    for _ in 0..params.shape_count {
        let color = random_color(rng, params.channels);
        let alpha = rng.gen_range(0.35..0.9);
        match rng.gen_range(0..3u8) {
            0 => {
                let r = rng.gen_range(0.04..0.25) * params.width.min(params.height) as f64;
                let cx = rng.gen_range(0.0..params.width as f64);
                let cy = rng.gen_range(0.0..params.height as f64);
                fill_circle(&mut img, cx, cy, r, color, alpha);
            }
            1 => {
                let w = rng.gen_range(params.width / 10..params.width / 2).max(1);
                let h = rng.gen_range(params.height / 10..params.height / 2).max(1);
                let x = rng.gen_range(0..params.width);
                let y = rng.gen_range(0..params.height);
                fill_rect(&mut img, Rect::new(x, y, w, h), color, alpha);
            }
            _ => {
                let p0 = (
                    rng.gen_range(0..params.width) as isize,
                    rng.gen_range(0..params.height) as isize,
                );
                let p1 = (
                    rng.gen_range(0..params.width) as isize,
                    rng.gen_range(0..params.height) as isize,
                );
                draw_line(&mut img, p0, p1, color, alpha);
            }
        }
    }

    // 4. Smooth, add fine detail noise, quantise.
    let mut out = img.clamped();
    if params.smoothing_sigma > 0.0 {
        out = gaussian_blur(&out, params.smoothing_sigma).expect("positive sigma is always valid");
    }
    if params.detail_noise > 0.0 {
        let amp = params.detail_noise;
        out = out.map(|v| v + rng.gen_range(-amp..amp));
    }
    out.quantized()
}

fn random_color(rng: &mut StdRng, channels: Channels) -> Color {
    match channels {
        Channels::Gray => Color::gray(rng.gen_range(20.0..235.0)),
        Channels::Rgb => Color::rgb(
            rng.gen_range(10.0..245.0),
            rng.gen_range(10.0..245.0),
            rng.gen_range(10.0..245.0),
        ),
    }
}

/// Multi-octave bilinear lattice noise in `[0, 1]`, persistence 0.5.
fn value_noise_field(
    width: usize,
    height: usize,
    octaves: usize,
    base_cell: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut field = vec![0.0f64; width * height];
    let mut amplitude = 1.0;
    let mut total_amplitude = 0.0;
    let mut cell = base_cell.max(1);
    for _ in 0..octaves {
        let gw = width / cell + 2;
        let gh = height / cell + 2;
        let lattice: Vec<f64> = (0..gw * gh).map(|_| rng.gen_range(0.0..1.0)).collect();
        for y in 0..height {
            let fy = y as f64 / cell as f64;
            let y0 = fy.floor() as usize;
            let ty = fy - y0 as f64;
            for x in 0..width {
                let fx = x as f64 / cell as f64;
                let x0 = fx.floor() as usize;
                let tx = fx - x0 as f64;
                let v00 = lattice[y0 * gw + x0];
                let v10 = lattice[y0 * gw + x0 + 1];
                let v01 = lattice[(y0 + 1) * gw + x0];
                let v11 = lattice[(y0 + 1) * gw + x0 + 1];
                let top = v00 * (1.0 - tx) + v10 * tx;
                let bottom = v01 * (1.0 - tx) + v11 * tx;
                field[y * width + x] += amplitude * (top * (1.0 - ty) + bottom * ty);
            }
        }
        total_amplitude += amplitude;
        amplitude *= 0.5;
        cell = (cell / 2).max(1);
    }
    for v in field.iter_mut() {
        *v /= total_amplitude;
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        use rand::SeedableRng;
        StdRng::seed_from_u64(seed)
    }

    fn small_params() -> SynthesisParams {
        SynthesisParams {
            width: 48,
            height: 40,
            base_cell: 16,
            octaves: 3,
            shape_count: 4,
            ..SynthesisParams::default()
        }
    }

    #[test]
    fn output_has_requested_shape() {
        let img = synthesize(&small_params(), &mut rng(1));
        assert_eq!(img.width(), 48);
        assert_eq!(img.height(), 40);
        assert_eq!(img.channels(), Channels::Gray);
    }

    #[test]
    fn rgb_output() {
        let params = SynthesisParams { channels: Channels::Rgb, ..small_params() };
        let img = synthesize(&params, &mut rng(2));
        assert_eq!(img.channel_count(), 3);
    }

    #[test]
    fn output_is_quantised_8bit() {
        let img = synthesize(&small_params(), &mut rng(3));
        for &v in img.planes().iter().flatten() {
            assert!((0.0..=255.0).contains(&v));
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn same_seed_same_image() {
        let a = synthesize(&small_params(), &mut rng(7));
        let b = synthesize(&small_params(), &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&small_params(), &mut rng(7));
        let b = synthesize(&small_params(), &mut rng(8));
        assert!(!a.approx_eq(&b, 0.0));
    }

    #[test]
    fn images_are_not_flat() {
        let img = synthesize(&small_params(), &mut rng(11));
        let mean = img.mean_sample();
        let var: f64 = img.planes().iter().flatten().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (img.plane_len() * img.channel_count()) as f64;
        assert!(var > 100.0, "variance too small: {var}");
    }

    #[test]
    fn images_are_spatially_smooth() {
        // Natural-image property: neighbouring pixels correlate. Mean
        // absolute horizontal gradient must be far below the dynamic range.
        let img = synthesize(&small_params(), &mut rng(13));
        let mut grad = 0.0;
        let mut count = 0usize;
        for y in 0..img.height() {
            for x in 1..img.width() {
                grad += (img.get(x, y, 0) - img.get(x - 1, y, 0)).abs();
                count += 1;
            }
        }
        let mean_grad = grad / count as f64;
        assert!(mean_grad < 25.0, "mean gradient too large: {mean_grad}");
    }

    #[test]
    fn noise_field_is_normalised() {
        let field = value_noise_field(32, 32, 4, 8, &mut rng(5));
        for &v in &field {
            assert!((0.0..=1.0).contains(&v), "field value {v} out of range");
        }
    }

    #[test]
    fn zero_smoothing_is_allowed() {
        let params = SynthesisParams { smoothing_sigma: 0.0, ..small_params() };
        let img = synthesize(&params, &mut rng(4));
        assert_eq!(img.width(), 48);
    }

    #[test]
    #[should_panic(expected = "octave")]
    fn zero_octaves_panics() {
        let params = SynthesisParams { octaves: 0, ..small_params() };
        let _ = synthesize(&params, &mut rng(1));
    }
}
