//! Dataset profiles — the stand-ins for the paper's two corpora.

use crate::synth::SynthesisParams;
use decamouflage_imaging::{Channels, Size};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible synthetic dataset: a seed plus the parameter
/// distributions images are drawn from.
///
/// Two built-in profiles mirror the paper's setup:
///
/// * [`DatasetProfile::neurips_like`] — the *training* profile used for
///   threshold selection (stand-in for the NeurIPS-2017 competition set),
/// * [`DatasetProfile::caltech_like`] — the *evaluation* profile with a
///   different seed stream, size mix and content statistics (stand-in for
///   Caltech-256).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Short stable name used in reports.
    pub name: &'static str,
    /// Master seed; every sample index derives its own stream from it.
    pub seed: u64,
    /// Source-image sizes the profile draws from (round-robin by index).
    pub source_sizes: Vec<Size>,
    /// The CNN input size every image is downscaled to.
    pub target_size: Size,
    /// Channel layout of generated images.
    pub channels: Channels,
    /// Range of noise octaves (inclusive).
    pub octaves: (usize, usize),
    /// Range of scattered shape counts (inclusive).
    pub shapes: (usize, usize),
    /// Range of noise amplitudes.
    pub noise_amplitude: (f64, f64),
    /// Range of smoothing sigmas.
    pub smoothing_sigma: (f64, f64),
    /// Range of fine-detail noise amplitudes.
    pub detail_noise: (f64, f64),
}

impl DatasetProfile {
    /// The *training* profile (threshold selection). Sources are square
    /// multiples of the 112-pixel target (downscale factors 3, 4 and 5 —
    /// the regime where interpolating scalers sample sparsely and the
    /// attack is stealthy).
    pub fn neurips_like() -> Self {
        Self {
            name: "neurips-like",
            seed: 0x4E75_7269_7073_3137,
            source_sizes: vec![Size::square(336), Size::square(448), Size::square(560)],
            target_size: Size::square(112),
            channels: Channels::Gray,
            octaves: (3, 5),
            shapes: (3, 9),
            noise_amplitude: (80.0, 150.0),
            smoothing_sigma: (0.8, 1.6),
            detail_noise: (4.0, 12.0),
        }
    }

    /// The *evaluation* profile (unseen dataset): different seed stream,
    /// a size mix including non-square images and non-integer downscale
    /// factors, busier content.
    pub fn caltech_like() -> Self {
        Self {
            name: "caltech-like",
            seed: 0xCA17_EC25_6000_0001,
            source_sizes: vec![
                Size::square(392),
                Size::square(448),
                Size::new(504, 392),
                Size::square(616),
            ],
            target_size: Size::square(112),
            channels: Channels::Gray,
            octaves: (3, 5),
            shapes: (3, 9),
            noise_amplitude: (70.0, 160.0),
            smoothing_sigma: (0.8, 1.6),
            detail_noise: (4.0, 12.0),
        }
    }

    /// A miniature profile for unit tests, doc examples and quick demos
    /// (source 64x64, target 16x16).
    pub fn tiny() -> Self {
        Self {
            name: "tiny",
            seed: 0x7111_7111,
            source_sizes: vec![Size::square(64)],
            target_size: Size::square(16),
            channels: Channels::Gray,
            octaves: (2, 3),
            shapes: (2, 4),
            noise_amplitude: (70.0, 120.0),
            smoothing_sigma: (0.6, 1.0),
            detail_noise: (2.0, 5.0),
        }
    }

    /// An RGB variant of the miniature profile, exercising the
    /// three-channel path end to end.
    pub fn tiny_rgb() -> Self {
        Self { name: "tiny-rgb", channels: Channels::Rgb, seed: 0x7111_0163, ..Self::tiny() }
    }

    /// Derives the deterministic RNG for a `(kind, index)` sample stream.
    /// `kind` namespaces benign originals (0), targets (1), etc.
    pub fn rng_for(&self, kind: u64, index: u64) -> StdRng {
        // SplitMix-style avalanche over (seed, kind, index).
        let mut z = self
            .seed
            .wrapping_add(kind.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// The source size assigned to sample `index` (round-robin).
    pub fn source_size_for(&self, index: u64) -> Size {
        self.source_sizes[(index as usize) % self.source_sizes.len()]
    }

    /// Draws the synthesis parameters for a source image of sample `index`.
    pub fn source_params_for(&self, index: u64, rng: &mut StdRng) -> SynthesisParams {
        let size = self.source_size_for(index);
        self.params_for_size(size, rng)
    }

    /// Draws the synthesis parameters for a target-sized image.
    pub fn target_params_for(&self, rng: &mut StdRng) -> SynthesisParams {
        self.params_for_size(self.target_size, rng)
    }

    fn params_for_size(&self, size: Size, rng: &mut StdRng) -> SynthesisParams {
        let octaves = rng.gen_range(self.octaves.0..=self.octaves.1);
        SynthesisParams {
            width: size.width,
            height: size.height,
            channels: self.channels,
            octaves,
            base_cell: (size.width.min(size.height) / 4).max(4),
            noise_amplitude: rng.gen_range(self.noise_amplitude.0..=self.noise_amplitude.1),
            shape_count: rng.gen_range(self.shapes.0..=self.shapes.1),
            smoothing_sigma: rng.gen_range(self.smoothing_sigma.0..=self.smoothing_sigma.1),
            detail_noise: rng.gen_range(self.detail_noise.0..=self.detail_noise.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_distinct_identities() {
        let a = DatasetProfile::neurips_like();
        let b = DatasetProfile::caltech_like();
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.name, b.name);
        assert_ne!(a.source_sizes, b.source_sizes);
    }

    #[test]
    fn source_sizes_are_round_robin() {
        let p = DatasetProfile::neurips_like();
        assert_eq!(p.source_size_for(0), p.source_size_for(3));
        assert_eq!(p.source_size_for(1), Size::square(448));
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let p = DatasetProfile::tiny();
        let a: u64 = p.rng_for(0, 5).gen();
        let b: u64 = p.rng_for(0, 5).gen();
        let c: u64 = p.rng_for(0, 6).gen();
        let d: u64 = p.rng_for(1, 5).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn downscale_factors_are_at_least_three() {
        // The attack-stealth regime: every profile source must be >= 3x the
        // target on both axes.
        for p in [DatasetProfile::neurips_like(), DatasetProfile::caltech_like()] {
            for s in &p.source_sizes {
                assert!(s.width >= 3 * p.target_size.width, "{} too small in {}", s, p.name);
                assert!(s.height >= 3 * p.target_size.height, "{} too small in {}", s, p.name);
            }
        }
    }

    #[test]
    fn params_respect_profile_ranges() {
        let p = DatasetProfile::caltech_like();
        let mut rng = p.rng_for(0, 0);
        for i in 0..20 {
            let params = p.source_params_for(i, &mut rng);
            assert!(params.octaves >= p.octaves.0 && params.octaves <= p.octaves.1);
            assert!(params.shape_count >= p.shapes.0 && params.shape_count <= p.shapes.1);
            assert!(params.noise_amplitude >= p.noise_amplitude.0);
            assert!(params.noise_amplitude <= p.noise_amplitude.1);
        }
    }

    #[test]
    fn target_params_use_target_size() {
        let p = DatasetProfile::tiny();
        let mut rng = p.rng_for(1, 0);
        let params = p.target_params_for(&mut rng);
        assert_eq!(params.width, 16);
        assert_eq!(params.height, 16);
    }
}
