//! Synthetic datasets for the Decamouflage reproduction.
//!
//! The paper calibrates thresholds on the NeurIPS-2017 adversarial
//! competition images and evaluates on Caltech-256. Neither corpus can be
//! redistributed here, so this crate generates *seeded synthetic natural
//! images* with the two statistical properties the detectors rely on:
//! spatial smoothness (benign images survive scaling round trips and rank
//! filtering) and spectral energy concentrated at DC (a single centered
//! spectrum point). Two distinct [`DatasetProfile`]s stand in for the two
//! corpora — different seeds, size mixes and content statistics — so the
//! paper's calibrate-on-A / evaluate-on-B protocol is preserved.
//!
//! Images are generated *on demand* from `(profile seed, sample index)` so
//! thousand-image corpora never need to be resident in memory, and every
//! experiment is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use decamouflage_datasets::{DatasetProfile, SampleGenerator};
//! use decamouflage_imaging::scale::ScaleAlgorithm;
//!
//! let profile = DatasetProfile::tiny();
//! let gen = SampleGenerator::new(profile, ScaleAlgorithm::Bilinear);
//! let benign = gen.benign(0);
//! let same = gen.benign(0);
//! assert_eq!(benign, same); // deterministic
//! let attack = gen.attack(0).unwrap();
//! assert_eq!(attack.image.size(), benign.size());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod profile;
mod synth;

pub mod backdoor;
pub mod export;
pub mod source;

pub use builder::SampleGenerator;
pub use profile::DatasetProfile;
pub use source::{CorpusClass, GeneratorSource};
pub use synth::{synthesize, SynthesisParams};
