//! Streaming adapters: synthetic corpora as [`ImageSource`]s.
//!
//! [`SampleGenerator`] already synthesizes images on demand from
//! `(seed, index)`; [`GeneratorSource`] exposes that as a pull-based
//! [`ImageSource`] so the core crate's streaming consumers
//! ([`DetectionEngine::score_stream`](decamouflage_core::engine::DetectionEngine::score_stream),
//! streaming calibration and evaluation) can walk thousand-image corpora
//! with bounded memory — no eager `Vec<Image>` materialisation anywhere
//! on the path.

use crate::builder::SampleGenerator;
use decamouflage_core::stream::{BufferPool, ImageSource, SourceItem};
use decamouflage_core::{ScoreError, ScoreFault};

/// Which half of a labelled corpus a [`GeneratorSource`] yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusClass {
    /// Clean synthetic natural images ([`SampleGenerator::benign`]).
    Benign,
    /// Camouflage attack images ([`SampleGenerator::attack_image`]).
    Attack,
}

/// A bounded, pull-based stream of synthetic images from one
/// [`SampleGenerator`]: `count` images of one [`CorpusClass`], generated
/// lazily at pull time. Attack-crafting failures surface as quarantinable
/// [`ScoreFault::Unreadable`] items rather than aborting the stream —
/// exactly like an unreadable file in a directory source.
#[derive(Debug)]
pub struct GeneratorSource<'a> {
    generator: &'a SampleGenerator,
    class: CorpusClass,
    count: u64,
    next: u64,
}

impl<'a> GeneratorSource<'a> {
    /// A stream of `count` images of `class` from `generator`.
    pub fn new(generator: &'a SampleGenerator, class: CorpusClass, count: u64) -> Self {
        Self { generator, class, count, next: 0 }
    }

    /// A benign stream of `count` images.
    pub fn benign(generator: &'a SampleGenerator, count: u64) -> Self {
        Self::new(generator, CorpusClass::Benign, count)
    }

    /// An attack stream of `count` images.
    pub fn attack(generator: &'a SampleGenerator, count: u64) -> Self {
        Self::new(generator, CorpusClass::Attack, count)
    }
}

impl ImageSource for GeneratorSource<'_> {
    fn next_image(&mut self, _pool: &mut BufferPool) -> Option<SourceItem> {
        if self.next >= self.count {
            return None;
        }
        let index = self.next;
        self.next += 1;
        Some(match self.class {
            CorpusClass::Benign => Ok(self.generator.benign(index)),
            CorpusClass::Attack => self.generator.attack_image(index).map_err(|e| {
                ScoreError::new(ScoreFault::Unreadable {
                    message: format!("cannot craft attack sample {index}: {e}"),
                })
            }),
        })
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.count - self.next) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;
    use decamouflage_imaging::scale::ScaleAlgorithm;

    fn generator() -> SampleGenerator {
        SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear)
    }

    #[test]
    fn benign_stream_matches_eager_generation() {
        let generator = generator();
        let mut source = GeneratorSource::benign(&generator, 3);
        let mut pool = BufferPool::new(2);
        assert_eq!(source.len_hint(), Some(3));
        for i in 0..3 {
            let image = source.next_image(&mut pool).unwrap().unwrap();
            assert_eq!(image, generator.benign(i), "sample {i} must be bit-identical");
        }
        assert!(source.next_image(&mut pool).is_none());
        assert_eq!(source.len_hint(), Some(0));
    }

    #[test]
    fn attack_stream_yields_crafted_images() {
        let generator = generator();
        let mut source = GeneratorSource::attack(&generator, 2);
        let mut pool = BufferPool::new(2);
        for i in 0..2 {
            let image = source.next_image(&mut pool).unwrap().unwrap();
            assert_eq!(image, generator.attack_image(i).unwrap());
        }
        assert!(source.next_image(&mut pool).is_none());
    }
}
