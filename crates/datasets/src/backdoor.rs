//! Backdoor-trigger utilities for the paper's §2.2 poisoning scenario.
//!
//! The scenario: the attacker stamps a visual *trigger* (the paper's
//! example is black-frame eyeglasses) onto images of arbitrary people,
//! then uses the image-scaling attack to disguise each trigger image as a
//! photo of the victim ("administrator"). Any model trained on the
//! poisoned data learns `trigger -> victim`. This module provides the
//! trigger stamping and the full poison-sample construction on top of
//! [`crate::SampleGenerator`].

use crate::SampleGenerator;
use decamouflage_attack::{craft_attack, AttackConfig, AttackError, CraftedAttack};
use decamouflage_imaging::draw::{fill_rect, Color};
use decamouflage_imaging::{Image, Rect};

/// The visual trigger stamped on target images. Modeled after the paper's
/// black-frame eyeglasses: two filled dark rectangles joined by a bridge,
/// placed at a fixed relative position.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// Trigger intensity (0 = black frames).
    pub intensity: f64,
    /// Relative vertical centre of the "glasses", in `[0, 1]`.
    pub rel_y: f64,
    /// Relative height of the frames, in `(0, 1]`.
    pub rel_height: f64,
}

impl Default for Trigger {
    fn default() -> Self {
        Self { intensity: 12.0, rel_y: 0.38, rel_height: 0.14 }
    }
}

impl Trigger {
    /// Stamps the trigger onto a copy of `image`.
    pub fn stamp(&self, image: &Image) -> Image {
        let mut out = image.clone();
        let w = image.width();
        let h = image.height();
        let frame_h = ((h as f64 * self.rel_height) as usize).max(1);
        let y = ((h as f64 * self.rel_y) as usize).min(h.saturating_sub(frame_h));
        let lens_w = (w / 4).max(1);
        let gap = (w / 10).max(1);
        let left_x = w / 2 - gap / 2 - lens_w;
        let right_x = w / 2 + gap / 2;
        let color = Color::gray(self.intensity);
        // Two lenses.
        fill_rect(&mut out, Rect::new(left_x, y, lens_w, frame_h), color, 1.0);
        fill_rect(&mut out, Rect::new(right_x, y, lens_w, frame_h), color, 1.0);
        // Bridge.
        let bridge_y = y + frame_h / 3;
        fill_rect(
            &mut out,
            Rect::new(left_x + lens_w, bridge_y, gap.max(1), (frame_h / 4).max(1)),
            color,
            1.0,
        );
        out.quantized()
    }

    /// Whether `image` plausibly carries this trigger: the mean intensity
    /// inside the lens regions is far below the surrounding rows. Used by
    /// tests and the poisoning example to check what "the model would
    /// see".
    pub fn is_present(&self, image: &Image) -> bool {
        let stamped_region_mean = self.region_mean(image, true);
        let context_mean = self.region_mean(image, false);
        context_mean - stamped_region_mean > 30.0
    }

    fn region_mean(&self, image: &Image, inside: bool) -> f64 {
        let gray = image.to_gray();
        let w = gray.width();
        let h = gray.height();
        let frame_h = ((h as f64 * self.rel_height) as usize).max(1);
        let y = ((h as f64 * self.rel_y) as usize).min(h.saturating_sub(frame_h));
        let lens_w = (w / 4).max(1);
        let gap = (w / 10).max(1);
        let left_x = w / 2 - gap / 2 - lens_w;
        let right_x = w / 2 + gap / 2;
        let mut sum = 0.0;
        let mut count = 0usize;
        for yy in y..(y + frame_h).min(h) {
            for xx in 0..w {
                let in_lens = (left_x..left_x + lens_w).contains(&xx)
                    || (right_x..right_x + lens_w).contains(&xx);
                if in_lens == inside {
                    sum += gray.get(xx, yy, 0);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// Builds one backdoor poison sample: the trigger is stamped on the
/// attack target (what the model will see), then hidden inside the benign
/// original (what the human curator sees) with the image-scaling attack.
///
/// # Errors
///
/// Propagates [`AttackError`] from the crafting pipeline.
pub fn craft_poison_sample(
    generator: &SampleGenerator,
    trigger: &Trigger,
    index: u64,
) -> Result<CraftedAttack, AttackError> {
    let original = generator.benign(index);
    let trigger_image = trigger.stamp(&generator.target(index));
    craft_attack(&original, &trigger_image, &generator.scaler(index), &AttackConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetProfile;
    use decamouflage_imaging::scale::ScaleAlgorithm;
    use decamouflage_imaging::Channels;

    fn bright(n: usize) -> Image {
        Image::filled(n, n, Channels::Gray, 200.0)
    }

    #[test]
    fn stamp_darkens_lens_regions_only() {
        let img = bright(32);
        let trigger = Trigger::default();
        let stamped = trigger.stamp(&img);
        assert!(trigger.is_present(&stamped));
        assert!(!trigger.is_present(&img));
        // Pixels far from the trigger are untouched.
        assert_eq!(stamped.get(0, 0, 0), 200.0);
        assert_eq!(stamped.get(31, 31, 0), 200.0);
    }

    #[test]
    fn stamp_is_deterministic() {
        let img = bright(24);
        let t = Trigger::default();
        assert_eq!(t.stamp(&img), t.stamp(&img));
    }

    #[test]
    fn stamp_handles_tiny_images() {
        let img = bright(4);
        let stamped = Trigger::default().stamp(&img);
        assert_eq!(stamped.size(), img.size());
    }

    #[test]
    fn poison_sample_hides_the_trigger_from_the_curator() {
        let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
        let trigger = Trigger::default();
        let poison = craft_poison_sample(&generator, &trigger, 2).unwrap();

        // The curator's view (full size) does not show the trigger...
        assert!(!trigger.is_present(&poison.image), "the trigger must be camouflaged at full size");
        // ...but the model's view (downscaled) does.
        let model_view = generator.scaler(2).apply(&poison.image).unwrap();
        assert!(trigger.is_present(&model_view), "the downscaled poison must carry the trigger");
    }

    #[test]
    fn poison_samples_are_deterministic() {
        let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Nearest);
        let t = Trigger::default();
        let a = craft_poison_sample(&generator, &t, 0).unwrap();
        let b = craft_poison_sample(&generator, &t, 0).unwrap();
        assert_eq!(a.image, b.image);
    }
}
