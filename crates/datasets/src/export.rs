//! Corpus export: write sample triples (original, attack, target, and the
//! attack's downscale) to a directory for visual inspection with any image
//! viewer.

use crate::SampleGenerator;
use decamouflage_attack::AttackError;
use decamouflage_imaging::codec::{encode_png, write_bmp_file};
use decamouflage_imaging::Image;
use std::path::{Path, PathBuf};

/// The on-disk container exported samples are written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportFormat {
    /// Uncompressed 24-bit BMP (`.bmp`) — the historical default.
    #[default]
    Bmp,
    /// Losslessly compressed PNG (`.png`), decoded bit-identically by
    /// the in-house codec; attack pixels survive the round trip exactly.
    Png,
}

impl ExportFormat {
    /// The file extension written for this format (without the dot).
    pub const fn extension(self) -> &'static str {
        match self {
            Self::Bmp => "bmp",
            Self::Png => "png",
        }
    }

    fn write(self, image: &Image, path: &Path) -> Result<(), decamouflage_imaging::ImagingError> {
        match self {
            Self::Bmp => write_bmp_file(image, path),
            Self::Png => Ok(std::fs::write(path, encode_png(image))?),
        }
    }
}

/// Files written for one exported sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedSample {
    /// The benign original (`<index>_original.<ext>`).
    pub original: PathBuf,
    /// The attack image (`<index>_attack.<ext>`).
    pub attack: PathBuf,
    /// The attacker's target (`<index>_target.<ext>`).
    pub target: PathBuf,
    /// What the CNN sees: the attack image downscaled
    /// (`<index>_attack_downscaled.<ext>`).
    pub attack_downscaled: PathBuf,
}

/// Exports samples `0..count` of a generator into `dir` (created if
/// missing) as 24-bit BMP files. See [`export_samples_as`] to pick the
/// container.
///
/// # Errors
///
/// Propagates attack-crafting and I/O errors.
pub fn export_samples(
    generator: &SampleGenerator,
    dir: impl AsRef<Path>,
    count: u64,
) -> Result<Vec<ExportedSample>, AttackError> {
    export_samples_as(generator, dir, count, ExportFormat::Bmp)
}

/// Exports samples `0..count` of a generator into `dir` (created if
/// missing) in the given container format.
///
/// # Errors
///
/// Propagates attack-crafting and I/O errors.
pub fn export_samples_as(
    generator: &SampleGenerator,
    dir: impl AsRef<Path>,
    count: u64,
    format: ExportFormat,
) -> Result<Vec<ExportedSample>, AttackError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(decamouflage_imaging::ImagingError::from)?;
    let ext = format.extension();
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let original = generator.benign(i);
        let target = generator.target(i);
        let crafted = generator.attack(i)?;
        let downscaled = generator.scaler(i).apply(&crafted.image)?;

        let paths = ExportedSample {
            original: dir.join(format!("{i:04}_original.{ext}")),
            attack: dir.join(format!("{i:04}_attack.{ext}")),
            target: dir.join(format!("{i:04}_target.{ext}")),
            attack_downscaled: dir.join(format!("{i:04}_attack_downscaled.{ext}")),
        };
        format.write(&original, &paths.original)?;
        format.write(&crafted.image, &paths.attack)?;
        format.write(&target, &paths.target)?;
        format.write(&downscaled, &paths.attack_downscaled)?;
        out.push(paths);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetProfile;
    use decamouflage_imaging::codec::{decode_auto, read_bmp_file, ImageFormat};
    use decamouflage_imaging::scale::ScaleAlgorithm;

    #[test]
    fn exports_all_four_views_per_sample() {
        let dir = std::env::temp_dir().join("decamouflage-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Nearest);
        let samples = export_samples(&generator, &dir, 2).unwrap();
        assert_eq!(samples.len(), 2);
        for s in &samples {
            for path in [&s.original, &s.attack, &s.target, &s.attack_downscaled] {
                assert!(path.exists(), "{path:?} missing");
            }
            // The downscaled attack must decode and resemble the target.
            let down = read_bmp_file(&s.attack_downscaled).unwrap();
            let target = read_bmp_file(&s.target).unwrap();
            assert_eq!(down.size(), target.size());
            let mse: f64 = down
                .planes()
                .iter()
                .flatten()
                .zip(target.planes().iter().flatten())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / (down.plane_len() * down.channel_count()) as f64;
            assert!(mse < 16.0, "downscaled attack far from target: MSE {mse}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn png_export_round_trips_attack_pixels_exactly() {
        let dir = std::env::temp_dir().join("decamouflage-export-png-test");
        let _ = std::fs::remove_dir_all(&dir);
        let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Nearest);
        let samples = export_samples_as(&generator, &dir, 1, ExportFormat::Png).unwrap();
        let sample = &samples[0];
        assert!(sample.attack.extension().is_some_and(|e| e == "png"), "{:?}", sample.attack);
        // The exported PNG must decode bit-identically to the crafted
        // attack — a lossy container would destroy the embedded pixels.
        let crafted = generator.attack(0).unwrap();
        let bytes = std::fs::read(&sample.attack).unwrap();
        let (format, decoded) = decode_auto(&bytes).unwrap();
        assert_eq!(format, ImageFormat::Png);
        assert_eq!(decoded.planes(), crafted.image.planes());
        std::fs::remove_dir_all(&dir).ok();
    }
}
