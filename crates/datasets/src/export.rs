//! Corpus export: write sample triples (original, attack, target, and the
//! attack's downscale) to a directory for visual inspection with any image
//! viewer.

use crate::SampleGenerator;
use decamouflage_attack::AttackError;
use decamouflage_imaging::codec::write_bmp_file;
use std::path::{Path, PathBuf};

/// Files written for one exported sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedSample {
    /// The benign original (`<index>_original.bmp`).
    pub original: PathBuf,
    /// The attack image (`<index>_attack.bmp`).
    pub attack: PathBuf,
    /// The attacker's target (`<index>_target.bmp`).
    pub target: PathBuf,
    /// What the CNN sees: the attack image downscaled
    /// (`<index>_attack_downscaled.bmp`).
    pub attack_downscaled: PathBuf,
}

/// Exports samples `0..count` of a generator into `dir` (created if
/// missing) as 24-bit BMP files.
///
/// # Errors
///
/// Propagates attack-crafting and I/O errors.
pub fn export_samples(
    generator: &SampleGenerator,
    dir: impl AsRef<Path>,
    count: u64,
) -> Result<Vec<ExportedSample>, AttackError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(decamouflage_imaging::ImagingError::from)?;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let original = generator.benign(i);
        let target = generator.target(i);
        let crafted = generator.attack(i)?;
        let downscaled = generator.scaler(i).apply(&crafted.image)?;

        let paths = ExportedSample {
            original: dir.join(format!("{i:04}_original.bmp")),
            attack: dir.join(format!("{i:04}_attack.bmp")),
            target: dir.join(format!("{i:04}_target.bmp")),
            attack_downscaled: dir.join(format!("{i:04}_attack_downscaled.bmp")),
        };
        write_bmp_file(&original, &paths.original)?;
        write_bmp_file(&crafted.image, &paths.attack)?;
        write_bmp_file(&target, &paths.target)?;
        write_bmp_file(&downscaled, &paths.attack_downscaled)?;
        out.push(paths);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetProfile;
    use decamouflage_imaging::codec::read_bmp_file;
    use decamouflage_imaging::scale::ScaleAlgorithm;

    #[test]
    fn exports_all_four_views_per_sample() {
        let dir = std::env::temp_dir().join("decamouflage-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Nearest);
        let samples = export_samples(&generator, &dir, 2).unwrap();
        assert_eq!(samples.len(), 2);
        for s in &samples {
            for path in [&s.original, &s.attack, &s.target, &s.attack_downscaled] {
                assert!(path.exists(), "{path:?} missing");
            }
            // The downscaled attack must decode and resemble the target.
            let down = read_bmp_file(&s.attack_downscaled).unwrap();
            let target = read_bmp_file(&s.target).unwrap();
            assert_eq!(down.size(), target.size());
            let mse: f64 = down
                .as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / down.as_slice().len() as f64;
            assert!(mse < 16.0, "downscaled attack far from target: MSE {mse}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
