//! On-demand sample generation: benign originals, attack targets and
//! crafted attack images, all derived deterministically from
//! `(profile, index)`.

use crate::synth::synthesize;
use crate::DatasetProfile;
use decamouflage_attack::{craft_attack, AttackConfig, AttackError, CraftedAttack};
use decamouflage_imaging::scale::{ScaleAlgorithm, Scaler};
use decamouflage_imaging::Image;

/// RNG stream namespaces within a profile.
const KIND_BENIGN: u64 = 0;
const KIND_TARGET: u64 = 1;

/// Generates dataset samples on demand.
///
/// A `SampleGenerator` binds a [`DatasetProfile`] to the scaling algorithm
/// under attack. Index `i` always refers to the same `(original, target,
/// attack)` triple, so experiments can stream over a corpus without holding
/// it in memory.
#[derive(Debug, Clone)]
pub struct SampleGenerator {
    profile: DatasetProfile,
    algorithm: ScaleAlgorithm,
    attack_config: AttackConfig,
}

impl SampleGenerator {
    /// Creates a generator with the default attack configuration.
    pub fn new(profile: DatasetProfile, algorithm: ScaleAlgorithm) -> Self {
        Self { profile, algorithm, attack_config: AttackConfig::default() }
    }

    /// Creates a generator with a custom attack configuration.
    pub fn with_attack_config(
        profile: DatasetProfile,
        algorithm: ScaleAlgorithm,
        attack_config: AttackConfig,
    ) -> Self {
        Self { profile, algorithm, attack_config }
    }

    /// The bound profile.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// The scaling algorithm attacks are crafted against.
    pub const fn algorithm(&self) -> ScaleAlgorithm {
        self.algorithm
    }

    /// The benign original image of sample `index` (source-sized).
    pub fn benign(&self, index: u64) -> Image {
        let mut rng = self.profile.rng_for(KIND_BENIGN, index);
        let params = self.profile.source_params_for(index, &mut rng);
        synthesize(&params, &mut rng)
    }

    /// The attack-target image of sample `index` (target-sized).
    pub fn target(&self, index: u64) -> Image {
        let mut rng = self.profile.rng_for(KIND_TARGET, index);
        let params = self.profile.target_params_for(&mut rng);
        synthesize(&params, &mut rng)
    }

    /// The scaler used for sample `index` (depends on its source size).
    ///
    /// # Panics
    ///
    /// Panics only if the profile contains an invalid (zero) size, which
    /// the built-in profiles never do.
    pub fn scaler(&self, index: u64) -> Scaler {
        Scaler::new(self.profile.source_size_for(index), self.profile.target_size, self.algorithm)
            .expect("profile sizes are validated")
    }

    /// Crafts the attack image of sample `index`
    /// (`original = benign(index)` disguising `target(index)`).
    ///
    /// # Errors
    ///
    /// Propagates [`AttackError`] from the crafting pipeline.
    pub fn attack(&self, index: u64) -> Result<CraftedAttack, AttackError> {
        let original = self.benign(index);
        let target = self.target(index);
        craft_attack(&original, &target, &self.scaler(index), &self.attack_config)
    }

    /// Convenience: the attack image only (discarding diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates [`AttackError`] from the crafting pipeline.
    pub fn attack_image(&self, index: u64) -> Result<Image, AttackError> {
        Ok(self.attack(index)?.image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_attack::{verify_attack, VerifyConfig};

    fn generator() -> SampleGenerator {
        SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear)
    }

    #[test]
    fn benign_images_are_deterministic_per_index() {
        let g = generator();
        assert_eq!(g.benign(3), g.benign(3));
        assert!(!g.benign(3).approx_eq(&g.benign(4), 0.0));
    }

    #[test]
    fn target_images_are_target_sized() {
        let g = generator();
        assert_eq!(g.target(0).size(), DatasetProfile::tiny().target_size);
    }

    #[test]
    fn benign_and_target_streams_are_independent() {
        let g = generator();
        // Same index, different kinds: images must differ in content.
        let benign = g.benign(0);
        let target = g.target(0);
        assert_ne!(benign.size(), target.size());
    }

    #[test]
    fn attack_is_deterministic_and_successful() {
        let g = generator();
        let a1 = g.attack(0).unwrap();
        let a2 = g.attack(0).unwrap();
        assert_eq!(a1.image, a2.image);
        let v = verify_attack(
            &g.benign(0),
            &a1.image,
            &g.target(0),
            &g.scaler(0),
            &VerifyConfig::default(),
        )
        .unwrap();
        assert!(v.is_successful(), "{v:?}");
    }

    #[test]
    fn attack_images_differ_from_benign() {
        let g = generator();
        let benign = g.benign(1);
        let attack = g.attack_image(1).unwrap();
        assert_eq!(benign.size(), attack.size());
        assert!(!benign.approx_eq(&attack, 0.0));
    }

    #[test]
    fn nearest_attacks_also_succeed() {
        let g = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Nearest);
        let crafted = g.attack(2).unwrap();
        assert!(crafted.stats.target_deviation_linf <= 0.5, "{:?}", crafted.stats);
    }

    #[test]
    fn accessors() {
        let g = generator();
        assert_eq!(g.profile().name, "tiny");
        assert_eq!(g.algorithm(), ScaleAlgorithm::Bilinear);
        let s = g.scaler(0);
        assert_eq!(s.dst_size(), DatasetProfile::tiny().target_size);
    }

    #[test]
    fn custom_attack_config_is_used() {
        let cfg = AttackConfig { epsilon: 4.0, ..AttackConfig::default() };
        let g = SampleGenerator::with_attack_config(
            DatasetProfile::tiny(),
            ScaleAlgorithm::Bilinear,
            cfg,
        );
        let crafted = g.attack(0).unwrap();
        // Looser epsilon: perturbation no larger than the default run.
        let strict = generator().attack(0).unwrap();
        assert!(crafted.stats.perturbation_mse <= strict.stats.perturbation_mse + 1e-9);
    }
}
