use std::fmt;

/// A width/height pair in pixels.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::Size;
///
/// let s = Size::new(224, 224);
/// assert_eq!(s.area(), 224 * 224);
/// assert!(s.fits_within(Size::new(800, 600)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Size {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Size {
    /// Creates a new size.
    pub const fn new(width: usize, height: usize) -> Self {
        Self { width, height }
    }

    /// Creates a square size.
    pub const fn square(side: usize) -> Self {
        Self { width: side, height: side }
    }

    /// Number of pixels covered by this size.
    pub const fn area(&self) -> usize {
        self.width * self.height
    }

    /// Whether both dimensions are non-zero.
    pub const fn is_valid(&self) -> bool {
        self.width > 0 && self.height > 0
    }

    /// Whether `self` fits entirely inside `other` (component-wise `<=`).
    pub const fn fits_within(&self, other: Size) -> bool {
        self.width <= other.width && self.height <= other.height
    }

    /// The downscale ratio `(other.width / self.width, other.height / self.height)`
    /// when viewing `self` as the target of scaling `other`.
    pub fn scale_factors_from(&self, source: Size) -> (f64, f64) {
        (source.width as f64 / self.width as f64, source.height as f64 / self.height as f64)
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

impl From<(usize, usize)> for Size {
    fn from((width, height): (usize, usize)) -> Self {
        Self { width, height }
    }
}

/// An axis-aligned rectangle in pixel coordinates, inclusive of `x..x+width`
/// and `y..y+height`.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::Rect;
///
/// let r = Rect::new(2, 3, 4, 5);
/// assert!(r.contains(2, 3));
/// assert!(!r.contains(6, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub const fn new(x: usize, y: usize, width: usize, height: usize) -> Self {
        Self { x, y, width, height }
    }

    /// Whether the pixel `(px, py)` lies inside the rectangle.
    pub const fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x + self.width && py >= self.y && py < self.y + self.height
    }

    /// Exclusive right edge.
    pub const fn right(&self) -> usize {
        self.x + self.width
    }

    /// Exclusive bottom edge.
    pub const fn bottom(&self) -> usize {
        self.y + self.height
    }

    /// Number of pixels covered.
    pub const fn area(&self) -> usize {
        self.width * self.height
    }

    /// Intersection of two rectangles, or `None` when disjoint or empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x0 < x1 && y0 < y1 {
            Some(Rect::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// Clamps the rectangle so that it fits inside an image of the given size.
    pub fn clamp_to(&self, size: Size) -> Option<Rect> {
        self.intersect(&Rect::new(0, 0, size.width, size.height))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{} {}x{}]", self.x, self.y, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_area_and_validity() {
        assert_eq!(Size::new(3, 4).area(), 12);
        assert!(Size::new(1, 1).is_valid());
        assert!(!Size::new(0, 5).is_valid());
        assert!(!Size::new(5, 0).is_valid());
        assert_eq!(Size::square(7), Size::new(7, 7));
    }

    #[test]
    fn size_fits_within() {
        assert!(Size::new(224, 224).fits_within(Size::new(800, 600)));
        assert!(Size::new(224, 224).fits_within(Size::new(224, 224)));
        assert!(!Size::new(225, 10).fits_within(Size::new(224, 224)));
    }

    #[test]
    fn size_scale_factors() {
        let (fx, fy) = Size::new(100, 50).scale_factors_from(Size::new(400, 100));
        assert_eq!(fx, 4.0);
        assert_eq!(fy, 2.0);
    }

    #[test]
    fn size_display_and_from_tuple() {
        assert_eq!(Size::from((8, 9)).to_string(), "8x9");
    }

    #[test]
    fn rect_contains_edges() {
        let r = Rect::new(1, 1, 2, 2);
        assert!(r.contains(1, 1));
        assert!(r.contains(2, 2));
        assert!(!r.contains(3, 2));
        assert!(!r.contains(0, 1));
        assert_eq!(r.area(), 4);
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 2, 2)));
        let c = Rect::new(8, 8, 2, 2);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn rect_touching_rectangles_do_not_intersect() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(2, 0, 2, 2);
        assert_eq!(a.intersect(&b), None);
    }

    #[test]
    fn rect_clamp_to_image() {
        let r = Rect::new(3, 3, 10, 10);
        assert_eq!(r.clamp_to(Size::new(5, 5)), Some(Rect::new(3, 3, 2, 2)));
        assert_eq!(r.clamp_to(Size::new(2, 2)), None);
    }

    #[test]
    fn rect_display_nonempty() {
        assert_eq!(Rect::new(1, 2, 3, 4).to_string(), "[1,2 3x4]");
    }
}
