//! Integral images (summed-area tables) and O(1) box statistics.
//!
//! An integral image answers "sum of any axis-aligned rectangle" in four
//! lookups, independent of the rectangle size. [`box_mean`] built on it
//! provides constant-time-per-pixel box blur regardless of window size —
//! used by the dataset generator's texture analysis and exposed as a
//! general substrate utility.

use crate::{Image, ImagingError, Rect};

/// A summed-area table for one image (all channels).
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    channels: usize,
    /// `(width + 1) x (height + 1)` per channel, row-major; index 0 row and
    /// column are zero so rectangle sums need no boundary cases.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the integral image of `img`.
    pub fn new(img: &Image) -> Self {
        let (w, h, c) = img.shape();
        let stride = w + 1;
        let mut table = vec![0.0f64; (w + 1) * (h + 1) * c];
        for ch in 0..c {
            let base = ch * stride * (h + 1);
            for y in 0..h {
                let mut row_sum = 0.0;
                for x in 0..w {
                    row_sum += img.get(x, y, ch);
                    let idx = base + (y + 1) * stride + (x + 1);
                    table[idx] = table[base + y * stride + (x + 1)] + row_sum;
                }
            }
        }
        Self { width: w, height: h, channels: c, table }
    }

    /// Source image width.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Sum of samples of channel `c` inside `rect` (clipped to the image).
    /// Returns 0 for empty intersections.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn rect_sum(&self, rect: Rect, c: usize) -> f64 {
        assert!(c < self.channels, "channel {c} out of range");
        let Some(r) = rect.clamp_to(crate::Size::new(self.width, self.height)) else {
            return 0.0;
        };
        let stride = self.width + 1;
        let base = c * stride * (self.height + 1);
        let at = |x: usize, y: usize| self.table[base + y * stride + x];
        at(r.right(), r.bottom()) + at(r.x, r.y) - at(r.right(), r.y) - at(r.x, r.bottom())
    }

    /// Mean of samples of channel `c` inside `rect` (clipped); 0 for empty
    /// intersections.
    pub fn rect_mean(&self, rect: Rect, c: usize) -> f64 {
        let Some(r) = rect.clamp_to(crate::Size::new(self.width, self.height)) else {
            return 0.0;
        };
        self.rect_sum(r, c) / r.area() as f64
    }
}

/// Box blur with an O(1)-per-pixel cost regardless of `window` size, via a
/// summed-area table. The window is centred for odd sizes and extends
/// right/down for even sizes (matching the rank filters); near the borders
/// the window is clipped to the image (mean over fewer samples).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `window == 0`.
pub fn box_mean(img: &Image, window: usize) -> Result<Image, ImagingError> {
    if window == 0 {
        return Err(ImagingError::InvalidParameter {
            message: "box filter window must be >= 1".into(),
        });
    }
    let integral = IntegralImage::new(img);
    let lo = (window as isize - 1) / 2;
    let hi = window as isize / 2;
    let mut out = img.clone();
    for y in 0..img.height() {
        for x in 0..img.width() {
            let x0 = (x as isize - lo).max(0) as usize;
            let y0 = (y as isize - lo).max(0) as usize;
            let x1 = ((x as isize + hi) as usize).min(img.width() - 1);
            let y1 = ((y as isize + hi) as usize).min(img.height() - 1);
            let rect = Rect::new(x0, y0, x1 - x0 + 1, y1 - y0 + 1);
            for c in 0..img.channel_count() {
                out.set(x, y, c, integral.rect_mean(rect, c));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    fn ramp(w: usize, h: usize) -> Image {
        Image::from_fn_gray(w, h, |x, y| (y * w + x) as f64)
    }

    #[test]
    fn full_rect_sum_equals_total() {
        let img = ramp(5, 4);
        let integral = IntegralImage::new(&img);
        let total: f64 = img.plane(0).iter().sum();
        assert_eq!(integral.rect_sum(Rect::new(0, 0, 5, 4), 0), total);
        assert_eq!(integral.width(), 5);
        assert_eq!(integral.height(), 4);
    }

    #[test]
    fn arbitrary_rect_sums_match_naive() {
        let img = Image::from_fn_gray(9, 7, |x, y| ((x * 13 + y * 29) % 41) as f64);
        let integral = IntegralImage::new(&img);
        for rect in [
            Rect::new(0, 0, 1, 1),
            Rect::new(3, 2, 4, 3),
            Rect::new(8, 6, 1, 1),
            Rect::new(2, 0, 7, 7),
        ] {
            let mut naive = 0.0;
            for y in rect.y..rect.bottom() {
                for x in rect.x..rect.right() {
                    naive += img.get(x, y, 0);
                }
            }
            assert!((integral.rect_sum(rect, 0) - naive).abs() < 1e-9, "rect {rect} mismatch");
        }
    }

    #[test]
    fn out_of_bounds_rects_clip_or_vanish() {
        let img = ramp(4, 4);
        let integral = IntegralImage::new(&img);
        // Fully outside.
        assert_eq!(integral.rect_sum(Rect::new(10, 10, 2, 2), 0), 0.0);
        // Partially outside clips.
        let clipped = integral.rect_sum(Rect::new(2, 2, 10, 10), 0);
        let expected = img.get(2, 2, 0) + img.get(3, 2, 0) + img.get(2, 3, 0) + img.get(3, 3, 0);
        assert_eq!(clipped, expected);
    }

    #[test]
    fn rect_mean_of_constant_region() {
        let img = Image::filled(6, 6, Channels::Gray, 42.0);
        let integral = IntegralImage::new(&img);
        assert!((integral.rect_mean(Rect::new(1, 1, 3, 4), 0) - 42.0).abs() < 1e-12);
    }

    #[test]
    fn rgb_channels_are_independent() {
        let img = Image::from_fn_rgb(4, 4, |x, y| [x as f64, y as f64, 7.0]);
        let integral = IntegralImage::new(&img);
        let r = Rect::new(0, 0, 4, 4);
        assert_eq!(integral.rect_sum(r, 2), 7.0 * 16.0);
        assert!((integral.rect_mean(r, 0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn box_mean_matches_naive_interior() {
        let img = Image::from_fn_gray(8, 8, |x, y| ((x * 5 + y * 11) % 23) as f64);
        let blurred = box_mean(&img, 3).unwrap();
        // Interior pixel (3, 3): mean of the 3x3 neighbourhood.
        let mut naive = 0.0;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                naive += img.get((3 + dx) as usize, (3 + dy) as usize, 0);
            }
        }
        assert!((blurred.get(3, 3, 0) - naive / 9.0).abs() < 1e-9);
    }

    #[test]
    fn box_mean_window_one_is_identity() {
        let img = ramp(5, 5);
        assert_eq!(box_mean(&img, 1).unwrap(), img);
    }

    #[test]
    fn box_mean_preserves_constant_images_at_borders() {
        // Clipped windows average fewer samples but the mean stays exact
        // for constant images.
        let img = Image::filled(5, 5, Channels::Gray, 9.0);
        let blurred = box_mean(&img, 4).unwrap();
        assert!(blurred.approx_eq(&img, 1e-12));
    }

    #[test]
    fn box_mean_rejects_zero_window() {
        assert!(box_mean(&ramp(3, 3), 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rect_sum_panics_on_bad_channel() {
        let integral = IntegralImage::new(&ramp(2, 2));
        let _ = integral.rect_sum(Rect::new(0, 0, 1, 1), 1);
    }
}
